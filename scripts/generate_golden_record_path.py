"""Regenerate the record-path golden snapshots.

Writes ``tests/golden/record_path.json``: for every paper workload query
(translated in ysmart mode against the standard small test datasets) the
final result rows, every job's deterministic :class:`JobCounters` fields,
and the executed reduce partitions (ids and record loads) in partition
order.  ``tests/test_golden_record_path.py`` asserts the engine still
reproduces these byte-for-byte, for serial and parallel executors alike.

Only rerun this when engine *semantics* intentionally change (never for
performance work — the whole point of the snapshot is that hot-path
optimization must not move a single byte)::

    PYTHONPATH=src python scripts/generate_golden_record_path.py

``--check`` recomputes the snapshot and compares it against the
committed file without writing, exiting nonzero on any drift — CI runs
this so the golden can never silently go stale::

    PYTHONPATH=src python scripts/generate_golden_record_path.py --check
"""

import argparse
import json
import os
import sys

from repro.catalog import standard_catalog
from repro.core.translator import translate_sql
from repro.data import ClickstreamConfig, Datastore, TpchConfig
from repro.data import generate_clickstream, generate_tpch
from repro.mr.tasks import JobTaskGraph
from repro.workloads.queries import paper_queries

# Must match the session fixtures in tests/conftest.py.
DATASTORE_CONFIG = {"tpch_scale": 0.002, "clickstream_users": 60, "seed": 7}
NUM_REDUCERS = 8

OUT_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                        "tests", "golden", "record_path.json")


def build_datastore():
    cfg = DATASTORE_CONFIG
    ds = Datastore(standard_catalog())
    for table in generate_tpch(TpchConfig(scale_factor=cfg["tpch_scale"],
                                          seed=cfg["seed"])).values():
        ds.load_table(table)
    ds.load_table(generate_clickstream(ClickstreamConfig(
        num_users=cfg["clickstream_users"], seed=cfg["seed"])))
    return ds


def counters_snapshot(counters):
    """The deterministic counter fields (everything but measured wall
    timings, which executor choice legitimately changes)."""
    snap = getattr(counters, "comparable", None)
    data = snap() if callable(snap) else dict(vars(counters))
    data.pop("phase_wall_s", None)
    return data


def execute_chain(translation, datastore):
    """Run a translation's jobs serially through the task graph,
    recording per-job counters and executed reduce partitions.

    Translations list jobs in topological order (every DAG edge points
    at an earlier job), so straight submission order is a valid serial
    schedule — the same order ``Runtime`` + ``SerialExecutor`` uses.
    """
    jobs_snapshot = []
    for job in translation.jobs:
        graph = JobTaskGraph(job, datastore)
        map_outputs = [task.run() for task in graph.map_tasks]
        reduce_tasks = graph.shuffle(map_outputs)
        partitions = [[task.partition, task.input_records]
                      for task in reduce_tasks]
        counters = graph.finalize([task.run() for task in reduce_tasks])
        jobs_snapshot.append({
            "job_id": job.job_id,
            "name": job.name,
            "partitions": partitions,
            "counters": counters_snapshot(counters),
        })
    final = datastore.intermediate(translation.final_dataset)
    return {
        "columns": list(translation.output_columns),
        "rows": [dict(row) for row in final.rows],
        "jobs": jobs_snapshot,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="recompute and diff against the committed "
                             "snapshot instead of writing; exit 1 on drift")
    args = parser.parse_args(argv)

    ds = build_datastore()
    snapshot = {"config": dict(DATASTORE_CONFIG,
                               num_reducers=NUM_REDUCERS, mode="ysmart"),
                "queries": {}}
    for name, sql in sorted(paper_queries().items()):
        translation = translate_sql(sql, catalog=ds.catalog,
                                    namespace=f"golden.{name}",
                                    num_reducers=NUM_REDUCERS)
        snapshot["queries"][name] = execute_chain(translation, ds)
        print(f"{name}: {len(snapshot['queries'][name]['rows'])} rows, "
              f"{len(snapshot['queries'][name]['jobs'])} jobs")

    path = os.path.normpath(OUT_PATH)
    # Round-trip through JSON so tuples/ints compare exactly as the
    # committed file stores them.
    recomputed = json.loads(json.dumps(snapshot, sort_keys=True))

    if args.check:
        try:
            with open(path) as fh:
                committed = json.load(fh)
        except FileNotFoundError:
            print(f"FAIL: no committed snapshot at {path}", file=sys.stderr)
            return 1
        if recomputed != committed:
            drift = [q for q in recomputed.get("queries", {})
                     if recomputed["queries"][q]
                     != committed.get("queries", {}).get(q)]
            print("FAIL: engine output drifted from the committed golden "
                  f"snapshot (queries: {', '.join(drift) or 'config'}); "
                  "if the semantic change is intentional, regenerate with "
                  "scripts/generate_golden_record_path.py", file=sys.stderr)
            return 1
        print(f"golden snapshot matches ({path})")
        return 0

    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as fh:
        json.dump(snapshot, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
