"""Regenerate EXPERIMENTS.md from a full experiment run.

Usage: python scripts/generate_experiments_md.py
"""

import io
import json
import os
import time

from repro.bench import ALL_EXPERIMENTS, standard_workload

HEADER = """\
# EXPERIMENTS — paper vs measured

Every table/figure of the paper's evaluation (Sec. VII), regenerated on
the simulated substrate by `python scripts/generate_experiments_md.py`
(the same harness the `benchmarks/` suite asserts against).  Absolute
numbers are simulated cluster seconds derived from *measured* execution
counters (records, bytes, groups, dispatch/compute operations) through
the calibrated cost model — the claims to check are the *shapes*: who
wins, by what factor, where the crossovers fall.

## Shape summary (paper claim -> measured)

| Experiment | Paper claim | Measured here |
|---|---|---|
| Fig. 2(b) | hand-coded beats Hive ~2.9x on Q-CSA, parity on Q-AGG | {fig2b_gap:.2f}x on Q-CSA, {fig2b_agg:.2f}x on Q-AGG |
| Fig. 9 | Q21 sub-tree 1140/773/561/479 s (1.00/0.68/0.49/0.42) | {fig9_totals} ({fig9_ratios}) |
| Fig. 9 | naive translation is 65% map time | {fig9_map_share:.0%} map time |
| Fig. 10 | YSmart/Hive speedups 2.58/1.90/2.52/2.66 (Q17/Q18/Q21/Q-CSA) | {fig10_speedups} |
| Fig. 10 | pgsql wins TPC-H, ties Q-CSA | wins TPC-H ({fig10_pg_tpch}); Q-CSA ratio {fig10_pg_csa:.2f}x |
| Fig. 11 | near-linear 11->101 scaling; compression ~2x loss | Q17 ysmart 101n/11n = {fig11_scaling:.2f}; compression {fig11_compression:.2f}x |
| Fig. 12 | production speedups 2.30-3.10x over three Q17 instance pairs | {fig12_speedups} |
| Fig. 13 | busier-day speedups 2.98x (Q18) / 3.36x (Q21) | {fig13_q18:.2f}x / {fig13_q21:.2f}x |
| Sec. VII-A.2 | Q-CSA: YSmart 2 jobs vs Hive 6; Q17 sub-tree in one job | exact match (see job-count table) |

"""


def record_path_section(path="BENCH_record_path.json"):
    """Render the record-path wall-clock trajectory, if the benchmark has
    been run (``PYTHONPATH=src python benchmarks/bench_record_path.py``).

    Unlike everything above — simulated cluster seconds — these are real
    in-process milliseconds, across three arms on identical inputs with
    byte-identical outputs: the seed engine's kernels (legacy), the
    optimized per-row plane, and the columnar batch plane (the default).
    Headline speedups are geometric means of per-query ratios; the
    wall-clock totals ratios are reported alongside.
    """
    if not os.path.exists(path):
        return ""
    with open(path) as fh:
        data = json.load(fh)
    macro, micro, cfg = data["macro"], data["micro"], data["config"]
    out = io.StringIO()
    out.write("\n## Record-path wall-clock trajectory "
              "(real time, not simulated)\n\n")
    out.write(f"From `{os.path.basename(path)}` "
              f"(seed {cfg['seed']}, TPC-H SF {cfg['tpch_scale']}, "
              f"{cfg['repeats']} repeats"
              f"{', smoke run' if cfg.get('smoke') else ''}): "
              f"legacy {macro['total_legacy_s'] * 1e3:.0f}ms -> "
              f"row {macro['total_row_s'] * 1e3:.0f}ms -> "
              f"batch {macro['total_batch_s'] * 1e3:.0f}ms; geomean "
              f"speedup **{macro['speedup']:.2f}x** vs legacy and "
              f"**{macro['batch_over_row']:.2f}x** vs the row plane "
              f"(wall-clock totals {macro['speedup_wall']:.2f}x / "
              f"{macro['batch_over_row_wall']:.2f}x), outputs "
              f"{'identical' if macro['identical'] else 'DIVERGED'}.\n\n")
    out.write("| query | legacy_ms | row_ms | batch_ms | vs legacy | "
              "vs row | map_ms | shuffle_ms | reduce_ms | finalize_ms |\n")
    out.write("|---|---|---|---|---|---|---|---|---|---|\n")
    for name, q in sorted(macro["queries"].items()):
        walls = q["phase_wall_s"]
        out.write(f"| {name} | {q['legacy_s'] * 1e3:.1f} "
                  f"| {q['row_s'] * 1e3:.1f} "
                  f"| {q['batch_s'] * 1e3:.1f} "
                  f"| {q['speedup']:.2f}x "
                  f"| {q['batch_over_row']:.2f}x |"
                  + "|".join(f" {walls.get(p, 0.0) * 1e3:.1f} "
                             for p in ("map", "shuffle", "reduce",
                                       "finalize")) + "|\n")
    out.write("\nMicro-kernels vs seed: "
              + ", ".join(f"{name} {micro[name]['speedup']:.2f}x"
                          for name in sorted(micro)) + ".\n")
    return out.getvalue()


def result_cache_section(path="BENCH_result_cache.json"):
    """Render the warm-vs-cold result-cache trajectory, if the benchmark
    has been run (``PYTHONPATH=src python benchmarks/bench_result_cache.py``).

    Like the record path, these are real in-process milliseconds — a
    repeated paper workload replayed cold (no reuse) and warm (one
    shared fingerprint-keyed cache), with rows and ``comparable()``
    counters asserted byte-identical per query.
    """
    if not os.path.exists(path):
        return ""
    with open(path) as fh:
        data = json.load(fh)
    macro, cfg = data["macro"], data["config"]
    stats = macro["cache"]
    out = io.StringIO()
    out.write("\n## Inter-query result-cache trajectory "
              "(real time, not simulated)\n\n")
    out.write(f"From `{os.path.basename(path)}` "
              f"(seed {cfg['seed']}, TPC-H SF {cfg['tpch_scale']}, "
              f"{cfg['rounds']} rounds x {cfg['repeats']} repeats, "
              f"{cfg['cache_mb']:g} MB budget"
              f"{', smoke run' if cfg.get('smoke') else ''}): "
              f"macro speedup **{macro['speedup']:.2f}x** wall "
              f"({macro['cold_s'] * 1e3:.0f}ms -> "
              f"{macro['warm_s'] * 1e3:.0f}ms), "
              f"{macro['simulated_speedup']:.2f}x simulated, outputs "
              f"{'identical' if macro['identical'] else 'DIVERGED'}.\n\n")
    out.write("| query | cold_ms | warm_ms | speedup | hits | "
              "identical |\n")
    out.write("|---|---|---|---|---|---|\n")
    for name, q in sorted(macro["queries"].items()):
        jobs = q["cache_hits"] + q["cache_misses"]
        out.write(f"| {name} | {q['cold_s'] * 1e3:.1f} "
                  f"| {q['warm_s'] * 1e3:.1f} "
                  f"| {q['speedup']:.2f}x "
                  f"| {q['cache_hits']}/{jobs} "
                  f"| {'yes' if q['identical'] else 'NO'} |\n")
    out.write(f"\nCache traffic: {stats['hits']} hits / "
              f"{stats['misses']} misses / {stats['evictions']} "
              f"evictions, {stats['bytes_saved']:,} bytes of I/O "
              f"avoided, {macro['cache_bytes']:,} of "
              f"{macro['cache_budget_bytes']:,} budget bytes "
              "resident.\n")
    return out.getvalue()


def dataflow_schedule_section(path="BENCH_dataflow_schedule.json"):
    """Render the wave-vs-dataflow scheduling trajectory, if the
    benchmark has been run
    (``PYTHONPATH=src python benchmarks/bench_dataflow_schedule.py``).

    Real in-process wall-clock again: the paper workload executed by
    the historical wave/barrier scheduler and the event-driven dataflow
    scheduler at several parallelism levels, rows and ``comparable()``
    counters asserted byte-identical at every level.
    """
    if not os.path.exists(path):
        return ""
    with open(path) as fh:
        data = json.load(fh)
    cfg, levels, proof = data["config"], data["levels"], data["overlap_proof"]
    out = io.StringIO()
    out.write("\n## Dataflow-scheduler trajectory "
              "(real time, not simulated)\n\n")
    out.write(f"From `{os.path.basename(path)}` "
              f"(seed {cfg['seed']}, TPC-H SF {cfg['tpch_scale']}, "
              f"{cfg['repeats']} repeats, split_rows={cfg['split_rows']}"
              f"{', smoke run' if cfg.get('smoke') else ''}): outputs "
              f"{'identical' if data['identical'] else 'DIVERGED'} "
              "at every parallelism level.\n\n")
    out.write("| parallelism | wave_ms | dataflow_ms | speedup | "
              "wave idle_ms | dataflow idle_ms | identical |\n")
    out.write("|---|---|---|---|---|---|---|\n")
    for p in sorted(levels, key=int):
        lv = levels[p]
        out.write(f"| {p} | {lv['wave_s'] * 1e3:.1f} "
                  f"| {lv['dataflow_s'] * 1e3:.1f} "
                  f"| {lv['speedup']:.2f}x "
                  f"| {lv['wave_profile']['idle_s'] * 1e3:.1f} "
                  f"| {lv['dataflow_profile']['idle_s'] * 1e3:.1f} "
                  f"| {'yes' if lv['identical'] else 'NO'} |\n")
    out.write(f"\nOverlap proof ({proof['query']}, parallelism "
              f"{proof['parallelism']}): "
              f"{proof['cross_job_overlap_pairs']} cross-job "
              "(reduce, map) interval intersections — reduce tasks "
              "running while unrelated jobs' maps were still in "
              "flight, which wave scheduling structurally forbids.\n")
    sims = data.get("simulated_chain", {})
    if sims:
        out.write("Simulated list-scheduled chain makespan vs "
                  "sequential submission (small cluster): "
                  + ", ".join(
                      f"{name} {sims[name]['overlap_speedup']:.2f}x"
                      for name in sorted(sims)) + ".\n")
    return out.getvalue()


def fault_tolerance_section(path="BENCH_fault_tolerance.json"):
    """Render the fault-tolerant runtime identity gate, if the
    benchmark has been run
    (``PYTHONPATH=src python benchmarks/bench_fault_tolerance.py``).

    Real execution with deterministic injected task kills: every arm
    must stay byte-identical (rows + ``comparable()`` counters) to the
    fault-free run while actually retrying, and the measured retry
    inflation is calibrated against the analytical
    ``expected_retry_factor``.
    """
    if not os.path.exists(path):
        return ""
    with open(path) as fh:
        data = json.load(fh)
    cfg, cal = data["config"], data["calibration"]
    out = io.StringIO()
    out.write("\n## Fault-tolerant runtime (injected kills, "
              "real execution)\n\n")
    out.write(f"From `{os.path.basename(path)}` "
              f"(p={cfg['probability']}, seed {cfg['seed']}, "
              f"TPC-H SF {cfg['tpch_scale']}"
              f"{', smoke run' if cfg.get('smoke') else ''}): outputs "
              f"{'identical' if data['identical'] else 'DIVERGED'} "
              "to the fault-free run on every arm.\n\n")
    out.write("| arm | identical | task_retries | speculative_wins | "
              "faultable tasks | wall_ms |\n")
    out.write("|---|---|---|---|---|---|\n")
    for name in sorted(data["arms"]):
        arm = data["arms"][name]
        out.write(f"| {name} | {'yes' if arm['identical'] else 'NO'} "
                  f"| {arm['task_retries']} | {arm['speculative_wins']} "
                  f"| {arm['faultable_tasks']} "
                  f"| {arm['wall_s'] * 1e3:.1f} |\n")
    proc = data.get("process_arm", {})
    if proc:
        out.write(f"| process{proc['workers']} (picklable chain) "
                  f"| {'yes' if proc['identical'] else 'NO'} "
                  f"| {proc['task_retries']} | 0 | - | - |\n")
    out.write(f"\nCalibration: measured retry factor "
              f"{cal['measured_retry_factor']:.4f} vs analytical "
              f"expected_retry_factor {cal['expected_retry_factor']:.4f} "
              f"({cal['relative_error'] * 100:.1f}% relative error over "
              f"{cal['faultable_tasks']} faultable tasks, "
              f"{cal['retries']} retries) — the runtime fault layer and "
              "the Sec. III analytical model agree.\n")
    ana = data.get("analytical", {})
    if ana.get("rows"):
        out.write("\nMaterialized vs pipelined expected times "
                  f"(base {ana['base_s']:.0f}s, p="
                  f"{ana['model']['task_failure_prob']}): ")
        out.write(", ".join(
            f"{r['tasks']} tasks {r['materialized_s']:.0f}s vs "
            + ("inf" if r['pipelined_s'] is None
               or r['pipelined_s'] > 1e12 else f"{r['pipelined_s']:.0f}s")
            for r in ana["rows"]) + ".\n")
    return out.getvalue()


def adaptive_stats_section(path="BENCH_adaptive_stats.json"):
    """Render the adaptive-statistics benchmark, if it has been run
    (``PYTHONPATH=src python benchmarks/bench_adaptive_stats.py``).

    Static translation vs the stats layer (skew partition plans,
    cost-based combiner/merge choices, cardinality split sizing) on a
    Zipf-skewed workload whose two hottest keys share a hash bucket.
    Simulated (cost-model) time is the headline; rows must stay
    multiset-identical across arms and byte-identical within the
    adaptive arm across executors and schedulers.
    """
    if not os.path.exists(path):
        return ""
    with open(path) as fh:
        data = json.load(fh)
    cfg, macro = data["config"], data["macro"]
    out = io.StringIO()
    out.write("\n## Adaptive statistics layer (static vs stats-driven)\n\n")
    out.write(f"From `{os.path.basename(path)}` "
              f"({cfg['events']} events over {cfg['users']} users, "
              f"{cfg['num_reducers']} reducers, modeled at "
              f"{cfg['target_gb']:.0f} GB"
              f"{', smoke run' if cfg.get('smoke') else ''}): "
              f"**{macro['speedup']:.2f}x** simulated macro speedup "
              f"({macro['static_simulated_s']:.0f}s → "
              f"{macro['adaptive_simulated_s']:.0f}s), outputs "
              f"{'identical' if macro['identical'] else 'DIVERGED'}; "
              "worst reduce max/mean load ratio "
              f"{macro['static_load']['max_over_mean']:.2f} → "
              f"{macro['adaptive_load']['max_over_mean']:.2f}.\n\n")
    out.write("| query | static sim s | adaptive sim s | speedup | "
              "reduce max/mean | decisions changed |\n")
    out.write("|---|---|---|---|---|---|\n")
    for name in sorted(macro["queries"]):
        q = macro["queries"][name]
        out.write(f"| {name} | {q['static_simulated_s']:.1f} "
                  f"| {q['adaptive_simulated_s']:.1f} "
                  f"| {q['speedup']:.2f}x "
                  f"| {q['static_load']['max_over_mean']:.2f} → "
                  f"{q['adaptive_load']['max_over_mean']:.2f} "
                  f"| {q['decisions_changed']} |\n")
    return out.getvalue()


def out_of_core_section(path="BENCH_out_of_core.json"):
    """Render the out-of-core benchmark, if it has been run
    (``PYTHONPATH=src python benchmarks/bench_out_of_core.py``).

    ``tracemalloc`` traced peaks under one fixed memory budget: a
    doubling scale ladder finds the in-memory plane's ceiling, then the
    spill plane (disk tables, spilling shuffle, external merge) runs at
    8x that ceiling and must stay inside the budget while producing the
    same rows the in-memory plane produces there.
    """
    if not os.path.exists(path):
        return ""
    with open(path) as fh:
        data = json.load(fh)
    cfg, ooc = data["config"], data["out_of_core"]
    gates = data["gates"]
    budget_mb = cfg["budget_mb"]
    out = io.StringIO()
    out.write("\n## Out-of-core execution (spill plane vs the "
              "in-memory ceiling)\n\n")
    out.write(f"From `{os.path.basename(path)}` "
              f"(fixed {budget_mb:g} MB budget, seed {cfg['seed']}"
              f"{', smoke run' if cfg.get('smoke') else ''}): the "
              f"in-memory plane's ceiling is SF "
              f"{data['in_memory_ceiling_scale']:g}; the spill plane "
              f"completes SF {ooc['scale']:g} "
              f"(**{gates['scale_factor_reached']:.0f}x** past it) "
              f"with a traced execution peak of "
              f"{ooc['peak_bytes'] / 1e6:.1f} MB — "
              f"{ooc['spill_files']} sorted runs "
              f"({ooc['spilled_bytes'] / 1e6:.1f} MB) spilled and "
              f"merged externally over "
              f"{ooc['reduce_input_records']:,} shuffled records — "
              "with budgeted runs byte-identical to the in-memory "
              "plane across executors, schedulers, and fault "
              f"injection ({'yes' if gates['identical'] else 'NO'}).\n\n")
    out.write("| arm | tpch_scale | traced peak MB | within "
              f"{budget_mb:g} MB |\n")
    out.write("|---|---|---|---|\n")
    for rung in data["in_memory_ladder"]:
        out.write(f"| in-memory | {rung['scale']:g} "
                  f"| {rung['peak_bytes'] / 1e6:.1f} "
                  f"| {'yes' if rung['fits'] else 'no'} |\n")
    ref = data.get("in_memory_reference")
    if ref:
        ref_fits = ref["peak_bytes"] <= budget_mb * 1024 * 1024
        out.write(f"| in-memory | {ref['scale']:g} "
                  f"| {ref['peak_bytes'] / 1e6:.1f} "
                  f"| {'yes' if ref_fits else 'no'} |\n")
    out.write(f"| **out-of-core** | {ooc['scale']:g} "
              f"| {ooc['peak_bytes'] / 1e6:.1f} "
              f"| {'yes' if gates['budget_respected'] else 'NO'} |\n")
    return out.getvalue()


def codegen_section(path="BENCH_codegen.json"):
    """Render the whole-stage codegen benchmark, if it has been run
    (``PYTHONPATH=src python benchmarks/bench_codegen.py``).

    Real in-process milliseconds: the paper workload executed from one
    translation by the interpreted closures and by the generated fused
    kernels, on both data planes, with rows and ``comparable()``
    counters asserted byte-identical across all four arms and under a
    sweep of the remaining engine configurations.
    """
    if not os.path.exists(path):
        return ""
    with open(path) as fh:
        data = json.load(fh)
    cfg, macro, micro = data["config"], data["macro"], data["micro"]
    sweep = data["identity_sweep"]
    out = io.StringIO()
    out.write("\n## Whole-stage code generation "
              "(compiled kernels vs the interpreter, real time)\n\n")
    out.write(f"From `{os.path.basename(path)}` "
              f"(seed {cfg['seed']}, TPC-H SF {cfg['tpch_scale']}, "
              f"{cfg['repeats']} repeats"
              f"{', smoke run' if cfg.get('smoke') else ''}): row-plane "
              f"geomean speedup **{macro['speedup_row']:.2f}x** "
              f"(interpreted {macro['total_interp_row_s'] * 1e3:.0f}ms -> "
              f"compiled {macro['total_codegen_row_s'] * 1e3:.0f}ms), "
              f"batch plane {macro['speedup_batch']:.2f}x (its kernels "
              "were already vectorized), "
              f"{macro['fallbacks']} fallbacks, outputs "
              f"{'identical' if macro['identical'] else 'DIVERGED'}; "
              "identity also holds under "
              + ", ".join(sorted(sweep))
              + (" (all pass)" if all(sweep.values())
                 else " (SOME FAIL)") + ".\n\n")
    out.write("| query | interp row_ms | codegen row_ms | row speedup | "
              "interp batch_ms | codegen batch_ms | batch speedup | "
              "identical |\n")
    out.write("|---|---|---|---|---|---|---|---|\n")
    for name, q in sorted(macro["queries"].items()):
        out.write(f"| {name} | {q['interp_row_s'] * 1e3:.1f} "
                  f"| {q['codegen_row_s'] * 1e3:.1f} "
                  f"| {q['speedup_row']:.2f}x "
                  f"| {q['interp_batch_s'] * 1e3:.1f} "
                  f"| {q['codegen_batch_s'] * 1e3:.1f} "
                  f"| {q['speedup_batch']:.2f}x "
                  f"| {'yes' if q['identical'] else 'NO'} |\n")
    out.write("\nMicro-kernels vs interpreted: "
              + ", ".join(f"{name} {micro[name]['speedup']:.2f}x"
                          for name in sorted(micro)) + ".\n")
    return out.getvalue()


def service_section(path="BENCH_service.json"):
    """Render the multi-tenant service benchmark, if it has been run
    (``PYTHONPATH=src python benchmarks/bench_service.py``).

    Real in-process milliseconds: N concurrent tenants replaying the
    paper workload against one shared cache and fair-share pool, with
    every tenant's rows and ``comparable()`` counters asserted
    byte-identical to isolated sequential sessions — YSmart Sec. VII-F's
    contention regime plus ReStore-style cross-tenant sub-plan reuse.
    """
    if not os.path.exists(path):
        return ""
    with open(path) as fh:
        data = json.load(fh)
    cfg = data["config"]
    seq, cold, warm = data["sequential"], data["cold"], data["warm"]
    cache = warm["cache"]
    out = io.StringIO()
    out.write("\n## Multi-tenant service (concurrent tenants, "
              "shared cache, real time)\n\n")
    out.write(f"From `{os.path.basename(path)}` "
              f"(seed {cfg['seed']}, TPC-H SF {cfg['tpch_scale']}, "
              f"{cfg['tenants']} tenants x {cfg['rounds']} rounds, "
              f"{cfg['workers']} shared workers, "
              f"cache {cfg['cache_mb']:g} MB"
              f"{', smoke run' if cfg.get('smoke') else ''}): "
              f"aggregate throughput grows from "
              f"**{seq['throughput_qps']:.1f} q/s** sequential to "
              f"**{cold['throughput_qps']:.1f} q/s** concurrent-cold to "
              f"**{warm['throughput_qps']:.1f} q/s** concurrent-warm "
              f"({data['warm_speedup']:.2f}x cold); the shared cache "
              f"served **{data['cross_tenant_hits']}** cross-tenant hits "
              f"({cache['hits']} total, "
              f"{cache['bytes_saved']} bytes saved); every tenant "
              f"{'byte-identical' if data['identical'] else 'DIVERGED'} "
              "vs its sequential reference.\n\n")
    out.write("| arm | throughput q/s | p50 ms | p99 ms | "
              "cross-tenant hits |\n")
    out.write("|---|---|---|---|---|\n")
    out.write(f"| sequential | {seq['throughput_qps']:.1f} | - | - "
              f"| - |\n")
    for label, arm in (("cold", cold), ("warm", warm)):
        out.write(f"| {label} | {arm['throughput_qps']:.1f} "
                  f"| {arm['p50_s'] * 1e3:.1f} "
                  f"| {arm['p99_s'] * 1e3:.1f} "
                  f"| {arm['cache']['cross_tenant_hits']} |\n")
    out.write("\n| tenant | weight | queries | cache hits | "
              "wall ms | tasks dispatched |\n")
    out.write("|---|---|---|---|---|---|\n")
    for name, t in sorted(data["tenants"].items()):
        out.write(f"| {name} | {t['weight']:g} | {t['queries']} "
                  f"| {t['cache_hits']} | {t['wall_s'] * 1e3:.1f} "
                  f"| {data['tasks_dispatched'].get(name, 0)} |\n")
    return out.getvalue()


def main():
    start = time.time()
    workload = standard_workload()
    results = {}
    for name, fn in ALL_EXPERIMENTS.items():
        print(f"running {name} ...")
        results[name] = fn(workload)

    fig2b = results["fig2b"]
    fig9 = results["fig9"]
    fig10 = results["fig10"]
    fig11 = results["fig11"]
    fig12 = results["fig12"]
    fig13 = results["fig13"]

    totals = {s: fig9.value("total_s", system=s, job="TOTAL")
              for s in ("one_to_one", "ysmart_ic_tc", "ysmart", "handcoded")}
    base = totals["one_to_one"]
    speedups = {}
    for q in ("q17", "q18", "q21", "q_csa"):
        hive = fig10.value("time_s", query=q, system="hive")
        ys = fig10.value("time_s", query=q, system="ysmart")
        speedups[q] = hive / ys
    pg_tpch = ", ".join(
        f"{q} {fig10.value('time_s', query=q, system='ysmart') / fig10.value('time_s', query=q, system='pgsql'):.1f}x"
        for q in ("q17", "q18", "q21"))
    ys_pairs = [r["time_s"] for r in fig12.by(system="ysmart")]
    hv_pairs = [r["time_s"] for r in fig12.by(system="hive")]

    summary = HEADER.format(
        fig2b_gap=fig2b.value("time_s", query="q_csa", system="hive")
        / fig2b.value("time_s", query="q_csa", system="hand-coded"),
        fig2b_agg=fig2b.value("time_s", query="q_agg", system="hive")
        / fig2b.value("time_s", query="q_agg", system="hand-coded"),
        fig9_totals="/".join(f"{totals[s]:.0f}" for s in
                             ("one_to_one", "ysmart_ic_tc", "ysmart",
                              "handcoded")) + " s",
        fig9_ratios="/".join(f"{totals[s] / base:.2f}" for s in
                             ("one_to_one", "ysmart_ic_tc", "ysmart",
                              "handcoded")),
        fig9_map_share=fig9.value("map_s", system="one_to_one", job="TOTAL")
        / base,
        fig10_speedups="/".join(f"{speedups[q]:.2f}" for q in
                                ("q17", "q18", "q21", "q_csa")),
        fig10_pg_tpch=pg_tpch,
        fig10_pg_csa=fig10.value("time_s", query="q_csa", system="ysmart")
        / fig10.value("time_s", query="q_csa", system="pgsql"),
        fig11_scaling=fig11.value("time_s", query="q17", cluster="101-node",
                                  compression="nc", system="ysmart")
        / fig11.value("time_s", query="q17", cluster="11-node",
                      compression="nc", system="ysmart"),
        fig11_compression=fig11.value(
            "time_s", query="q17", cluster="101-node", compression="c",
            system="ysmart")
        / fig11.value("time_s", query="q17", cluster="101-node",
                      compression="nc", system="ysmart"),
        fig12_speedups=", ".join(f"{h / y:.2f}x"
                                 for h, y in zip(hv_pairs, ys_pairs)),
        fig13_q18=fig13.value("speedup", query="q18", system="ysmart"),
        fig13_q21=fig13.value("speedup", query="q21", system="ysmart"),
    )

    out = io.StringIO()
    out.write(summary)
    out.write("\n## Full regenerated tables\n\n")
    for name, result in results.items():
        out.write(result.to_markdown())
        out.write("\n\n")
    out.write(record_path_section())
    out.write(result_cache_section())
    out.write(dataflow_schedule_section())
    out.write(fault_tolerance_section())
    out.write(adaptive_stats_section())
    out.write(out_of_core_section())
    out.write(codegen_section())
    out.write(service_section())
    out.write(f"\n*Generated in {time.time() - start:.0f}s from the "
              "standard workload (TPC-H SF 0.005, 120 click-stream users) "
              "with seed 2011.*\n")

    with open("EXPERIMENTS.md", "w") as f:
        f.write(out.getvalue())
    print("wrote EXPERIMENTS.md")


if __name__ == "__main__":
    main()
