"""Calibration helper: prints every paper shape target in one run.

Not part of the library; used during development to tune the cost-model
constants in repro.hadoop.config (and kept for reproducibility of that
tuning).  Usage: python scripts/calibrate.py
"""

import dataclasses

from repro.baselines import run_dbms_sql, translate_handcoded
from repro.baselines.dbms import DbmsConfig
from repro.hadoop import ec2_cluster, small_cluster
from repro.workloads import (
    build_datastore,
    data_scale_for,
    run_query,
    run_translation,
)
from repro.workloads.queries import Q21_SUBTREE_SQL, paper_queries


def main():
    ds = build_datastore(tpch_scale=0.01, clickstream_users=200)
    tpch = data_scale_for(
        ds, ['lineitem', 'orders', 'part', 'customer', 'supplier', 'nation'],
        10.0)
    clicks = data_scale_for(ds, ['clicks'], 20.0)
    q = paper_queries()

    print('--- Fig 9: Q21 subtree @10GB small (paper 1140/773/561/479, map65%)')
    cl = small_cluster(data_scale=tpch)
    for mode in ['one_to_one', 'ysmart_ic_tc', 'ysmart']:
        r = run_query(Q21_SUBTREE_SQL, ds, mode=mode, cluster=cl)
        t = r.timing
        print(f"  {mode:14s} {t.total_s:6.0f}s map={t.total_map_s:5.0f} "
              f"red={t.total_reduce_s:5.0f}")
    r = run_translation(translate_handcoded('q21_subtree', namespace='c9'),
                        ds, cluster=cl)
    t = r.timing
    print(f"  {'handcoded':14s} {t.total_s:6.0f}s map={t.total_map_s:5.0f} "
          f"red={t.total_reduce_s:5.0f}")

    print('--- Fig 10: small cluster speedups '
          '(paper hive/ysmart: q17 2.58, q18 1.90, q21 2.52, qcsa 2.66; '
          'pig slower than hive)')
    for name in ['q17', 'q18', 'q21', 'q_csa']:
        cl = small_cluster(data_scale=clicks if name == 'q_csa' else tpch)
        times = {m: run_query(q[name], ds, mode=m, cluster=cl).timing.total_s
                 for m in ['ysmart', 'hive', 'pig']}
        db = run_dbms_sql(q[name], ds, config=DbmsConfig(
            data_scale=clicks if name == 'q_csa' else tpch))
        print(f"  {name:6s} ys={times['ysmart']:7.0f} hive={times['hive']:7.0f} "
              f"pig={times['pig']:7.0f} pg={db.total_s:7.0f} "
              f"hive/ys={times['hive']/times['ysmart']:.2f} "
              f"pig/hive={times['pig']/times['hive']:.2f} "
              f"ys/pg={times['ysmart']/db.total_s:.2f}")

    print('--- Fig 2(b): Hive vs hand-coded (paper qcsa ~2.9x, qagg ~1.0x)')
    cl = small_cluster(data_scale=clicks)
    for name in ['q_csa', 'q_agg']:
        hive = run_query(q[name], ds, mode='hive', cluster=cl)
        hand = run_translation(
            translate_handcoded(name, namespace=f'c2.{name}'), ds, cluster=cl)
        print(f"  {name:6s} hive={hive.timing.total_s:7.0f} "
              f"hand={hand.timing.total_s:7.0f} "
              f"ratio={hive.timing.total_s / hand.timing.total_s:.2f}")

    print('--- Fig 11: EC2 scaling & compression '
          '(paper: ~linear 11->101; compression ~2x WORSE; ysmart max '
          'speedup 2.97 q21@101)')
    ds11 = ds
    s11 = data_scale_for(
        ds11, ['lineitem', 'orders', 'part', 'customer', 'supplier',
               'nation'], 10.0)
    for name in ['q17', 'q21']:
        row = [name]
        for workers, scale_gb in [(10, 10.0), (100, 100.0)]:
            scale = data_scale_for(
                ds, ['lineitem', 'orders', 'part', 'customer', 'supplier',
                     'nation'], scale_gb)
            for compress in [False, True]:
                cl = ec2_cluster(workers, data_scale=scale, compress=compress)
                ys = run_query(q[name], ds, mode='ysmart', cluster=cl)
                hv = run_query(q[name], ds, mode='hive', cluster=cl)
                row.append(f"{workers + 1}n{'c' if compress else ''}:"
                           f"ys={ys.timing.total_s:.0f}/hv={hv.timing.total_s:.0f}")
        print('  ', ' '.join(row))


if __name__ == '__main__':
    main()
