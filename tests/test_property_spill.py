"""Property-based tests for the out-of-core spill plane: for ANY
random query in the supported subset, ANY split size, ANY
executor/scheduler combination, and with random fault injection
layered on top, running under a memory budget tiny enough to force
disk spills is byte-identical to the unbudgeted in-memory plane —
rows, ``comparable()`` counters, and every intermediate dataset.

This is the spill plane's load-bearing contract (no byte may change
when the shuffle goes through sorted on-disk runs and reduces merge
them externally), generalized the same way
``tests/test_property_batch_plane.py`` generalizes the batch-plane
examples: the invariant must hold for *every* plan, not just the
seeds we picked.  The file also pins the supporting machinery: frame
checksums reject corruption, disk tables round-trip rows and size
estimates exactly, and ``drop_intermediates`` no longer leaks version
stamps.
"""

import itertools
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.catalog import Catalog, Schema
from repro.catalog.types import ColumnType as T
from repro.cmf import CommonReducer
from repro.core.translator import translate_sql
from repro.data import Datastore, Table
from repro.data.diskstore import disk_table_from, open_disk_table
from repro.errors import ExecutionError
from repro.mr import (
    EmitSpec,
    FaultPlan,
    MapInput,
    MRJob,
    OutputSpec,
    ParallelExecutor,
    Runtime,
    make_executor,
)
from repro.mr.spill import (MemoryBudget, iter_run, merge_records,
                            resolve_memory_budget, write_run)
from repro.mr.kv import TaggedValue
from repro.ops import SPTask, TaskInput
from repro.workloads.runner import build_datastore

_ns = itertools.count(1)

MAX_ATTEMPTS = 20

#: ~52 bytes — a partition's share comes to single-digit bytes, so even
#: hypothesis-sized tables (whose per-record serialized estimate is ~6
#: bytes) overflow it and spill, keeping the identity check non-vacuous.
TINY_BUDGET_MB = 0.00005

fact_rows = st.lists(
    st.fixed_dictionaries({
        "k": st.integers(0, 6),
        "g": st.integers(0, 3),
        "v": st.one_of(st.none(), st.integers(-50, 50)),
    }), min_size=0, max_size=25)

dim_rows = st.lists(
    st.fixed_dictionaries({
        "k": st.integers(0, 6),
        "w": st.integers(0, 9),
    }), min_size=0, max_size=10)

split_choices = st.sampled_from([1, 7, None, 10_000])
worker_choices = st.integers(1, 5)  # 1 selects the serial executor
scheduler_choices = st.sampled_from(["dataflow", "wave"])
seeds = st.integers(0, 2 ** 16)
probabilities = st.floats(0.0, 0.3, allow_nan=False)

QUERY_SHAPES = [
    "SELECT f.g, sum(f.v) AS a FROM fact AS f GROUP BY f.g",
    "SELECT f.g, count(DISTINCT f.v) AS a FROM fact AS f "
    "WHERE f.v > 0 GROUP BY f.g",
    "SELECT f.g, d.w FROM fact AS f, dim AS d WHERE f.k = d.k",
    "SELECT d.w, avg(f.v) AS a FROM fact AS f, dim AS d "
    "WHERE f.k = d.k GROUP BY d.w",
    "SELECT f.k, f.v FROM fact AS f, "
    "(SELECT g, avg(v) AS a FROM fact GROUP BY g) AS m "
    "WHERE f.g = m.g AND f.v < m.a",
    "SELECT count(*) AS n, max(f.v) AS m FROM fact AS f",
    "SELECT f.g, sum(f.v) AS a FROM fact AS f GROUP BY f.g "
    "ORDER BY a DESC LIMIT 3",
]


def make_datastore(fact, dim, on_disk=False):
    ds = Datastore(Catalog())
    fact_t = Table("fact", Schema.of(
        ("k", T.INT), ("g", T.INT), ("v", T.INT)), fact)
    dim_t = Table("dim", Schema.of(("k", T.INT), ("w", T.INT)), dim)
    if on_disk:
        # tiny segments so even hypothesis tables span several frames
        fact_t = disk_table_from(fact_t, segment_rows=4)
        dim_t = disk_table_from(dim_t, segment_rows=4)
    ds.load_table(fact_t)
    ds.load_table(dim_t)
    return ds


def snapshot(datastore, jobs):
    return {name: list(datastore.intermediate(name).rows)
            for job in jobs for name in job.output_datasets}


def check_spill_identical(jobs, dependencies, datastore,
                          workers=1, scheduler="dataflow",
                          split_rows=None, fault_plan=None,
                          budget_mb=TINY_BUDGET_MB):
    """In-memory plane (serial, fault-free) vs spill plane (full
    config, tiny budget)."""
    mem_rt = Runtime(datastore, split_rows=split_rows)
    runs_mem = mem_rt.run_jobs(jobs, dependencies=dependencies)
    mid_mem = snapshot(datastore, jobs)

    kwargs = {}
    if fault_plan is not None:
        kwargs = {"fault_plan": fault_plan, "max_attempts": MAX_ATTEMPTS}
    spill_rt = Runtime(datastore, executor=make_executor(workers),
                       scheduler=scheduler, split_rows=split_rows,
                       memory_budget_mb=budget_mb, **kwargs)
    runs_spill = spill_rt.run_jobs(jobs, dependencies=dependencies)

    assert [r.counters.comparable() for r in runs_spill] == \
        [r.counters.comparable() for r in runs_mem]
    assert snapshot(datastore, jobs) == mid_mem
    return runs_spill


common = settings(max_examples=15, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])


@common
@given(fact=fact_rows, dim=dim_rows, shape=st.sampled_from(QUERY_SHAPES),
       workers=worker_choices, scheduler=scheduler_choices,
       split_rows=split_choices)
def test_spill_plane_identical_on_random_plans(fact, dim, shape, workers,
                                               scheduler, split_rows):
    ds = make_datastore(fact, dim)
    tr = translate_sql(shape, catalog=ds.catalog,
                       namespace=f"sp{next(_ns)}")
    runs = check_spill_identical(tr.jobs, tr.dependencies(), ds,
                                 workers=workers, scheduler=scheduler,
                                 split_rows=split_rows)
    if sum(r.counters.reduce_input_records for r in runs) >= 10:
        assert sum(r.counters.spill_files for r in runs) > 0, \
            "budget too large — identity was checked vacuously"


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(fact=fact_rows, dim=dim_rows, shape=st.sampled_from(QUERY_SHAPES),
       seed=seeds, probability=probabilities,
       workers=worker_choices, scheduler=scheduler_choices,
       split_rows=split_choices)
def test_spill_plane_identical_under_faults(fact, dim, shape, seed,
                                            probability, workers,
                                            scheduler, split_rows):
    ds = make_datastore(fact, dim)
    tr = translate_sql(shape, catalog=ds.catalog,
                       namespace=f"spf{next(_ns)}")
    check_spill_identical(tr.jobs, tr.dependencies(), ds,
                          workers=workers, scheduler=scheduler,
                          split_rows=split_rows,
                          fault_plan=FaultPlan(probability, seed=seed))


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(fact=fact_rows, dim=dim_rows, shape=st.sampled_from(QUERY_SHAPES),
       workers=worker_choices, scheduler=scheduler_choices,
       split_rows=split_choices)
def test_streaming_disk_scans_identical(fact, dim, shape, workers,
                                        scheduler, split_rows):
    """Base tables living on disk (streamed segment by segment under
    the budget) produce the same bytes as the same rows in memory."""
    ds_mem = make_datastore(fact, dim)
    tr = translate_sql(shape, catalog=ds_mem.catalog,
                       namespace=f"sd{next(_ns)}")
    mem_rt = Runtime(ds_mem, split_rows=split_rows)
    runs_mem = mem_rt.run_jobs(tr.jobs, dependencies=tr.dependencies())
    mid_mem = snapshot(ds_mem, tr.jobs)

    ds_disk = make_datastore(fact, dim, on_disk=True)
    spill_rt = Runtime(ds_disk, executor=make_executor(workers),
                       scheduler=scheduler, split_rows=split_rows,
                       memory_budget_mb=TINY_BUDGET_MB)
    runs_spill = spill_rt.run_jobs(tr.jobs,
                                   dependencies=tr.dependencies())
    assert [r.counters.comparable() for r in runs_spill] == \
        [r.counters.comparable() for r in runs_mem]
    assert snapshot(ds_disk, tr.jobs) == mid_mem


# -- process pools: hand-built picklable jobs (translator jobs carry
# closures and cannot cross a process boundary) ------------------------------

def _emit_kv(record):
    return (record["k"],), {"v": record["v"]}


def picklable_chain(ns):
    def job(job_id, dataset, out):
        task = SPTask("sp", TaskInput.shuffle("in", ["k"]))
        return MRJob(
            job_id=job_id, name="pass",
            map_inputs=[MapInput(dataset, [EmitSpec("in", _emit_kv)])],
            reducer=CommonReducer([task]),
            outputs=[OutputSpec(out, "sp", ["k", "v"])])
    return [job(f"{ns}.a", "fact", f"{ns}.a.out"),
            job(f"{ns}.b", f"{ns}.a.out", f"{ns}.b.out")]


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(fact=fact_rows, scheduler=scheduler_choices,
       split_rows=st.sampled_from([1, 7, 8, 10_000]))
def test_spill_plane_identical_on_process_pools(fact, scheduler,
                                                split_rows):
    ds = make_datastore(fact, [])
    ns = f"spp{next(_ns)}"
    jobs = picklable_chain(ns)
    mem_rt = Runtime(ds, split_rows=split_rows)
    runs_mem = mem_rt.run_jobs(picklable_chain(ns))
    mid_mem = snapshot(ds, jobs)
    spill_rt = Runtime(ds, executor=ParallelExecutor(max_workers=2,
                                                     kind="process"),
                       scheduler=scheduler, split_rows=split_rows,
                       memory_budget_mb=TINY_BUDGET_MB)
    runs_spill = spill_rt.run_jobs(jobs)
    assert snapshot(ds, jobs) == mid_mem
    assert [r.counters.comparable() for r in runs_spill] == \
        [r.counters.comparable() for r in runs_mem]


# -- paper workload sample ---------------------------------------------------

_paper_store = None


def paper_store():
    global _paper_store
    if _paper_store is None:
        _paper_store = build_datastore(tpch_scale=0.002,
                                       clickstream_users=40, seed=11)
    return _paper_store


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(name=st.sampled_from(["q_agg", "q_csa", "q17"]),
       workers=worker_choices, scheduler=scheduler_choices,
       split_rows=split_choices)
def test_spill_plane_identical_on_paper_queries(name, workers, scheduler,
                                                split_rows):
    from repro.workloads.queries import paper_queries
    ds = paper_store()
    tr = translate_sql(paper_queries()[name], catalog=ds.catalog,
                       namespace=f"spq{next(_ns)}.{name}")
    runs = check_spill_identical(tr.jobs, tr.dependencies(), ds,
                                 workers=workers, scheduler=scheduler,
                                 split_rows=split_rows)
    if sum(r.counters.reduce_input_records for r in runs) >= 32:
        assert sum(r.counters.spill_files for r in runs) > 0


# -- supporting machinery -----------------------------------------------------


def _records(n):
    return [((0, 0, i), (i % 5,), TaggedValue(1, {"v": i}))
            for i in range(n)]


def test_corrupted_spill_frame_is_rejected(tmp_path):
    path = str(tmp_path / "run0.run")
    recs = sorted(_records(100), key=lambda r: (r[1], r[0]))
    write_run(path, recs)
    assert list(iter_run(path)) == recs

    data = bytearray(open(path, "rb").read())
    data[len(data) // 2] ^= 0xFF  # flip one payload bit
    with open(path, "wb") as fh:
        fh.write(bytes(data))
    with pytest.raises(ExecutionError, match="checksum mismatch"):
        list(iter_run(path))

    with open(path, "wb") as fh:  # truncate mid-frame
        fh.write(bytes(data[:len(data) // 2]))
    with pytest.raises(ExecutionError, match="truncated spill frame"):
        list(iter_run(path))


def test_merge_is_scatter_independent(tmp_path):
    recs = sorted(_records(60), key=lambda r: (r[1], r[0]))
    one = str(tmp_path / "one.run")
    write_run(one, recs)
    scattered = []
    for i in range(3):  # deal records round-robin across three runs
        part = sorted(recs[i::3], key=lambda r: (r[1], r[0]))
        path = str(tmp_path / f"part{i}.run")
        write_run(path, part)
        scattered.append(path)
    key = lambda k: k
    assert list(merge_records([iter_run(p) for p in scattered], key)) == \
        list(merge_records([iter_run(one)], key))


def test_disk_table_round_trip(tmp_path):
    rows = [{"a": i, "b": f"x\t{i}\n\\", "c": None if i % 3 else i / 7,
             "d": i % 2 == 0, "e": (i, "t")} for i in range(100)]
    # schema types are declarative; the codec dispatches on the runtime
    # type, so bool/tuple values round-trip regardless of column type
    schema = Schema.from_spec({"a": "int", "b": "string", "c": "float",
                               "d": "int", "e": "string"})
    mem = Table("t", schema, [dict(r) for r in rows])
    disk = disk_table_from(mem, segment_rows=7,
                           directory=str(tmp_path))
    assert len(disk) == len(mem)
    assert disk.rows == mem.rows
    assert list(disk) == mem.rows
    assert disk.estimated_bytes() == mem.estimated_bytes()
    assert list(disk.row_range(10, 25)) == mem.rows[10:25]
    assert list(disk.row_range(95, 10_000)) == mem.rows[95:]
    assert len(disk.row_range(3, 3)) == 0

    reopened = open_disk_table("t", schema, disk.path)
    assert reopened.rows == mem.rows
    assert reopened.estimated_bytes() == mem.estimated_bytes()

    with pytest.raises(ExecutionError, match="immutable"):
        disk.append({"a": 1, "b": "", "c": None, "d": False, "e": ""})


def test_resolve_memory_budget(monkeypatch):
    assert resolve_memory_budget(None) is None
    monkeypatch.setenv("REPRO_MEMORY_MB", "2")
    env = resolve_memory_budget(None)
    assert env is not None and env.budget_bytes == 2 * 1024 * 1024
    shared = MemoryBudget(1024)
    assert resolve_memory_budget(shared) is shared
    with pytest.raises(ExecutionError):
        resolve_memory_budget(0)
    with pytest.raises(ExecutionError):
        resolve_memory_budget("lots")


def test_budget_cleans_spill_dir_on_close():
    budget = MemoryBudget(1024)
    path = budget.new_run_path("job1/part0")
    with open(path, "wb") as fh:
        fh.write(b"x")
    spill_dir = budget.spill_dir
    assert os.path.exists(path)
    budget.close()
    assert not os.path.exists(spill_dir)


def test_drop_intermediates_prunes_version_stamps():
    ds = Datastore(Catalog())
    base = Table("fact", Schema.of(("k", T.INT)), [{"k": 1}])
    ds.load_table(base)
    stamp_before = ds.version("fact")
    for i in range(5):
        ds.write_intermediate(f"ns.out{i}",
                              Table(f"ns.out{i}",
                                    Schema.of(("k", T.INT)), []))
    assert len(ds._versions) == 6
    ds.drop_intermediates()
    # intermediates' stamps go with their tables; base tables keep theirs
    assert set(ds._versions) == {"fact"}
    assert ds.version("fact") == stamp_before
    # the clock never rewinds: a re-registered name gets a fresh stamp
    ds.write_intermediate("ns.out0",
                          Table("ns.out0", Schema.of(("k", T.INT)), []))
    assert ds._versions["ns.out0"] > 6
