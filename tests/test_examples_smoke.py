"""Smoke tests: every example script runs to completion.

Each example is executed in-process (imported and ``main()`` called) with
stdout captured, so a refactor that breaks the public API surfaces here
rather than only when a human runs the walkthroughs.
"""

import importlib.util
import io
import os
import sys
from contextlib import redirect_stdout

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = [
    "quickstart",
    "clickstream_sessionization",
    "tpch_dss",
    "correlation_explorer",
    "cluster_whatif",
    "batch_reports",
]


def _load(name):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, monkeypatch):
    monkeypatch.setattr(sys, "argv", [f"{name}.py"])
    module = _load(name)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main()
    output = buffer.getvalue()
    assert len(output) > 100, "example produced almost no output"


def test_quickstart_shows_both_modes(monkeypatch):
    monkeypatch.setattr(sys, "argv", ["quickstart.py"])
    module = _load("quickstart")
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main()
    out = buffer.getvalue()
    assert "ysmart" in out and "hive" in out
    assert "avg_yearly" in out


def test_batch_reports_shows_sharing(monkeypatch):
    monkeypatch.setattr(sys, "argv", ["batch_reports.py"])
    module = _load("batch_reports")
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main()
    out = buffer.getvalue()
    assert "batch (shared)" in out
    assert "waiting_suppliers" in out
