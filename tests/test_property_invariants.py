"""Property-based tests for structural invariants: cost-model
monotonicity, tag encoding, union-find, sort ordering, and planner
well-formedness over randomized query shapes."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.correlation import UnionFind
from repro.hadoop import HadoopCostModel, small_cluster
from repro.mr.counters import JobCounters
from repro.mr.kv import TagPolicy, key_bytes, tag_bytes, value_bytes
from repro.refexec.executor import sort_rows

common = settings(max_examples=50, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])


# ---------------------------------------------------------------------------
# Cost-model monotonicity (DESIGN.md invariant 6)
# ---------------------------------------------------------------------------

# input_bytes starts above the point where the map-slot pool is already
# saturated: below it, growing the input adds splits and therefore
# parallelism, which can legitimately shave a few microseconds off the
# other map work — a real (and realistic) small-scale non-monotonicity
# hypothesis found.
counter_volumes = st.fixed_dictionaries({
    "input_bytes": st.integers(50_000_000, 10**9),
    "input_records": st.integers(1, 10**6),
    "map_output_bytes": st.integers(0, 10**8),
    "map_output_records": st.integers(0, 10**6),
    "reduce_dispatch_ops": st.integers(0, 10**6),
    "reduce_compute_ops": st.integers(0, 10**6),
    "output_bytes": st.integers(0, 10**8),
})


def make_counters(v):
    c = JobCounters(job_id="p", name="prop", num_reducers=8)
    c.input_bytes = {"t": v["input_bytes"]}
    c.input_records = {"t": v["input_records"]}
    c.map_eval_ops = v["input_records"]
    c.pre_combine_records = v["map_output_records"]
    c.map_output_records = v["map_output_records"]
    c.map_output_bytes = v["map_output_bytes"]
    c.reduce_groups = max(1, v["map_output_records"] // 10)
    c.reduce_input_records = v["map_output_records"]
    c.reduce_dispatch_ops = v["reduce_dispatch_ops"]
    c.reduce_compute_ops = v["reduce_compute_ops"]
    c.output_records = {"o": 1}
    c.output_bytes = {"o": v["output_bytes"]}
    return c


@common
@given(v=counter_volumes,
       field=st.sampled_from(["input_bytes", "map_output_bytes",
                              "reduce_compute_ops", "output_bytes"]),
       factor=st.integers(2, 100))
def test_cost_model_monotone_in_every_volume(v, field, factor):
    model = HadoopCostModel(small_cluster(data_scale=10))
    t1 = model.job_timing(make_counters(v)).total_s
    bigger = dict(v)
    bigger[field] = v[field] * factor + 1
    t2 = model.job_timing(make_counters(bigger)).total_s
    assert t2 >= t1 - 1e-9


@common
@given(v=counter_volumes, scale=st.floats(10.0, 1000.0))
def test_cost_model_monotone_in_data_scale(v, scale):
    # Base scale 10 keeps the smallest generated input past slot
    # saturation (see the strategy comment above).
    t1 = HadoopCostModel(small_cluster(data_scale=10)).job_timing(
        make_counters(v)).total_s
    t2 = HadoopCostModel(small_cluster(data_scale=10 * scale)).job_timing(
        make_counters(v)).total_s
    assert t2 >= t1 - 1e-9


# ---------------------------------------------------------------------------
# Tag encoding
# ---------------------------------------------------------------------------

@common
@given(n_roles=st.integers(1, 12), data=st.data())
def test_best_tag_never_worse(n_roles, data):
    universe = [f"r{i}" for i in range(n_roles)]
    subset = frozenset(data.draw(
        st.sets(st.sampled_from(universe), min_size=1)))
    best = tag_bytes(subset, n_roles, TagPolicy.BEST)
    direct = tag_bytes(subset, n_roles, TagPolicy.DIRECT)
    inverted = tag_bytes(subset, n_roles, TagPolicy.INVERTED)
    assert best == min(direct, inverted)
    assert best >= 0


def test_single_role_job_needs_no_tag():
    assert tag_bytes(frozenset(["r0"]), 1, TagPolicy.DIRECT) == 0


@common
@given(payload=st.dictionaries(
    st.text(min_size=1, max_size=8),
    st.one_of(st.integers(-10**6, 10**6), st.text(max_size=10), st.none()),
    max_size=8))
def test_value_bytes_counts_every_field(payload):
    total = value_bytes(payload)
    assert total == sum(len(str(v)) + 1 for v in payload.values())


@common
@given(key=st.tuples(st.integers(), st.text(max_size=5)))
def test_key_bytes_positive(key):
    assert key_bytes(key) >= len(key)


# ---------------------------------------------------------------------------
# Union-find
# ---------------------------------------------------------------------------

@common
@given(pairs=st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)),
                      max_size=40))
def test_union_find_is_an_equivalence(pairs):
    uf = UnionFind()
    for a, b in pairs:
        uf.union(str(a), str(b))
    # Reflexive & symmetric & transitive via class representatives.
    for a, b in pairs:
        assert uf.same(str(a), str(b))
    # Build the reference partition with naive flood fill.
    import collections
    adj = collections.defaultdict(set)
    for a, b in pairs:
        adj[a].add(b)
        adj[b].add(a)
    for start in list(adj):
        seen = {start}
        stack = [start]
        while stack:
            cur = stack.pop()
            for nxt in adj[cur]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        for member in seen:
            assert uf.same(str(start), str(member))


# ---------------------------------------------------------------------------
# Sorting
# ---------------------------------------------------------------------------

@common
@given(rows=st.lists(st.fixed_dictionaries({
    "a": st.one_of(st.none(), st.integers(-50, 50)),
    "b": st.integers(0, 5),
}), max_size=30))
def test_sort_rows_total_order(rows):
    out = sort_rows(rows, [("a", True), ("b", False)])
    assert len(out) == len(rows)
    # NULLS LAST ascending on a; within equal a, b descending.
    for prev, cur in zip(out, out[1:]):
        pa = (prev["a"] is None, prev["a"] if prev["a"] is not None else 0)
        ca = (cur["a"] is None, cur["a"] if cur["a"] is not None else 0)
        assert pa <= ca
        if prev["a"] == cur["a"]:
            assert prev["b"] >= cur["b"]


@common
@given(rows=st.lists(st.fixed_dictionaries({
    "a": st.integers(0, 3), "b": st.integers(0, 100)}), max_size=30))
def test_sort_rows_is_stable(rows):
    tagged = [dict(r, idx=i) for i, r in enumerate(rows)]
    out = sort_rows(tagged, [("a", True)])
    for prev, cur in zip(out, out[1:]):
        if prev["a"] == cur["a"]:
            assert prev["idx"] < cur["idx"]


# ---------------------------------------------------------------------------
# Planner well-formedness on randomized query shapes
# ---------------------------------------------------------------------------

@common
@given(agg=st.sampled_from(["count(*)", "sum(f.v)", "min(f.v)"]),
       filtered=st.booleans(), ordered=st.booleans(),
       grouped=st.booleans())
def test_random_query_shapes_validate(agg, filtered, ordered, grouped):
    from repro.catalog import Catalog, Schema
    from repro.catalog.types import ColumnType as T
    from repro.plan import plan_query, validate_plan
    from repro.sqlparser.parser import parse_sql

    cat = Catalog()
    cat.register("f", Schema.of(("k", T.INT), ("g", T.INT), ("v", T.INT)))
    parts = [f"SELECT {'f.g, ' if grouped else ''}{agg} AS a FROM f"]
    if filtered:
        parts.append("WHERE f.v > 3")
    if grouped:
        parts.append("GROUP BY f.g")
    if ordered:
        parts.append("ORDER BY a")
    plan = plan_query(parse_sql(" ".join(parts)), cat)
    validate_plan(plan)  # must not raise
