"""Property-based tests for the adaptive statistics layer: for ANY
random table, ANY skew profile, ANY executor/scheduler, and ANY fault
seed, a stats-driven run (gates lowered so every decision point can
fire) produces rows byte-identical to the static run and to the
reference executor — and within one stats configuration, rows and
``comparable()`` counters are identical across executors, schedulers,
and fault injection (sketches and partition plans are attempt-safe:
retried tasks re-read the same compiled job spec)."""

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.catalog import Catalog, Schema
from repro.catalog.types import ColumnType as T
from repro.core.translator import translate_sql
from repro.data import Datastore, Table
from repro.data.table import rows_equal_unordered
from repro.mr import FaultPlan, Runtime, make_executor
from repro.plan.planner import plan_query
from repro.refexec import run_reference
from repro.sqlparser.parser import parse_sql
from repro.stats import StatsContext, StatsOptimizer, StatsPolicy

_ns = itertools.count(1)

MAX_ATTEMPTS = 20

# Engage every decision gate on tiny tables; heavy_factor near 1 so even
# mild skew triggers partition plans.
LOW_GATES = dict(min_rows=1, heavy_factor=1.1)

# Skewed fact rows: a hot block of key 0 (drawn separately so hypothesis
# can shrink the skew itself) plus a light tail over a small key range.
hot_sizes = st.integers(0, 40)
tail_rows = st.lists(
    st.fixed_dictionaries({
        "k": st.integers(0, 9),
        "v": st.one_of(st.none(), st.integers(-50, 50)),
    }), min_size=0, max_size=30)

seeds = st.integers(0, 2 ** 16)
probabilities = st.floats(0.0, 0.25, allow_nan=False)
worker_choices = st.integers(1, 4)  # 1 selects the serial executor
scheduler_choices = st.sampled_from(["dataflow", "wave"])

QUERY_SHAPES = [
    # standalone agg: combiner + cardinality-split decision points
    "SELECT f.k, sum(f.v) AS s FROM fact AS f GROUP BY f.k",
    "SELECT f.k, count(DISTINCT f.v) AS c FROM fact AS f GROUP BY f.k",
    # reduce-side join: the skew-partition decision point
    "SELECT f.k, f.v, d.w FROM fact AS f, dim AS d WHERE f.k = d.k",
    # join + agg chain: merges and lineage through intermediates
    "SELECT f.k, count(*) AS n FROM fact AS f, dim AS d "
    "WHERE f.k = d.k GROUP BY f.k",
]


def make_store(hot, tail):
    rows = [{"k": 0, "v": i % 13} for i in range(hot)] + tail
    ds = Datastore(Catalog())
    ds.load_table(Table("fact", Schema.of(("k", T.INT), ("v", T.INT)),
                        rows))
    ds.load_table(Table("dim", Schema.of(("k", T.INT), ("w", T.STRING)),
                        [{"k": k, "w": f"w{k}"} for k in range(10)]))
    return ds


def adaptive_translation(sql, ds, ctx):
    opt = StatsOptimizer(ds, ctx, num_reducers=8)
    return translate_sql(sql, catalog=ds.catalog,
                         namespace=f"ps{next(_ns)}", optimizer=opt)


def canon(rows):
    return sorted(repr(tuple(sorted(r.items(), key=lambda kv: kv[0])))
                  for r in rows)


common = settings(max_examples=12, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])


@common
@given(hot=hot_sizes, tail=tail_rows,
       shape=st.sampled_from(QUERY_SHAPES))
def test_adaptive_rows_match_static_and_refexec(hot, tail, shape):
    ds = make_store(hot, tail)
    ctx = StatsContext(policy=StatsPolicy(**LOW_GATES))
    tr = adaptive_translation(shape, ds, ctx)
    Runtime(ds, stats=ctx, split_rows="auto").run_jobs(
        tr.jobs, dependencies=tr.dependencies())
    adaptive_rows = [dict(r)
                     for r in ds.intermediate(tr.final_dataset).rows]

    tr_static = translate_sql(shape, catalog=ds.catalog,
                              namespace=f"ps{next(_ns)}")
    Runtime(ds, stats="off", split_rows="auto").run_jobs(
        tr_static.jobs, dependencies=tr_static.dependencies())
    static_rows = [dict(r)
                   for r in ds.intermediate(tr_static.final_dataset).rows]

    assert canon(adaptive_rows) == canon(static_rows)
    ref = run_reference(plan_query(parse_sql(shape), ds.catalog), ds)
    assert rows_equal_unordered(adaptive_rows, ref.rows,
                                tr.output_columns)


@common
@given(hot=hot_sizes, tail=tail_rows,
       shape=st.sampled_from(QUERY_SHAPES),
       workers=worker_choices, scheduler=scheduler_choices,
       seed=seeds, probability=probabilities)
def test_adaptive_identical_across_executors_and_faults(
        hot, tail, shape, workers, scheduler, seed, probability):
    ds = make_store(hot, tail)
    ctx = StatsContext(policy=StatsPolicy(**LOW_GATES))
    tr = adaptive_translation(shape, ds, ctx)

    base = Runtime(ds, stats=ctx, split_rows="auto")
    runs_base = base.run_jobs(tr.jobs, dependencies=tr.dependencies())
    rows_base = list(ds.intermediate(tr.final_dataset).rows)

    other = Runtime(ds, executor=make_executor(workers),
                    scheduler=scheduler, stats=ctx, split_rows="auto",
                    fault_plan=FaultPlan(probability, seed=seed),
                    max_attempts=MAX_ATTEMPTS)
    runs = other.run_jobs(tr.jobs, dependencies=tr.dependencies())

    assert [r.counters.comparable() for r in runs] == \
        [r.counters.comparable() for r in runs_base]
    assert list(ds.intermediate(tr.final_dataset).rows) == rows_base


@common
@given(hot=st.integers(20, 40), tail=tail_rows,
       workers=worker_choices, scheduler=scheduler_choices)
def test_skew_plan_assignment_deterministic(hot, tail, workers,
                                            scheduler):
    """When a partition plan engages, re-running the same jobs on any
    executor reproduces the same per-partition reduce loads."""
    ds = make_store(hot, tail)
    ctx = StatsContext(policy=StatsPolicy(**LOW_GATES))
    sql = "SELECT f.k, f.v, d.w FROM fact AS f, dim AS d WHERE f.k = d.k"
    tr = adaptive_translation(sql, ds, ctx)

    first = Runtime(ds, stats=ctx).run_jobs(
        tr.jobs, dependencies=tr.dependencies())
    second = Runtime(ds, executor=make_executor(workers),
                     scheduler=scheduler, stats=ctx).run_jobs(
        tr.jobs, dependencies=tr.dependencies())
    assert [r.counters.reduce_task_records for r in first] == \
        [r.counters.reduce_task_records for r in second]
