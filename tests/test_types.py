"""Unit tests for repro.catalog.types."""

import pytest

from repro.catalog.types import ColumnType, type_of_value
from repro.errors import CatalogError


class TestColumnTypeValidate:
    def test_int_accepts_int(self):
        ColumnType.INT.validate(42)

    def test_int_rejects_float(self):
        with pytest.raises(CatalogError):
            ColumnType.INT.validate(4.2)

    def test_int_rejects_bool(self):
        with pytest.raises(CatalogError):
            ColumnType.INT.validate(True)

    def test_float_accepts_int_and_float(self):
        ColumnType.FLOAT.validate(1)
        ColumnType.FLOAT.validate(1.5)

    def test_float_rejects_string(self):
        with pytest.raises(CatalogError):
            ColumnType.FLOAT.validate("1.5")

    def test_string_accepts_str(self):
        ColumnType.STRING.validate("hello")

    def test_string_rejects_int(self):
        with pytest.raises(CatalogError):
            ColumnType.STRING.validate(7)

    def test_date_is_string_typed(self):
        ColumnType.DATE.validate("1997-03-05")

    def test_timestamp_is_int_typed(self):
        ColumnType.TIMESTAMP.validate(1_000_000)
        with pytest.raises(CatalogError):
            ColumnType.TIMESTAMP.validate("1997-03-05")

    def test_null_is_valid_for_every_type(self):
        for typ in ColumnType:
            typ.validate(None)

    def test_any_accepts_everything(self):
        ColumnType.ANY.validate(1)
        ColumnType.ANY.validate("x")
        ColumnType.ANY.validate((1, 2))


class TestColumnTypeParse:
    @pytest.mark.parametrize("name,expected", [
        ("int", ColumnType.INT),
        ("INT", ColumnType.INT),
        ("Float", ColumnType.FLOAT),
        ("string", ColumnType.STRING),
        ("date", ColumnType.DATE),
        ("timestamp", ColumnType.TIMESTAMP),
    ])
    def test_parse_known(self, name, expected):
        assert ColumnType.parse(name) is expected

    def test_parse_unknown_raises(self):
        with pytest.raises(CatalogError, match="unknown column type"):
            ColumnType.parse("varchar")


class TestTypeOfValue:
    def test_int(self):
        assert type_of_value(3) is ColumnType.INT

    def test_float(self):
        assert type_of_value(3.5) is ColumnType.FLOAT

    def test_string(self):
        assert type_of_value("x") is ColumnType.STRING

    def test_bool_rejected(self):
        with pytest.raises(CatalogError):
            type_of_value(True)

    def test_none_rejected(self):
        with pytest.raises(CatalogError):
            type_of_value(None)
