"""Tests for the TPC-H and click-stream workload generators."""

import pytest

from repro.data.clickstream import (
    CATEGORY_X,
    CATEGORY_Y,
    ClickstreamConfig,
    generate_clickstream,
)
from repro.data.tpch import TpchConfig, generate_tpch
from repro.errors import DataGenError


@pytest.fixture(scope="module")
def tpch():
    return generate_tpch(TpchConfig(scale_factor=0.002, seed=99))


class TestTpchCardinalities:
    def test_tables_present(self, tpch):
        assert set(tpch) == {"nation", "supplier", "customer", "part",
                             "orders", "lineitem"}

    def test_ratios(self, tpch):
        cfg = TpchConfig(scale_factor=0.002)
        assert len(tpch["orders"]) == cfg.num_orders == 3000
        assert len(tpch["customer"]) == cfg.num_customers == 300
        assert len(tpch["part"]) == cfg.num_parts == 400
        assert len(tpch["supplier"]) == cfg.num_suppliers == 20
        assert len(tpch["nation"]) == 25

    def test_lineitem_per_order(self, tpch):
        ratio = len(tpch["lineitem"]) / len(tpch["orders"])
        assert 2.0 < ratio < 7.5  # 1..7 lines per order


class TestTpchIntegrity:
    def test_lineitem_foreign_keys(self, tpch):
        cfg = TpchConfig(scale_factor=0.002)
        order_keys = set(tpch["orders"].column_values("o_orderkey"))
        for row in tpch["lineitem"].rows:
            assert row["l_orderkey"] in order_keys
            assert 1 <= row["l_partkey"] <= cfg.num_parts
            assert 1 <= row["l_suppkey"] <= cfg.num_suppliers

    def test_orders_reference_customers(self, tpch):
        cfg = TpchConfig(scale_factor=0.002)
        for row in tpch["orders"].rows:
            assert 1 <= row["o_custkey"] <= cfg.num_customers

    def test_every_order_has_lineitems(self, tpch):
        with_lines = set(tpch["lineitem"].column_values("l_orderkey"))
        assert with_lines == set(tpch["orders"].column_values("o_orderkey"))

    def test_schema_validity(self, tpch):
        for table in tpch.values():
            for row in table.rows[:50]:
                table.schema.validate_row(row)


class TestTpchDistributions:
    def test_late_deliveries_near_configured_fraction(self, tpch):
        late = sum(1 for r in tpch["lineitem"].rows
                   if r["l_receiptdate"] > r["l_commitdate"])
        frac = late / len(tpch["lineitem"])
        assert 0.15 < frac < 0.35

    def test_failed_orders_near_half(self, tpch):
        failed = sum(1 for r in tpch["orders"].rows
                     if r["o_orderstatus"] == "F")
        frac = failed / len(tpch["orders"])
        assert 0.4 < frac < 0.6

    def test_q18_big_orders_exist(self, tpch):
        sums = {}
        for row in tpch["lineitem"].rows:
            sums[row["l_orderkey"]] = sums.get(row["l_orderkey"], 0) \
                + row["l_quantity"]
        assert any(s > 300 for s in sums.values())

    def test_single_supplier_orders_exist(self, tpch):
        supps = {}
        for row in tpch["lineitem"].rows:
            supps.setdefault(row["l_orderkey"], set()).add(row["l_suppkey"])
        singles = sum(1 for s in supps.values() if len(s) == 1)
        multis = sum(1 for s in supps.values() if len(s) > 1)
        assert singles > 0 and multis > 0

    def test_quantity_range(self, tpch):
        values = tpch["lineitem"].column_values("l_quantity")
        assert min(values) >= 1.0 and max(values) <= 50.0


class TestTpchDeterminism:
    def test_same_seed_same_data(self):
        a = generate_tpch(TpchConfig(scale_factor=0.0005, seed=5))
        b = generate_tpch(TpchConfig(scale_factor=0.0005, seed=5))
        assert a["lineitem"].rows == b["lineitem"].rows
        assert a["orders"].rows == b["orders"].rows

    def test_different_seed_different_data(self):
        a = generate_tpch(TpchConfig(scale_factor=0.0005, seed=5))
        b = generate_tpch(TpchConfig(scale_factor=0.0005, seed=6))
        assert a["lineitem"].rows != b["lineitem"].rows


class TestTpchConfigValidation:
    def test_bad_scale(self):
        with pytest.raises(DataGenError):
            TpchConfig(scale_factor=0)

    def test_bad_fraction(self):
        with pytest.raises(DataGenError):
            TpchConfig(late_delivery_fraction=1.5)
        with pytest.raises(DataGenError):
            TpchConfig(failed_order_fraction=-0.1)

    def test_bad_lines(self):
        with pytest.raises(DataGenError):
            TpchConfig(max_lines_per_order=0)


@pytest.fixture(scope="module")
def clicks():
    return generate_clickstream(ClickstreamConfig(num_users=40, seed=3))


class TestClickstream:
    def test_schema(self, clicks):
        for row in clicks.rows[:50]:
            clicks.schema.validate_row(row)

    def test_timestamps_strictly_increasing_per_user(self, clicks):
        last = {}
        for row in clicks.rows:
            uid = row["uid"]
            if uid in last:
                assert row["ts"] > last[uid]
            last[uid] = row["ts"]

    def test_xy_sessions_exist(self, clicks):
        """Q-CSA needs users with an X click followed by a Y click."""
        per_user = {}
        for row in clicks.rows:
            per_user.setdefault(row["uid"], []).append(row)
        qualifying = 0
        for rows in per_user.values():
            xs = [r["ts"] for r in rows if r["cid"] == CATEGORY_X]
            ys = [r["ts"] for r in rows if r["cid"] == CATEGORY_Y]
            if xs and ys and min(xs) < max(ys):
                qualifying += 1
        assert qualifying > len(per_user) / 4

    def test_category_skew(self, clicks):
        """Filler categories follow a head-heavy (Zipf-ish) distribution."""
        counts = {}
        for row in clicks.rows:
            if row["cid"] > 2:
                counts[row["cid"]] = counts.get(row["cid"], 0) + 1
        ordered = sorted(counts.values(), reverse=True)
        assert ordered[0] > ordered[-1]

    def test_determinism(self):
        a = generate_clickstream(ClickstreamConfig(num_users=10, seed=1))
        b = generate_clickstream(ClickstreamConfig(num_users=10, seed=1))
        assert a.rows == b.rows

    def test_config_validation(self):
        with pytest.raises(DataGenError):
            ClickstreamConfig(num_users=0)
        with pytest.raises(DataGenError):
            ClickstreamConfig(num_categories=2)
        with pytest.raises(DataGenError):
            ClickstreamConfig(mean_session_length=1)
        with pytest.raises(DataGenError):
            ClickstreamConfig(xy_session_fraction=2.0)
