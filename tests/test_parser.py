"""Unit tests for the SQL parser."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sqlparser.ast import (
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    FuncCall,
    InList,
    IsNull,
    JoinClause,
    Literal,
    SelectStmt,
    SubqueryRef,
    TableRef,
    UnaryOp,
    conjoin,
    conjuncts,
    contains_aggregate,
)
from repro.sqlparser.parser import parse_sql
from repro.workloads.queries import paper_queries


class TestSelectList:
    def test_single_column(self):
        stmt = parse_sql("SELECT a FROM t")
        assert stmt.items[0].expr == ColumnRef(None, "a")
        assert stmt.items[0].alias is None

    def test_alias_with_as(self):
        stmt = parse_sql("SELECT a AS x FROM t")
        assert stmt.items[0].alias == "x"

    def test_bare_alias(self):
        stmt = parse_sql("SELECT a x FROM t")
        assert stmt.items[0].alias == "x"

    def test_qualified_column(self):
        stmt = parse_sql("SELECT t1.a FROM t AS t1")
        assert stmt.items[0].expr == ColumnRef("t1", "a")

    def test_multiple_items(self):
        stmt = parse_sql("SELECT a, b, a + b AS s FROM t")
        assert len(stmt.items) == 3

    def test_distinct(self):
        assert parse_sql("SELECT DISTINCT a FROM t").distinct
        assert not parse_sql("SELECT a FROM t").distinct


class TestExpressions:
    def _expr(self, text):
        return parse_sql(f"SELECT {text} FROM t").items[0].expr

    def test_precedence_mul_over_add(self):
        expr = self._expr("1 + 2 * 3")
        assert expr == BinaryOp("+", Literal(1),
                                BinaryOp("*", Literal(2), Literal(3)))

    def test_parentheses(self):
        expr = self._expr("(1 + 2) * 3")
        assert expr == BinaryOp("*", BinaryOp("+", Literal(1), Literal(2)),
                                Literal(3))

    def test_unary_minus(self):
        assert self._expr("-a") == UnaryOp("-", ColumnRef(None, "a"))

    def test_float_literal(self):
        assert self._expr("0.2") == Literal(0.2)

    def test_string_literal(self):
        assert self._expr("'F'") == Literal("F")

    def test_null_literal(self):
        assert self._expr("NULL") == Literal(None)

    def test_count_star(self):
        expr = self._expr("count(*)")
        assert expr == FuncCall("count", star=True)
        assert contains_aggregate(expr)

    def test_count_distinct(self):
        expr = self._expr("count(DISTINCT a)")
        assert expr == FuncCall("count", (ColumnRef(None, "a"),),
                                distinct=True)

    def test_nested_function_arg(self):
        expr = self._expr("sum(a * 2)")
        assert expr.name == "sum"
        assert isinstance(expr.args[0], BinaryOp)

    def test_case_when(self):
        expr = self._expr("CASE WHEN a = 1 THEN 'x' ELSE 'y' END")
        assert isinstance(expr, CaseWhen)
        assert expr.default == Literal("y")

    def test_case_requires_when(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT CASE ELSE 1 END FROM t")


class TestPredicates:
    def _where(self, text):
        return parse_sql(f"SELECT a FROM t WHERE {text}").where

    def test_and_or_precedence(self):
        expr = self._where("a = 1 OR b = 2 AND c = 3")
        assert expr.op == "OR"
        assert expr.right.op == "AND"

    def test_not(self):
        expr = self._where("NOT a = 1")
        assert isinstance(expr, UnaryOp) and expr.op == "NOT"

    def test_is_null(self):
        assert self._where("a IS NULL") == IsNull(ColumnRef(None, "a"))

    def test_is_not_null(self):
        assert self._where("a IS NOT NULL") == IsNull(
            ColumnRef(None, "a"), negated=True)

    def test_between(self):
        expr = self._where("a BETWEEN 1 AND 5")
        assert expr == Between(ColumnRef(None, "a"), Literal(1), Literal(5))

    def test_not_between(self):
        expr = self._where("a NOT BETWEEN 1 AND 5")
        assert isinstance(expr, UnaryOp) and expr.op == "NOT"

    def test_in_list(self):
        expr = self._where("a IN (1, 2, 3)")
        assert isinstance(expr, InList) and len(expr.items) == 3

    def test_not_in(self):
        expr = self._where("a NOT IN (1)")
        assert isinstance(expr, InList) and expr.negated

    def test_comparison_operators(self):
        for op in ("=", "<>", "<", ">", "<=", ">="):
            expr = self._where(f"a {op} 1")
            assert expr.op == op


class TestFromClause:
    def test_table_alias_forms(self):
        stmt = parse_sql("SELECT a FROM t AS x")
        assert stmt.from_items[0] == TableRef("t", "x")
        stmt = parse_sql("SELECT a FROM t x")
        assert stmt.from_items[0] == TableRef("t", "x")

    def test_comma_join(self):
        stmt = parse_sql("SELECT a FROM t1, t2, t3")
        assert len(stmt.from_items) == 3

    def test_explicit_join(self):
        stmt = parse_sql("SELECT a FROM t1 JOIN t2 ON t1.x = t2.y")
        item = stmt.from_items[0]
        assert isinstance(item, JoinClause) and item.join_type == "inner"

    @pytest.mark.parametrize("sql_word,jt", [
        ("INNER JOIN", "inner"), ("LEFT JOIN", "left"),
        ("LEFT OUTER JOIN", "left"), ("RIGHT OUTER JOIN", "right"),
        ("FULL OUTER JOIN", "full"),
    ])
    def test_join_types(self, sql_word, jt):
        stmt = parse_sql(f"SELECT a FROM t1 {sql_word} t2 ON t1.x = t2.y")
        assert stmt.from_items[0].join_type == jt

    def test_join_chain_left_associates(self):
        stmt = parse_sql(
            "SELECT a FROM t1 JOIN t2 ON t1.x = t2.x "
            "JOIN t3 ON t2.y = t3.y")
        outer = stmt.from_items[0]
        assert isinstance(outer.left, JoinClause)
        assert outer.right == TableRef("t3", None)

    def test_derived_table(self):
        stmt = parse_sql("SELECT a FROM (SELECT b FROM t) AS d")
        item = stmt.from_items[0]
        assert isinstance(item, SubqueryRef) and item.alias == "d"
        assert isinstance(item.query, SelectStmt)

    def test_derived_table_requires_alias(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT a FROM (SELECT b FROM t)")

    def test_parenthesized_join(self):
        stmt = parse_sql(
            "SELECT a FROM (t1 JOIN t2 ON t1.x = t2.x)")
        assert isinstance(stmt.from_items[0], JoinClause)


class TestTrailingClauses:
    def test_group_by(self):
        stmt = parse_sql("SELECT a, count(*) FROM t GROUP BY a")
        assert stmt.group_by == (ColumnRef(None, "a"),)

    def test_having(self):
        stmt = parse_sql(
            "SELECT a FROM t GROUP BY a HAVING count(*) > 2")
        assert stmt.having is not None

    def test_order_by_directions(self):
        stmt = parse_sql("SELECT a, b FROM t ORDER BY a DESC, b ASC, a")
        assert [(o.expr.name, o.ascending) for o in stmt.order_by] == [
            ("a", False), ("b", True), ("a", True)]

    def test_limit(self):
        assert parse_sql("SELECT a FROM t LIMIT 10").limit == 10

    def test_limit_requires_integer(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT a FROM t LIMIT 1.5")

    def test_trailing_semicolon_ok(self):
        parse_sql("SELECT a FROM t;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError, match="trailing"):
            parse_sql("SELECT a FROM t garbage extra")


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "SELECT",
        "SELECT FROM t",
        "SELECT a",
        "SELECT a FROM",
        "SELECT a FROM t WHERE",
        "SELECT a FROM t GROUP a",
        "SELECT a FROM t1 JOIN t2",
        "SELECT a FROM t ORDER a",
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(SqlSyntaxError):
            parse_sql(bad)


class TestAstHelpers:
    def test_conjuncts_splits_top_level_and(self):
        where = parse_sql(
            "SELECT a FROM t WHERE a = 1 AND (b = 2 OR c = 3) AND d = 4"
        ).where
        parts = conjuncts(where)
        assert len(parts) == 3

    def test_conjoin_roundtrip(self):
        where = parse_sql(
            "SELECT a FROM t WHERE a = 1 AND b = 2").where
        assert conjoin(conjuncts(where)) == where

    def test_conjoin_empty(self):
        assert conjoin([]) is None

    def test_walk_visits_all(self):
        expr = parse_sql("SELECT a + b * c FROM t").items[0].expr
        names = {e.name for e in expr.walk() if isinstance(e, ColumnRef)}
        assert names == {"a", "b", "c"}


class TestToSqlRoundtrip:
    @pytest.mark.parametrize("name", [
        "q17", "q18", "q21", "q21_subtree", "q_csa", "q_agg"])
    def test_paper_queries_roundtrip(self, name):
        """Rendering a parsed statement and reparsing yields the same AST."""
        sql = paper_queries()[name]
        first = parse_sql(sql)
        second = parse_sql(first.to_sql())
        assert first == second

    def test_roundtrip_preserves_string_escapes(self):
        stmt = parse_sql("SELECT a FROM t WHERE b = 'don''t'")
        assert parse_sql(stmt.to_sql()) == stmt
