"""Tests for the task-based execution runtime (`repro.mr.tasks` +
`repro.mr.runtime`): split planning, task decomposition, the wave
scheduler, and the central invariant that the executor never changes
results — only wall-clock.

The acceptance-level tests live here too: serial and parallel runs
produce identical rows AND identical :class:`JobCounters` on every paper
query, and a multi-job plan demonstrably runs its independent jobs
concurrently (observed through the runtime trace, not wall-clock).
"""

import itertools

import pytest

from repro.catalog import Catalog, Schema, standard_catalog
from repro.catalog.types import ColumnType as T
from repro.cmf import CommonReducer
from repro.core.batch import run_batch, translate_batch
from repro.core.translator import translate_sql
from repro.data import Datastore, Table, rows_equal_unordered
from repro.errors import ExecutionError
from repro.mr import (
    EmitSpec,
    InputSplit,
    JobTaskGraph,
    MapInput,
    MRJob,
    OutputSpec,
    ParallelExecutor,
    Runtime,
    SerialExecutor,
    job_spec_dependencies,
    make_executor,
    stable_hash,
)
from repro.ops import SPTask, TaskInput
from repro.workloads.queries import paper_queries
from repro.workloads.runner import run_query, run_translation

_ns = itertools.count(1)


def small_datastore():
    ds = Datastore(Catalog())
    ds.load_table(Table("nums", Schema.of(("k", T.INT), ("v", T.INT)), [
        {"k": 1, "v": 10}, {"k": 2, "v": 20}, {"k": 1, "v": 30},
        {"k": 3, "v": 40}, {"k": 2, "v": 50},
    ]))
    return ds


def passthrough_job(job_id="j1", dataset="nums", out=None, **kwargs):
    def emit(record):
        return (record["k"],), {"v": record["v"]}

    task = SPTask("sp", TaskInput.shuffle("in", ["k"]))
    defaults = dict(
        job_id=job_id, name="pass",
        map_inputs=[MapInput(dataset, [EmitSpec("in", emit)])],
        reducer=CommonReducer([task]),
        outputs=[OutputSpec(out or f"{job_id}.out", "sp", ["k", "v"])],
    )
    defaults.update(kwargs)
    return MRJob(**defaults)


# ---------------------------------------------------------------------------
# Split planning and task decomposition
# ---------------------------------------------------------------------------

class TestSplits:
    def test_default_is_one_split_per_input(self):
        graph = JobTaskGraph(passthrough_job(), small_datastore())
        assert len(graph.map_tasks) == 1
        split = graph.map_tasks[0].split
        assert (split.dataset, split.index, split.start) == ("nums", 0, 0)
        assert len(split) == 5

    def test_split_rows_cuts_contiguous_ranges(self):
        graph = JobTaskGraph(passthrough_job(), small_datastore(),
                             split_rows=2)
        splits = [t.split for t in graph.map_tasks]
        assert [(s.index, s.start, len(s)) for s in splits] == [
            (0, 0, 2), (1, 2, 2), (2, 4, 1)]
        assert [t.task_id for t in graph.map_tasks] == [
            "j1/map/nums[0]", "j1/map/nums[1]", "j1/map/nums[2]"]

    def test_empty_table_still_gets_one_split(self):
        ds = Datastore(Catalog())
        ds.load_table(Table("nums", Schema.of(("k", T.INT), ("v", T.INT)),
                            []))
        graph = JobTaskGraph(passthrough_job(), ds, split_rows=2)
        assert len(graph.map_tasks) == 1
        counters = graph.finalize([t.run() for t in
                                   graph.shuffle([t.run() for t in
                                                  graph.map_tasks])])
        assert counters.input_records == {"nums": 0}
        assert counters.reduce_max_task_records == 0
        assert counters.reduce_task_records == []

    def test_split_rows_must_be_positive(self):
        with pytest.raises(ExecutionError, match="split_rows"):
            JobTaskGraph(passthrough_job(), small_datastore(), split_rows=0)

    def test_splitting_never_changes_rows(self, datastore):
        tr = translate_sql(paper_queries()["q17"], catalog=datastore.catalog,
                           namespace=f"split{next(_ns)}")
        baseline = run_translation(tr, datastore)
        for split_rows in (1, 7, 1000):
            got = run_translation(tr, datastore,
                                  split_rows=split_rows, parallelism=3)
            # Splitting reorders float accumulation, so compare with a
            # tolerance; the byte-exact invariant is executor-vs-executor
            # for one decomposition, covered below.
            assert rows_equal_unordered(got.rows, baseline.rows,
                                        tr.output_columns,
                                        float_tol=1e-6), split_rows
            # Input accounting is split-invariant even though map-side
            # combine totals legitimately vary per task.
            for a, b in zip(baseline.runs, got.runs):
                assert a.counters.input_records == b.counters.input_records
                assert a.counters.reduce_groups == b.counters.reduce_groups

    def test_shuffle_rejects_mismatched_outputs(self):
        graph = JobTaskGraph(passthrough_job(), small_datastore())
        with pytest.raises(ExecutionError, match="map outputs"):
            graph.shuffle([])


class TestStableHash:
    def test_deterministic_and_null_stable(self):
        assert stable_hash((1, "a", None)) == stable_hash((1, "a", None))
        assert stable_hash((None,)) == stable_hash((None,))

    def test_distinguishes_types_and_positions(self):
        assert stable_hash((1, "2")) != stable_hash(("1", 2))
        assert stable_hash(("ab", "c")) != stable_hash(("a", "bc"))

    def test_equal_numeric_spellings_hash_identically(self):
        # 1 == 1.0 == True merge into one reduce group under dict
        # equality, so every spelling must land in one partition — in
        # any first-call order (the memo cache shares their slot).
        for order in [((1,), (1.0,), (True,)), ((True,), (1.0,), (1,))]:
            stable_hash.cache_clear()
            assert len({stable_hash(k) for k in order}) == 1
        assert stable_hash((2, "x", 3.0)) == stable_hash((2.0, "x", 3))
        assert stable_hash((2.5,)) != stable_hash((2,))

    def test_matches_historical_repr_format(self):
        # Partition assignment (and so row order and per-partition
        # loads) must match the pre-runtime monolithic engine.
        import zlib
        for key in ((1, "a"), (None,), ("x", 3, None), ("lone",)):
            assert stable_hash(key) == zlib.crc32(repr(key).encode("utf-8"))


# ---------------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------------

class TestExecutors:
    def test_make_executor(self):
        assert isinstance(make_executor(1), SerialExecutor)
        ex = make_executor(4)
        assert isinstance(ex, ParallelExecutor)
        assert (ex.max_workers, ex.kind, ex.name) == (4, "thread", "threadx4")

    def test_bad_arguments(self):
        with pytest.raises(ExecutionError, match="max_workers"):
            ParallelExecutor(max_workers=0)
        with pytest.raises(ExecutionError, match="kind"):
            ParallelExecutor(kind="fiber")

    def test_task_exception_propagates(self):
        # A real task bug surfaces as exactly one actionable
        # ExecutionError naming the task, chained to the original.
        def boom(record):
            raise ValueError("bad record")

        job = passthrough_job(
            map_inputs=[MapInput("nums", [EmitSpec("in", boom)])])
        runtime = Runtime(small_datastore(),
                          executor=ParallelExecutor(max_workers=2))
        with pytest.raises(ExecutionError, match="bad record") as info:
            runtime.run_job(job)
        assert isinstance(info.value.__cause__, ValueError)

    def test_process_executor_reports_unpicklable_thunks(self):
        # Lambdas raise pickle.PicklingError, the most common failure
        # mode — it must get the helpful kind='thread' message too.
        ex = ParallelExecutor(max_workers=2, kind="process")
        with pytest.raises(ExecutionError, match="thread"):
            ex.run_all([lambda: 1, lambda: 2])

    def test_process_executor_rejects_closure_jobs(self, datastore):
        tr = translate_sql(paper_queries()["q_agg"],
                           catalog=datastore.catalog,
                           namespace=f"proc{next(_ns)}")
        runtime = Runtime(datastore,
                          executor=ParallelExecutor(max_workers=2,
                                                    kind="process"))
        with pytest.raises(ExecutionError, match="pickle"):
            runtime.run_jobs(tr.jobs, dependencies=tr.dependencies())


# ---------------------------------------------------------------------------
# DAG derivation and wave scheduling
# ---------------------------------------------------------------------------

class TestDependencies:
    def chain(self):
        a = passthrough_job("a", out="a.out")
        b = passthrough_job("b", dataset="a.out", out="b.out")
        c = passthrough_job("c", out="c.out")
        return [a, b, c]

    def test_job_spec_dependencies(self):
        deps = job_spec_dependencies(self.chain())
        assert deps == {"a": [], "b": ["a"], "c": []}

    def test_duplicate_writers_get_ordering_edges(self):
        # Two writers of one dataset must never share a wave: without a
        # write-write edge the surviving content would be racy, where
        # the historical strict submission order was deterministic.
        w1 = passthrough_job("w1", out="shared.out")
        w2 = passthrough_job("w2", out="shared.out")
        r = passthrough_job("r", dataset="shared.out", out="r.out")
        assert job_spec_dependencies([w1, w2, r]) == {
            "w1": [], "w2": ["w1"], "r": ["w2"]}
        runtime = Runtime(small_datastore(),
                          executor=ParallelExecutor(max_workers=2),
                          keep_trace=True, scheduler="wave")
        runtime.run_jobs([w1, w2, r])
        assert runtime.trace.waves == [["w1"], ["w2"], ["r"]]

    def test_duplicate_writers_ordered_under_dataflow(self):
        # The dataflow scheduler honors write-write edges at the commit
        # point: w2's maps may overlap w1 (they read a base table), but
        # w2's *finalize* — the datastore write — must wait for w1's,
        # and the reader's scan must wait for w2's commit.
        w1 = passthrough_job("w1", out="shared.out")
        w2 = passthrough_job("w2", out="shared.out")
        r = passthrough_job("r", dataset="shared.out", out="r.out")
        runtime = Runtime(small_datastore(),
                          executor=ParallelExecutor(max_workers=2),
                          keep_trace=True)
        runtime.run_jobs([w1, w2, r])
        tasks = runtime.trace.tasks

        def fin(job_id):
            return next(t for t in tasks.values()
                        if t.job_id == job_id and t.kind == "finalize")

        assert fin("w2").start_t >= fin("w1").finish_t
        r_maps = [t.start_t for t in tasks.values()
                  if t.job_id == "r" and t.kind == "map"]
        assert r_maps and min(r_maps) >= fin("w2").finish_t
        assert runtime.datastore.intermediate("shared.out") is not None

    def test_reader_depends_on_preceding_writer(self):
        # A reader submitted between two writers reads the first
        # writer's output under serial order; the spec DAG must agree.
        w1 = passthrough_job("w1", out="d.out")
        r = passthrough_job("r", dataset="d.out", out="r.out")
        w2 = passthrough_job("w2", out="d.out")
        assert job_spec_dependencies([w1, r, w2]) == {
            "w1": [], "r": ["w1"], "w2": ["w1"]}

    def test_translation_emits_dag_edges(self, datastore):
        tr = translate_sql(paper_queries()["q21"], catalog=datastore.catalog,
                           namespace=f"dag{next(_ns)}")
        assert tr.dag_edges is not None
        assert tr.dependencies() == job_spec_dependencies(tr.jobs)
        # Every edge points at an earlier job of the chain.
        position = {job.job_id: i for i, job in enumerate(tr.jobs)}
        for job_id, deps in tr.dag_edges.items():
            assert all(position[d] < position[job_id] for d in deps)

    def test_waves_follow_the_dag(self):
        runtime = Runtime(small_datastore(), keep_trace=True,
                          scheduler="wave")
        runs = runtime.run_jobs(self.chain())
        assert [r.job_id for r in runs] == ["a", "b", "c"]
        assert runtime.trace.waves == [["a", "c"], ["b"]]

    def test_duplicate_job_ids_rejected(self):
        runtime = Runtime(small_datastore())
        with pytest.raises(ExecutionError, match="duplicate"):
            runtime.run_jobs([passthrough_job("x"), passthrough_job("x")])

    def test_unknown_dependency_rejected(self):
        runtime = Runtime(small_datastore())
        with pytest.raises(ExecutionError, match="unknown"):
            runtime.run_jobs([passthrough_job("x")],
                             dependencies={"x": ["ghost"]})

    def test_cycle_detected(self):
        jobs = [passthrough_job("x", out="x.out"),
                passthrough_job("y", dataset="nums", out="y.out")]
        runtime = Runtime(small_datastore())
        with pytest.raises(ExecutionError, match="cycle"):
            runtime.run_jobs(jobs, dependencies={"x": ["y"], "y": ["x"]})


# ---------------------------------------------------------------------------
# Acceptance: identical results for every executor
# ---------------------------------------------------------------------------

class TestSerialParallelIdentity:
    @pytest.mark.parametrize("name", sorted(paper_queries()))
    def test_paper_query_rows_and_counters_identical(self, name, datastore):
        sql = paper_queries()[name]
        tr = translate_sql(sql, catalog=datastore.catalog,
                           namespace=f"ident.{name}")
        serial = run_translation(tr, datastore)
        parallel = run_translation(tr, datastore, parallelism=4,
                                   keep_trace=True)
        assert parallel.rows == serial.rows
        for s, p in zip(serial.runs, parallel.runs):
            assert p.counters.comparable() == s.counters.comparable()

    def test_one_to_one_mode_identical(self, datastore):
        tr = translate_sql(paper_queries()["q21"], mode="one_to_one",
                           catalog=datastore.catalog,
                           namespace=f"ident.oto{next(_ns)}")
        serial = run_translation(tr, datastore)
        parallel = run_translation(tr, datastore, parallelism=4)
        assert parallel.rows == serial.rows
        assert [r.counters.comparable() for r in parallel.runs] == \
            [r.counters.comparable() for r in serial.runs]

    def test_intermediate_datasets_identical(self, datastore):
        tr = translate_sql(paper_queries()["q18"], catalog=datastore.catalog,
                           namespace=f"ident.mid{next(_ns)}")
        run_translation(tr, datastore)
        intermediates = {ds: list(datastore.intermediate(ds).rows)
                         for job in tr.jobs for ds in job.output_datasets}
        run_translation(tr, datastore, parallelism=4)
        for ds_name, rows in intermediates.items():
            assert datastore.intermediate(ds_name).rows == rows, ds_name


# ---------------------------------------------------------------------------
# Acceptance: independent jobs really overlap
# ---------------------------------------------------------------------------

class TestConcurrentScheduling:
    @pytest.mark.parametrize("scheduler", ["dataflow", "wave"])
    def test_one_to_one_plan_overlaps_independent_jobs(self, datastore,
                                                       scheduler):
        result = run_query(paper_queries()["q21"], datastore,
                           mode="one_to_one",
                           namespace=f"conc{next(_ns)}",
                           parallelism=4, keep_trace=True,
                           scheduler=scheduler)
        trace = result.trace
        assert trace is not None
        assert trace.max_wave_width > 1
        multi = trace.concurrent_job_batches()
        assert multi, "expected batches mixing tasks of independent jobs"
        assert len(set(multi[0][2])) > 1
        if scheduler == "wave":
            wave0_jobs = set(trace.waves[0])
            assert len(wave0_jobs) > 1
            assert set(multi[0][2]) == wave0_jobs
        # Every scheduled task completed: starts == finishes.
        starts = [e for e in trace.events if e.phase == "start"]
        finishes = [e for e in trace.events if e.phase == "finish"]
        assert len(starts) == len(finishes) > 0

    def test_batch_of_independent_queries_runs_in_one_wave(self, datastore):
        queries = {
            "heavy_parts": ("SELECT l_partkey, count(*) AS n "
                            "FROM lineitem GROUP BY l_partkey"),
            "order_sizes": ("SELECT l_orderkey, sum(l_quantity) AS q "
                            "FROM lineitem GROUP BY l_orderkey"),
            "clicks_per_user": ("SELECT cid, count(*) AS n "
                                "FROM clicks GROUP BY cid"),
        }
        bt = translate_batch(queries, catalog=datastore.catalog,
                             namespace=f"bconc{next(_ns)}",
                             share_across_queries=False)
        assert bt.dag_edges == {job.job_id: [] for job in bt.jobs}
        serial = run_batch(bt, datastore)
        parallel = run_batch(bt, datastore, parallelism=4, keep_trace=True,
                             scheduler="wave")
        assert parallel.rows == serial.rows
        assert [r.counters.comparable() for r in parallel.runs] == \
            [r.counters.comparable() for r in serial.runs]
        assert parallel.trace.waves == [[job.job_id for job in bt.jobs]]
        assert parallel.trace.concurrent_job_batches()
        dataflow = run_batch(bt, datastore, parallelism=4, keep_trace=True)
        assert dataflow.rows == serial.rows
        assert dataflow.trace.max_wave_width > 1
        assert dataflow.trace.concurrent_job_batches()


# ---------------------------------------------------------------------------
# Runtime corner cases under the new engine
# ---------------------------------------------------------------------------

class TestRuntimeCorners:
    def empty_store(self):
        ds = Datastore(standard_catalog())
        for name in ("lineitem", "orders", "part", "customer", "supplier",
                     "nation", "clicks"):
            schema = ds.catalog.schema(name)
            ds.load_table(Table(name, schema, []))
        return ds

    @pytest.mark.parametrize("parallelism", [1, 4])
    def test_empty_input_sort_output(self, parallelism):
        ds = self.empty_store()
        result = run_query(
            "SELECT l_partkey, sum(l_quantity) AS q FROM lineitem "
            "GROUP BY l_partkey ORDER BY q DESC LIMIT 5",
            ds, namespace=f"empty{next(_ns)}", parallelism=parallelism)
        assert result.rows == []
        sort_runs = [r for r in result.runs
                     if any(j.job_id == r.job_id and j.sort_output
                            for j in result.translation.jobs)]
        assert sort_runs
        for run in sort_runs:
            assert run.counters.reduce_max_task_records == 0
            assert run.counters.reduce_task_records == []

    @pytest.mark.parametrize("parallelism", [1, 4])
    def test_grand_aggregate_on_empty_input(self, parallelism):
        ds = self.empty_store()
        result = run_query("SELECT count(*) AS n, sum(l_quantity) AS q "
                           "FROM lineitem",
                           ds, namespace=f"grand{next(_ns)}",
                           parallelism=parallelism)
        assert result.rows == [{"n": 0, "q": None}]
        counters = result.runs[0].counters
        assert counters.reduce_groups == 1
        assert counters.reduce_task_records == [0]
        assert counters.reduce_max_task_records == 0


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestCliParallel:
    def test_run_parallel_smoke(self, capsys):
        from repro.cli import main
        code = main(["run",
                     "SELECT cid, count(*) AS n FROM clicks GROUP BY cid",
                     "--parallel", "2",
                     "--clickstream-users", "10", "--tpch-scale", "0.0005"])
        out = capsys.readouterr().out
        assert code == 0
        assert "workers=2" in out
