"""Tests for the workload runner and the experiment harness shapes.

The experiment tests assert the *paper's qualitative claims* hold on the
simulated substrate — who wins, roughly by how much — using a small
shared workload so the whole module stays fast.
"""

import pytest

from repro.bench import (
    fig2_performance_gap,
    fig9_q21_breakdown,
    fig10_small_cluster,
    fig11_ec2,
    fig12_facebook_q17,
    fig13_facebook_q18_q21,
    standard_workload,
    table_job_counts,
)
from repro.hadoop import small_cluster
from repro.workloads import (
    build_datastore,
    data_scale_for,
    run_query,
)
from repro.workloads.queries import paper_queries


@pytest.fixture(scope="module")
def workload():
    return standard_workload(tpch_scale=0.002, clickstream_users=50)


class TestRunner:
    def test_build_datastore_loads_everything(self):
        ds = build_datastore(tpch_scale=0.001, clickstream_users=10)
        assert ds.has_table("lineitem") and ds.has_table("clicks")

    def test_build_datastore_optional_parts(self):
        ds = build_datastore(tpch_scale=None, clickstream_users=10)
        assert not ds.has_table("lineitem") and ds.has_table("clicks")

    def test_data_scale_for(self):
        ds = build_datastore(tpch_scale=0.001, clickstream_users=None)
        scale = data_scale_for(ds, ["lineitem"], 1.0)
        actual = ds.table("lineitem").estimated_bytes()
        assert scale == pytest.approx(1024 ** 3 / actual)

    def test_run_query_returns_rows_and_timing(self, workload):
        res = run_query(paper_queries()["q_agg"], workload.datastore,
                        mode="ysmart", cluster=small_cluster())
        assert res.rows and res.timing is not None
        assert res.total_s and res.total_s > 0
        assert res.job_count == 1

    def test_run_query_without_cluster_has_no_timing(self, workload):
        res = run_query(paper_queries()["q_agg"], workload.datastore)
        assert res.timing is None and res.total_s is None


class TestFig2Shape:
    def test_gap_on_qcsa_parity_on_qagg(self, workload):
        r = fig2_performance_gap(workload)
        csa_hive = r.value("time_s", query="q_csa", system="hive")
        csa_hand = r.value("time_s", query="q_csa", system="hand-coded")
        agg_hive = r.value("time_s", query="q_agg", system="hive")
        agg_hand = r.value("time_s", query="q_agg", system="hand-coded")
        # Paper: ~3x gap on the complex query, parity on the simple one.
        assert csa_hive / csa_hand > 1.8
        assert 0.9 < agg_hive / agg_hand < 1.1


class TestFig9Shape:
    def test_staged_speedups(self, workload):
        r = fig9_q21_breakdown(workload)
        totals = {s: r.value("total_s", system=s, job="TOTAL")
                  for s in ("one_to_one", "ysmart_ic_tc", "ysmart",
                            "handcoded")}
        # Strict ordering and rough factors (paper: 1140/773/561/479).
        assert totals["one_to_one"] > totals["ysmart_ic_tc"] \
            > totals["ysmart"] > totals["handcoded"]
        assert 1.4 < totals["one_to_one"] / totals["ysmart_ic_tc"] < 2.2
        assert 1.9 < totals["one_to_one"] / totals["ysmart"] < 3.0

    def test_map_dominates_one_op_translation(self, workload):
        r = fig9_q21_breakdown(workload)
        total = r.value("total_s", system="one_to_one", job="TOTAL")
        map_s = r.value("map_s", system="one_to_one", job="TOTAL")
        assert 0.5 < map_s / total < 0.85  # paper: 65%


class TestFig10Shape:
    @pytest.fixture(scope="class")
    def result(self, workload):
        return fig10_small_cluster(workload)

    @pytest.mark.parametrize("query", ["q17", "q18", "q21", "q_csa"])
    def test_ysmart_beats_hive_beats_pig(self, result, query):
        ys = result.value("time_s", query=query, system="ysmart")
        hive = result.value("time_s", query=query, system="hive")
        pig = result.value("time_s", query=query, system="pig")
        assert ys < hive <= pig

    @pytest.mark.parametrize("query", ["q17", "q18", "q21"])
    def test_dbms_wins_tpch(self, result, query):
        ys = result.value("time_s", query=query, system="ysmart")
        pg = result.value("time_s", query=query, system="pgsql")
        assert pg < ys

    def test_dbms_roughly_ties_qcsa(self, result):
        ys = result.value("time_s", query="q_csa", system="ysmart")
        pg = result.value("time_s", query="q_csa", system="pgsql")
        assert 0.6 < ys / pg < 1.8  # paper: "almost the same"

    @pytest.mark.parametrize("query,lo,hi", [
        ("q17", 1.6, 3.2), ("q18", 1.6, 3.0),
        ("q21", 1.7, 3.2), ("q_csa", 1.5, 3.2),
    ])
    def test_speedup_factors_near_paper(self, result, query, lo, hi):
        ys = result.value("time_s", query=query, system="ysmart")
        hive = result.value("time_s", query=query, system="hive")
        assert lo < hive / ys < hi


class TestFig11Shape:
    @pytest.fixture(scope="class")
    def result(self, workload):
        return fig11_ec2(workload)

    def test_ysmart_wins_every_case(self, result):
        for row in result.by(system="ysmart"):
            hive = result.value(
                "time_s", query=row["query"], cluster=row["cluster"],
                compression=row["compression"], system="hive")
            assert row["time_s"] < hive

    @pytest.mark.parametrize("query", ["q17", "q18", "q21"])
    def test_near_linear_scaling(self, result, query):
        """10x data on ~10x nodes: ~unchanged times (paper's 2nd claim)."""
        t11 = result.value("time_s", query=query, cluster="11-node",
                           compression="nc", system="ysmart")
        t101 = result.value("time_s", query=query, cluster="101-node",
                            compression="nc", system="ysmart")
        assert t101 / t11 < 1.6

    @pytest.mark.parametrize("query", ["q17", "q18", "q21"])
    def test_compression_degrades(self, result, query):
        for cluster in ("11-node", "101-node"):
            for system in ("ysmart", "hive"):
                nc = result.value("time_s", query=query, cluster=cluster,
                                  compression="nc", system=system)
                c = result.value("time_s", query=query, cluster=cluster,
                                 compression="c", system=system)
                assert c > nc

    def test_qcsa_pig_worst(self, result):
        ys = result.value("time_s", query="q_csa", cluster="11-node",
                          compression="nc", system="ysmart")
        hive = result.value("time_s", query="q_csa", cluster="11-node",
                            compression="nc", system="hive")
        pig = result.value("time_s", query="q_csa", cluster="11-node",
                           compression="nc", system="pig")
        assert ys < hive < pig


class TestFacebookShapes:
    def test_fig12_every_instance_ysmart_wins(self, workload):
        r = fig12_facebook_q17(workload)
        ys = [row["time_s"] for row in r.by(system="ysmart")]
        hv = [row["time_s"] for row in r.by(system="hive")]
        assert len(ys) == len(hv) == 3
        for h, y in zip(hv, ys):
            assert h / y > 1.5  # paper: 2.3 - 3.1

    def test_fig13_speedups_exceed_isolated(self, workload):
        """Production contention amplifies the advantage (paper Sec VII-F)."""
        r13 = fig13_facebook_q18_q21(workload)
        for query in ("q18", "q21"):
            speedup = r13.value("speedup", query=query, system="ysmart")
            assert speedup > 1.9

    def test_contention_is_deterministic(self, workload):
        a = fig12_facebook_q17(workload)
        b = fig12_facebook_q17(workload)
        assert a.rows == b.rows


class TestJobCountTable:
    def test_matches_paper(self, workload):
        r = table_job_counts(workload)
        expected = {
            "q17": (2, 4), "q18": (3, 6), "q21": (5, 9),
            "q21_subtree": (1, 5), "q_csa": (2, 6), "q_agg": (1, 1),
        }
        for query, (ys, hive) in expected.items():
            assert r.value("ysmart", query=query) == ys
            assert r.value("hive/pig (one-op-one-job)", query=query) == hive

    def test_markdown_rendering(self, workload):
        text = table_job_counts(workload).to_markdown()
        assert "| query |" in text and "| q_csa |" in text
