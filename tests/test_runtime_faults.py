"""Tests for the fault-tolerant task runtime: deterministic injection
(`repro.mr.faultplan`), bounded retries, speculative execution, attempt
accounting, and the scheduler error-path unwind.

The load-bearing invariant: a run with injected task kills produces
rows, intermediates, and ``comparable()`` counters byte-identical to
the fault-free run, on every scheduler and executor — the runtime
realization of the paper's Sec. III argument that materialization
exists so failed tasks can re-run alone.
"""

import itertools
import os
import pickle
import time

import pytest

from repro.catalog import Catalog, Schema
from repro.catalog.types import ColumnType as T
from repro.cmf import CommonReducer
from repro.data import Datastore, Table
from repro.errors import ConfigError, ExecutionError, ReproError
from repro.hadoop.faults import FaultModel
from repro.mr import (
    EmitSpec,
    FaultPlan,
    InjectedFault,
    MapInput,
    MRJob,
    OutputSpec,
    ParallelExecutor,
    Runtime,
    SerialExecutor,
    TaskAttempt,
)
from repro.ops import SPTask, TaskInput
from repro.workloads.queries import paper_queries
from repro.workloads.runner import run_query

_ns = itertools.count(1)

SCHEDULERS = ("dataflow", "wave")


# -- picklable building blocks (process-pool arms need module-level fns) ----

def _emit_kv(record):
    return (record["k"],), {"v": record["v"]}


def _emit_boom(record):
    raise ValueError("boom map")


def _emit_interrupt(record):
    raise KeyboardInterrupt()


def _emit_slow(record):
    time.sleep(0.01)
    return (record["k"],), {"v": record["v"]}


def make_job(job_id, dataset="nums", out=None, emit=_emit_kv,
             outputs=None):
    task = SPTask("sp", TaskInput.shuffle("in", ["k"]))
    return MRJob(
        job_id=job_id, name="pass",
        map_inputs=[MapInput(dataset, [EmitSpec("in", emit)])],
        reducer=CommonReducer([task]),
        outputs=outputs or [OutputSpec(out or f"{job_id}.out", "sp",
                                       ["k", "v"])],
    )


def bad_reduce_job(job_id, dataset="nums", out=None):
    """Reducer dies mid-chain: the payload map names an absent column,
    so every ReduceTask raises KeyError while consuming."""
    task = SPTask("sp", TaskInput.shuffle(
        "in", ["k"], payload_map=[("want", "absent")]))
    return MRJob(
        job_id=job_id, name="badreduce",
        map_inputs=[MapInput(dataset, [EmitSpec("in", _emit_kv)])],
        reducer=CommonReducer([task]),
        outputs=[OutputSpec(out or f"{job_id}.out", "sp", ["k", "want"])],
    )


def small_datastore(rows=40):
    ds = Datastore(Catalog())
    ds.load_table(Table("nums", Schema.of(("k", T.INT), ("v", T.INT)),
                        [{"k": i % 5, "v": i * 3} for i in range(rows)]))
    return ds


def executors():
    return [SerialExecutor(),
            ParallelExecutor(max_workers=3),
            ParallelExecutor(max_workers=2, kind="process")]


# ---------------------------------------------------------------------------
# FaultPlan: deterministic, seeded, validated, picklable
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_draws_are_deterministic_and_uniformish(self):
        plan = FaultPlan(0.5, seed=3)
        draws = [plan.draw(f"job/map[{i}]", 1) for i in range(500)]
        assert draws == [plan.draw(f"job/map[{i}]", 1) for i in range(500)]
        assert all(0.0 <= d < 1.0 for d in draws)
        # crc32 over distinct ids behaves uniform-ish: both halves hit.
        assert 0.3 < sum(d < 0.5 for d in draws) / len(draws) < 0.7

    def test_should_fail_depends_on_seed_and_attempt(self):
        a = FaultPlan(0.5, seed=1)
        b = FaultPlan(0.5, seed=2)
        ids = [f"t/{i}" for i in range(200)]
        assert [a.should_fail(i, 1) for i in ids] \
            != [b.should_fail(i, 1) for i in ids]
        assert [a.should_fail(i, 1) for i in ids] \
            != [a.should_fail(i, 2) for i in ids]

    def test_zero_probability_never_fails(self):
        plan = FaultPlan(0.0, seed=9)
        assert not any(plan.should_fail(f"t/{i}", 1) for i in range(100))

    def test_validation(self):
        with pytest.raises(ConfigError):
            FaultPlan(-0.1)
        with pytest.raises(ConfigError):
            FaultPlan(1.0)

    def test_model_roundtrip(self):
        model = FaultModel(task_failure_prob=0.07)
        plan = FaultPlan.from_model(model, seed=5)
        assert plan.probability == 0.07
        assert plan.model().task_failure_prob == 0.07

    def test_picklable(self):
        plan = FaultPlan(0.25, seed=42)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert clone.should_fail("x", 3) == plan.should_fail("x", 3)

    def test_max_attempts_defaults(self):
        ds = small_datastore()
        if not os.environ.get("REPRO_SUITE_FAULTS"):
            # The suite fault leg (conftest) gives bare Runtimes a plan.
            assert Runtime(ds).max_attempts == 1
        assert Runtime(ds, fault_plan=FaultPlan(0.1)).max_attempts == 4
        assert Runtime(ds, max_attempts=2).max_attempts == 2
        with pytest.raises(ExecutionError, match="max_attempts"):
            Runtime(ds, max_attempts=0)


# ---------------------------------------------------------------------------
# Retry identity: injected kills never change results
# ---------------------------------------------------------------------------

class TestRetryIdentity:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_hand_built_chain_identical_under_faults(self, scheduler):
        jobs = lambda: [make_job("a", dataset="nums", out="a.out"),
                        make_job("b", dataset="a.out", out="b.out")]
        base_ds = small_datastore()
        base = Runtime(base_ds, split_rows=8).run_jobs(jobs())
        for executor in executors():
            ds = small_datastore()
            runtime = Runtime(ds, executor=executor, split_rows=8,
                              scheduler=scheduler,
                              fault_plan=FaultPlan(0.3, seed=2),
                              max_attempts=20)
            runs = runtime.run_jobs(jobs())
            assert ds.intermediate("b.out").rows \
                == base_ds.intermediate("b.out").rows
            assert [r.counters.comparable() for r in runs] \
                == [r.counters.comparable() for r in base]
            assert sum(r.counters.task_retries for r in runs) > 0

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    @pytest.mark.parametrize("parallelism", [1, 4])
    def test_paper_query_identical_under_faults(self, datastore, scheduler,
                                                parallelism):
        # One shared namespace: draws hash the task id (which embeds the
        # namespace), so every arm injects the *same* kills — the same
        # assertion doubles as a scheduler/executor-independence check.
        ns = "fltq"
        base = run_query(paper_queries()["q_agg"], datastore,
                         namespace=ns, split_rows="auto")
        res = run_query(paper_queries()["q_agg"], datastore,
                        namespace=ns, split_rows="auto",
                        scheduler=scheduler, parallelism=parallelism,
                        fault_plan=FaultPlan(0.15, seed=7),
                        max_attempts=8, keep_trace=True)
        assert res.rows == base.rows
        assert [r.counters.comparable() for r in res.runs] \
            == [r.counters.comparable() for r in base.runs]
        assert sum(r.counters.task_retries for r in res.runs) \
            == res.trace.task_retries > 0

    def test_fault_counters_excluded_from_comparable(self, datastore):
        res = run_query(paper_queries()["q_agg"], datastore,
                        namespace="fltq", split_rows="auto",
                        fault_plan=FaultPlan(0.15, seed=5),
                        max_attempts=8)
        counters = res.runs[0].counters
        assert "task_retries" not in counters.comparable()
        assert "speculative_wins" not in counters.comparable()
        scaled = counters.scaled(10.0)
        assert scaled.task_retries == counters.task_retries

    def test_trace_records_failed_attempts(self):
        ds = small_datastore()
        runtime = Runtime(ds, split_rows=8, keep_trace=True,
                          fault_plan=FaultPlan(0.3, seed=2),
                          max_attempts=20)
        runtime.run_jobs([make_job("a", dataset="nums", out="a.out")])
        trace = runtime.trace
        failed = [a for a in trace.attempts if a.outcome == "failed"]
        assert failed and trace.task_retries == len(failed)
        for a in failed:
            assert a.kind in ("map", "shuffle", "reduce")
            assert "injected fault" in a.cause
        # Retried attempts appear as chained trace tasks of their own.
        retry_ids = [tid for tid in trace.tasks if "@a" in tid]
        assert retry_ids
        for tid in retry_ids:
            assert trace.edges.get(tid)


# ---------------------------------------------------------------------------
# Exhaustion: bounded retries end in one actionable ExecutionError
# ---------------------------------------------------------------------------

class TestExhaustion:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_exhausted_task_names_itself(self, scheduler):
        # p=0.97: every attempt of every task dies; the first task to
        # run must exhaust max_attempts and surface one ExecutionError.
        ds = small_datastore()
        runtime = Runtime(ds, scheduler=scheduler,
                          fault_plan=FaultPlan(0.97, seed=1),
                          max_attempts=3)
        with pytest.raises(ExecutionError, match=r"3.*attempt") as info:
            runtime.run_jobs([make_job("a", dataset="nums", out="a.out")])
        assert isinstance(info.value.__cause__, InjectedFault)
        with pytest.raises(ReproError):
            ds.intermediate("a.out")

    def test_single_attempt_budget_fails_on_first_kill(self):
        ds = small_datastore()
        runtime = Runtime(ds, fault_plan=FaultPlan(0.97, seed=1),
                          max_attempts=1)
        with pytest.raises(ExecutionError):
            runtime.run_jobs([make_job("a", dataset="nums", out="a.out")])


# ---------------------------------------------------------------------------
# Error-path unwind (satellite): real task bugs mid-chain
# ---------------------------------------------------------------------------

class TestErrorUnwind:
    """A map/reduce task raising mid-chain must surface exactly one
    ExecutionError, shut the pool down cleanly, and leave no partially
    committed datasets — on both schedulers and all three executors."""

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_raising_map_task_unwinds(self, scheduler):
        for executor in executors():
            ds = small_datastore()
            jobs = [make_job("ok", dataset="nums", out="ok.out"),
                    make_job("bad", dataset="ok.out", out="bad.out",
                             emit=_emit_boom),
                    make_job("down", dataset="bad.out", out="down.out")]
            runtime = Runtime(ds, executor=executor, scheduler=scheduler)
            with pytest.raises(ExecutionError, match="boom map"):
                runtime.run_jobs(jobs)
            # Upstream commit survives; the failing job and everything
            # downstream left nothing behind.
            assert ds.intermediate("ok.out").rows
            for dataset in ("bad.out", "down.out"):
                with pytest.raises(ReproError):
                    ds.intermediate(dataset)

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_raising_reduce_task_unwinds(self, scheduler):
        for executor in executors():
            ds = small_datastore()
            runtime = Runtime(ds, executor=executor, scheduler=scheduler)
            with pytest.raises(ExecutionError):
                runtime.run_jobs([bad_reduce_job("bad", dataset="nums")])
            with pytest.raises(ReproError):
                ds.intermediate("bad.out")

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_pool_usable_after_unwind(self, scheduler):
        # The unwind shut the chain's pool session down cleanly: the
        # same runtime can run a fresh chain afterwards.
        ds = small_datastore()
        runtime = Runtime(ds, executor=ParallelExecutor(max_workers=3),
                          scheduler=scheduler)
        with pytest.raises(ExecutionError):
            runtime.run_jobs([make_job("bad", emit=_emit_boom)])
        runs = runtime.run_jobs([make_job("ok", dataset="nums",
                                          out="ok2.out")])
        assert runs[0].counters.total_output_records > 0

    @pytest.mark.skipif(bool(os.environ.get("REPRO_SUITE_FAULTS")),
                        reason="suite fault leg gives bare Runtimes a "
                               "retry budget by design")
    def test_real_bug_not_retried_without_budget(self):
        # With no fault plan the budget is 1: a deterministic bug fails
        # fast instead of burning retries.
        ds = small_datastore()
        runtime = Runtime(ds, keep_trace=True)
        with pytest.raises(ExecutionError, match="boom map"):
            runtime.run_jobs([make_job("bad", emit=_emit_boom)])
        assert runtime.trace.task_retries <= 1

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_keyboard_interrupt_aborts_not_retries(self, scheduler):
        # Ctrl-C must propagate as KeyboardInterrupt — never swallowed
        # into the retry/unwind path, even with a generous retry budget.
        for executor in (SerialExecutor(),
                         ParallelExecutor(max_workers=2)):
            ds = small_datastore()
            runtime = Runtime(ds, executor=executor, scheduler=scheduler,
                              fault_plan=FaultPlan(0.01, seed=1),
                              max_attempts=5)
            with pytest.raises(KeyboardInterrupt):
                runtime.run_jobs([make_job("bad",
                                           emit=_emit_interrupt)])

    def test_finalize_commits_all_outputs_or_none(self):
        # Two outputs, the second missing a column: the finalize error
        # must leave the first output uncommitted too (two-phase write).
        ds = small_datastore()
        job = make_job("two", outputs=[
            OutputSpec("two.ok", "sp", ["k", "v"]),
            OutputSpec("two.bad", "sp", ["k", "absent"])])
        with pytest.raises(ExecutionError, match="absent"):
            Runtime(ds).run_jobs([job])
        for dataset in ("two.ok", "two.bad"):
            with pytest.raises(ReproError):
                ds.intermediate(dataset)


# ---------------------------------------------------------------------------
# Speculative execution
# ---------------------------------------------------------------------------

class TestSpeculation:
    def test_straggler_gets_duplicate_attempt(self):
        # One slow map per split with idle workers: the dataflow
        # scheduler must launch speculative duplicates, results stay
        # identical, and every duplicate resolves as ok or lost.
        base_ds = small_datastore(rows=30)
        base = Runtime(base_ds, split_rows=10).run_jobs(
            [make_job("s", dataset="nums", out="s.out")])
        ds = small_datastore(rows=30)
        runtime = Runtime(ds, executor=ParallelExecutor(max_workers=6),
                          split_rows=10, speculate=True, max_attempts=2,
                          keep_trace=True)
        runs = runtime.run_jobs([make_job("s", dataset="nums",
                                          out="s.out", emit=_emit_slow)])
        assert ds.intermediate("s.out").rows \
            == base_ds.intermediate("s.out").rows
        spec = [a for a in runtime.trace.attempts if a.speculative]
        assert spec, "no speculative attempt launched for stragglers"
        assert all(a.outcome in ("ok", "lost") for a in spec)
        assert sum(r.counters.speculative_wins for r in runs) \
            == runtime.trace.speculative_wins

    def test_speculation_respects_attempt_budget(self):
        ds = small_datastore(rows=30)
        runtime = Runtime(ds, executor=ParallelExecutor(max_workers=6),
                          split_rows=10, speculate=True, max_attempts=1,
                          keep_trace=True)
        runtime.run_jobs([make_job("s", dataset="nums", out="s.out",
                                   emit=_emit_slow)])
        # max_attempts=1 leaves no budget for duplicates at all.
        assert not runtime.trace.attempts

    def test_attempt_record_shape(self):
        a = TaskAttempt("j", "j/map/x[0]", "map", 2, "failed",
                        cause="InjectedFault('x')")
        assert not a.speculative
        assert a.outcome == "failed"
