"""Tests for reduce tasks (ops) and the CMF common reducer."""

import pytest

from repro.cmf import CommonReducer
from repro.errors import ExecutionError
from repro.mr.kv import TaggedValue
from repro.ops import AggTask, CompiledStages, JoinTask, SPTask, TaskInput
from repro.plan.nodes import Filter, OutputCol, Project
from repro.sqlparser.ast import BinaryOp, ColumnRef, Literal


def tv(roles, **payload):
    return TaggedValue(frozenset(roles), payload)


class TestTaskInput:
    def test_shuffle_and_task_constructors(self):
        s = TaskInput.shuffle("r1", ["k"])
        assert s.kind == "shuffle" and s.ref == "r1"
        t = TaskInput.task("up")
        assert t.kind == "task" and t.ref == "up"

    def test_bad_kind_rejected(self):
        with pytest.raises(ExecutionError):
            TaskInput("bogus", "x")


class TestCompiledStages:
    def test_filter_then_project(self):
        stages = CompiledStages([
            Filter(BinaryOp(">", ColumnRef(None, "x"), Literal(1))),
            Project([OutputCol("y", BinaryOp("*", ColumnRef(None, "x"),
                                             Literal(10)))]),
        ])
        rows = stages.run([{"x": 1}, {"x": 2}, {"x": 3}])
        assert rows == [{"y": 20}, {"y": 30}]

    def test_empty_chain_is_identity(self):
        stages = CompiledStages([])
        rows = [{"x": 1}]
        assert stages.run(rows) == rows


class TestSPTask:
    def test_reconstitutes_key_columns(self):
        task = SPTask("sp", TaskInput.shuffle("in", ["k1", "k2"]))
        task.start((7, 8))
        task.consume((7, 8), frozenset(["in"]), {"v": 1})
        rows = task.finish((7, 8), {})
        assert rows == [{"k1": 7, "k2": 8, "v": 1}]

    def test_payload_map_renames(self):
        task = SPTask("sp", TaskInput.shuffle(
            "in", ["k"], payload_map=[("my.v", "base.v")]))
        task.start((1,))
        task.consume((1,), frozenset(["in"]), {"base.v": 42, "other": 1})
        rows = task.finish((1,), {})
        assert rows == [{"k": 1, "my.v": 42}]

    def test_ignores_foreign_roles(self):
        task = SPTask("sp", TaskInput.shuffle("mine", ["k"]))
        task.start((1,))
        task.consume((1,), frozenset(["other"]), {"v": 1})
        assert task.finish((1,), {}) == []


class TestJoinTask:
    def _join(self, join_type="inner", residual=None):
        return JoinTask(
            "j",
            TaskInput.shuffle("L", ["lk"]),
            TaskInput.shuffle("R", ["rk"]),
            join_type,
            left_names=["lk", "lv"],
            right_names=["rk", "rv"],
            residual=residual)

    def _feed(self, task, key, left, right):
        task.start(key)
        for payload in left:
            task.consume(key, frozenset(["L"]), payload)
        for payload in right:
            task.consume(key, frozenset(["R"]), payload)
        return task.finish(key, {})

    def test_inner_join_cross_within_group(self):
        rows = self._feed(self._join(), (1,),
                          [{"lv": "a"}, {"lv": "b"}], [{"rv": "x"}])
        assert len(rows) == 2
        assert all(r["lk"] == 1 and r["rk"] == 1 for r in rows)

    def test_inner_join_no_match(self):
        assert self._feed(self._join(), (1,), [{"lv": "a"}], []) == []

    def test_left_outer_null_extends(self):
        rows = self._feed(self._join("left"), (1,), [{"lv": "a"}], [])
        assert rows == [{"lk": 1, "lv": "a", "rk": None, "rv": None}]

    def test_right_outer_null_extends(self):
        rows = self._feed(self._join("right"), (1,), [], [{"rv": "x"}])
        assert rows == [{"lk": None, "lv": None, "rk": 1, "rv": "x"}]

    def test_full_outer_both_sides(self):
        task = self._join("full")
        rows = self._feed(task, (1,), [{"lv": "a"}], [])
        assert rows[0]["rv"] is None
        rows = self._feed(task, (2,), [], [{"rv": "x"}])
        assert rows[0]["lv"] is None

    def test_residual_filters_pairs(self):
        residual = lambda row: row["lv"] < row["rv"]
        rows = self._feed(self._join(residual=residual), (1,),
                          [{"lv": 1}, {"lv": 9}], [{"rv": 5}])
        assert len(rows) == 1 and rows[0]["lv"] == 1

    def test_residual_miss_null_extends_left_join(self):
        residual = lambda row: row["lv"] < row["rv"]
        rows = self._feed(self._join("left", residual=residual), (1,),
                          [{"lv": 9}], [{"rv": 5}])
        assert rows == [{"lk": 1, "lv": 9, "rk": None, "rv": None}]

    def test_null_key_group_never_matches(self):
        rows = self._feed(self._join("left"), (None,),
                          [{"lv": "a"}], [{"rv": "x"}])
        assert rows == [{"lk": None, "lv": "a", "rk": None, "rv": None}]

    def test_self_join_pair_lands_in_both_buffers(self):
        task = JoinTask("j", TaskInput.shuffle("L", ["lk"]),
                        TaskInput.shuffle("R", ["rk"]),
                        "inner", ["lk", "lv"], ["rk", "rv"])
        task.start((1,))
        task.consume((1,), frozenset(["L", "R"]), {"lv": 5, "rv": 5})
        rows = task.finish((1,), {})
        assert len(rows) == 1  # the record joins with itself

    def test_compute_ops_counted(self):
        task = self._join()
        self._feed(task, (1,), [{"lv": "a"}] * 3, [{"rv": "x"}] * 2)
        assert task.compute_ops == 6

    def test_upstream_task_input(self):
        task = JoinTask("j", TaskInput.task("up"),
                        TaskInput.shuffle("R", ["rk"]),
                        "inner", ["lk", "lv"], ["rk", "rv"])
        task.start((1,))
        task.consume((1,), frozenset(["R"]), {"rv": "x"})
        rows = task.finish((1,), {"up": [{"lk": 1, "lv": "a"}]})
        assert len(rows) == 1

    def test_missing_upstream_raises(self):
        task = JoinTask("j", TaskInput.task("ghost"),
                        TaskInput.shuffle("R", ["rk"]),
                        "inner", ["lk"], ["rk"])
        task.start((1,))
        with pytest.raises(ExecutionError, match="ghost"):
            task.finish((1,), {})


class TestAggTask:
    def test_local_grouping_beyond_partition_key(self):
        """Partitioned on k, grouped on (k, g) — the YSmart AGG-in-merged
        scenario."""
        task = AggTask(
            "a", TaskInput.shuffle("in", ["k"]),
            group_exprs=[("__g0", lambda r: r["k"]),
                         ("__g1", lambda r: r["g"])],
            agg_specs=[("__agg0", "sum", (lambda r: r["v"]), False, False)])
        task.start((1,))
        for g, v in [("x", 1), ("x", 2), ("y", 5)]:
            task.consume((1,), frozenset(["in"]), {"g": g, "v": v})
        rows = sorted(task.finish((1,), {}), key=lambda r: r["__g1"])
        assert rows == [
            {"__g0": 1, "__g1": "x", "__agg0": 3},
            {"__g0": 1, "__g1": "y", "__agg0": 5},
        ]

    def test_partial_mode_absorbs_states(self):
        task = AggTask(
            "a", TaskInput.shuffle("in", ["__g0"]),
            group_exprs=[("__g0", lambda r: r["__g0"])],
            agg_specs=[("s", "sum", (lambda r: r.get("s")), False, False)],
            partial=True)
        task.start((1,))
        task.consume((1,), frozenset(["in"]), {"s": (10, True)})
        task.consume((1,), frozenset(["in"]), {"s": (5, True)})
        rows = task.finish((1,), {})
        assert rows == [{"__g0": 1, "s": 15}]

    def test_global_agg_emits_on_empty(self):
        task = AggTask(
            "a", TaskInput.shuffle("in", []),
            group_exprs=[],
            agg_specs=[("c", "count", None, False, True)],
            global_agg=True)
        task.start(())
        assert task.finish((), {}) == [{"c": 0}]

    def test_stages_applied_to_agg_output(self):
        stages = CompiledStages([
            Filter(BinaryOp(">", ColumnRef(None, "c"), Literal(1)))])
        task = AggTask(
            "a", TaskInput.shuffle("in", ["k"]),
            group_exprs=[("k", lambda r: r["k"])],
            agg_specs=[("c", "count", None, False, True)],
            stages=stages)
        task.start((1,))
        task.consume((1,), frozenset(["in"]), {})
        assert task.finish((1,), {}) == []  # count=1 filtered out


class TestCommonReducer:
    def test_algorithm1_single_pass_dispatch(self):
        a = SPTask("a", TaskInput.shuffle("ra", ["k"]))
        b = SPTask("b", TaskInput.shuffle("rb", ["k"]))
        reducer = CommonReducer([a, b])
        out = reducer.reduce((1,), [tv(["ra"], v=1), tv(["ra", "rb"], v=2),
                                    tv(["rb"], v=3)])
        assert [r["v"] for r in out["a"]] == [1, 2]
        assert [r["v"] for r in out["b"]] == [2, 3]
        assert reducer.dispatch_ops() == 4
        assert reducer.dispatch_ops() == 0  # counter drains

    def test_post_job_chain(self):
        """A task consuming an upstream task's output inside the same key
        group — the paper's post-job computation."""
        base = SPTask("base", TaskInput.shuffle("in", ["k"]))
        stages = CompiledStages([Project(
            [OutputCol("k", ColumnRef(None, "k")),
             OutputCol("doubled", BinaryOp("*", ColumnRef(None, "v"),
                                           Literal(2)))])])
        post = SPTask("post", TaskInput.task("base"), stages)
        reducer = CommonReducer([base, post])
        out = reducer.reduce((1,), [tv(["in"], v=21)])
        assert out["post"] == [{"k": 1, "doubled": 42}]

    def test_topological_order_enforced(self):
        post = SPTask("post", TaskInput.task("base"))
        base = SPTask("base", TaskInput.shuffle("in", ["k"]))
        with pytest.raises(ExecutionError, match="before it is computed"):
            CommonReducer([post, base])

    def test_duplicate_task_id_rejected(self):
        a = SPTask("x", TaskInput.shuffle("r1", ["k"]))
        b = SPTask("x", TaskInput.shuffle("r2", ["k"]))
        with pytest.raises(ExecutionError, match="duplicate"):
            CommonReducer([a, b])

    def test_compute_ops_aggregated(self):
        a = SPTask("a", TaskInput.shuffle("ra", ["k"]))
        reducer = CommonReducer([a])
        reducer.reduce((1,), [tv(["ra"], v=1), tv(["ra"], v=2)])
        assert reducer.compute_ops() == 2
