"""Golden record-path snapshots: the hot-path kernels move no bytes.

``tests/golden/record_path.json`` was generated from the engine *before*
the record-path performance overhaul (map-emit fast paths, sort-key
vectors, reducer clones, cached byte accounting).  These tests pin, for
every paper workload query:

* the final result rows, byte for byte;
* every deterministic :class:`JobCounters` field, including
  ``map_output_bytes`` and ``reduce_task_records``;
* the executed reduce partitions — ids and record loads in partition
  order (empty partitions are never scheduled, and present ones keep
  their ``stable_hash % num_reducers`` id).

Any optimization that changes one of these is a semantics change, not a
performance change, and fails here.  Regenerate only for intentional
semantic changes: ``PYTHONPATH=src python
scripts/generate_golden_record_path.py``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.translator import translate_sql
from repro.mr.tasks import JobTaskGraph
from repro.workloads.queries import paper_queries
from repro.workloads.runner import run_translation

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "record_path.json")


def _golden():
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


GOLDEN = _golden()


def _roundtrip(obj):
    """Canonicalize through JSON so live values compare against the
    snapshot on equal footing (tuples become lists, etc.)."""
    return json.loads(json.dumps(obj, sort_keys=True))


def _translate(name, datastore):
    cfg = GOLDEN["config"]
    return translate_sql(paper_queries()[name], catalog=datastore.catalog,
                         namespace=f"golden.{name}",
                         num_reducers=cfg["num_reducers"])


def _execute_chain(translation, datastore):
    """Mirror scripts/generate_golden_record_path.py exactly."""
    jobs_snapshot = []
    for job in translation.jobs:
        graph = JobTaskGraph(job, datastore)
        map_outputs = [task.run() for task in graph.map_tasks]
        reduce_tasks = graph.shuffle(map_outputs)
        partitions = [[task.partition, task.input_records]
                      for task in reduce_tasks]
        counters = graph.finalize([task.run() for task in reduce_tasks])
        snap = counters.comparable()
        snap.pop("phase_wall_s", None)
        jobs_snapshot.append({
            "job_id": job.job_id,
            "name": job.name,
            "partitions": partitions,
            "counters": snap,
        })
    final = datastore.intermediate(translation.final_dataset)
    return {
        "columns": list(translation.output_columns),
        "rows": [dict(row) for row in final.rows],
        "jobs": jobs_snapshot,
    }


def test_golden_config_matches_session_fixtures():
    # The snapshot was generated against the same data the session
    # datastore fixture builds; if conftest.py changes, regenerate.
    assert GOLDEN["config"] == {"tpch_scale": 0.002,
                                "clickstream_users": 60, "seed": 7,
                                "num_reducers": 8, "mode": "ysmart"}


@pytest.mark.parametrize("name", sorted(GOLDEN["queries"]))
def test_rows_counters_and_partitions_identical(name, datastore):
    expected = GOLDEN["queries"][name]
    got = _roundtrip(_execute_chain(_translate(name, datastore), datastore))
    assert got["columns"] == expected["columns"]
    assert got["rows"] == expected["rows"]
    assert len(got["jobs"]) == len(expected["jobs"])
    for got_job, exp_job in zip(got["jobs"], expected["jobs"]):
        assert got_job["job_id"] == exp_job["job_id"]
        assert got_job["partitions"] == exp_job["partitions"], \
            f"{name}/{exp_job['job_id']}: partition assignment drifted"
        assert got_job["counters"] == exp_job["counters"], \
            f"{name}/{exp_job['job_id']}: counters drifted"


@pytest.mark.parametrize("name", sorted(GOLDEN["queries"]))
def test_parallel_executor_matches_golden(name, datastore):
    expected = GOLDEN["queries"][name]
    result = run_translation(_translate(name, datastore), datastore,
                             parallelism=4)
    assert _roundtrip(result.rows) == expected["rows"]
    got = [_roundtrip({k: v for k, v in r.counters.comparable().items()})
           for r in result.runs]
    assert got == [job["counters"] for job in expected["jobs"]]


@pytest.mark.parametrize("name", sorted(GOLDEN["queries"]))
def test_partition_consistency(name):
    """Regression for the shuffle partition-build rework: executed
    partitions carry in-range, strictly increasing ids, never empty
    loads, and their loads reproduce the pinned reduce_task_records."""
    num_reducers = GOLDEN["config"]["num_reducers"]
    for job in GOLDEN["queries"][name]["jobs"]:
        pids = [pid for pid, _ in job["partitions"]]
        loads = [load for _, load in job["partitions"]]
        assert pids == sorted(pids)
        assert len(set(pids)) == len(pids)
        assert all(0 <= pid < num_reducers for pid in pids)
        assert all(load > 0 for load in loads)
        assert loads == job["counters"]["reduce_task_records"]
        assert sum(loads) == job["counters"]["reduce_input_records"]
