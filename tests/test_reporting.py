"""Tests for experiment persistence and regression comparison."""

import pytest

from repro.bench import ExperimentResult
from repro.bench.reporting import (
    compare_results,
    load_results,
    results_from_json,
    results_to_json,
    save_results,
)


def make_result(times=(100, 200)):
    r = ExperimentResult("exp", "A test experiment",
                         ["query", "system", "time_s"])
    r.rows = [
        {"query": "q1", "system": "ysmart", "time_s": times[0]},
        {"query": "q1", "system": "hive", "time_s": times[1]},
    ]
    r.notes = ["note"]
    return r


class TestPersistence:
    def test_json_roundtrip(self):
        results = [make_result()]
        back = results_from_json(results_to_json(results))
        assert back[0].exp_id == "exp"
        assert back[0].rows == results[0].rows
        assert back[0].notes == ["note"]

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "run.json")
        save_results([make_result()], path)
        back = load_results(path)
        assert back[0].value("time_s", system="ysmart") == 100


class TestComparison:
    def test_identical_runs_clean(self):
        cmp = compare_results([make_result()], [make_result()])
        assert cmp.clean
        assert cmp.describe() == "no drift"

    def test_within_tolerance_clean(self):
        cmp = compare_results([make_result((100, 200))],
                              [make_result((105, 195))], tolerance=0.10)
        assert cmp.clean

    def test_drift_detected(self):
        cmp = compare_results([make_result((100, 200))],
                              [make_result((150, 200))], tolerance=0.10)
        assert not cmp.clean
        assert len(cmp.drifts) == 1
        drift = cmp.drifts[0]
        assert drift.column == "time_s"
        assert drift.ratio == pytest.approx(1.5)
        assert "ysmart" in drift.row_key
        assert "1.50x" in cmp.describe()

    def test_missing_and_new_rows(self):
        base = make_result()
        cur = make_result()
        cur.rows = [cur.rows[0],
                    {"query": "q2", "system": "pig", "time_s": 5}]
        cmp = compare_results([base], [cur])
        assert any("hive" in k for k in cmp.missing_rows)
        assert any("pig" in k for k in cmp.new_rows)

    def test_missing_experiment(self):
        cmp = compare_results([make_result()], [])
        assert cmp.missing_rows == ["exp (whole experiment)"]

    def test_non_numeric_change_reported(self):
        base = ExperimentResult("e", "t", ["k", "status"])
        base.rows = [{"k": 1, "status": "ok"}]
        cur = ExperimentResult("e", "t", ["k", "status"])
        cur.rows = [{"k": 1, "status": "inf"}]
        cmp = compare_results([base], [cur])
        assert not cmp.clean

    def test_real_experiment_self_compare(self):
        """A real regenerated table compares clean against itself after a
        JSON round-trip (determinism end to end)."""
        from repro.bench import standard_workload, table_job_counts
        w = standard_workload(tpch_scale=0.001, clickstream_users=10)
        a = table_job_counts(w)
        b = results_from_json(results_to_json([a]))[0]
        assert compare_results([a], [b]).clean
