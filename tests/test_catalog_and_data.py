"""Tests for the catalog registry, Table, and Datastore."""

import pytest

from repro.catalog import (
    CLICKS_SCHEMA,
    TPCH_SCHEMAS,
    Catalog,
    Schema,
    standard_catalog,
)
from repro.catalog.types import ColumnType as T
from repro.data import Datastore, Table, rows_equal_unordered
from repro.errors import CatalogError, ExecutionError


class TestCatalog:
    def test_register_and_lookup(self):
        cat = Catalog()
        schema = Schema.of(("x", T.INT))
        cat.register("MyTable", schema)
        assert cat.schema("mytable") == schema
        assert cat.has("MYTABLE")
        assert "mytable" in cat

    def test_duplicate_register_rejected(self):
        cat = Catalog()
        cat.register("t", Schema.of(("x", T.INT)))
        with pytest.raises(CatalogError, match="already registered"):
            cat.register("t", Schema.of(("y", T.INT)))

    def test_replace_flag(self):
        cat = Catalog()
        cat.register("t", Schema.of(("x", T.INT)))
        cat.register("t", Schema.of(("y", T.INT)), replace=True)
        assert cat.schema("t").names == ["y"]

    def test_drop(self):
        cat = Catalog()
        cat.register("t", Schema.of(("x", T.INT)))
        cat.drop("t")
        assert not cat.has("t")
        with pytest.raises(CatalogError):
            cat.drop("t")

    def test_unknown_table(self):
        with pytest.raises(CatalogError, match="unknown table"):
            Catalog().schema("ghost")

    def test_copy_is_independent(self):
        cat = Catalog()
        cat.register("t", Schema.of(("x", T.INT)))
        clone = cat.copy()
        clone.drop("t")
        assert cat.has("t")

    def test_standard_catalog_contains_paper_tables(self):
        cat = standard_catalog()
        for name in ["lineitem", "orders", "customer", "part", "supplier",
                     "nation", "clicks"]:
            assert cat.has(name), name

    def test_paper_schema_columns(self):
        assert "l_orderkey" in TPCH_SCHEMAS["lineitem"]
        assert "o_orderstatus" in TPCH_SCHEMAS["orders"]
        assert CLICKS_SCHEMA.names == ["uid", "pid", "cid", "ts"]


class TestTable:
    def _table(self):
        schema = Schema.of(("a", T.INT), ("b", T.STRING))
        return Table("t", schema, [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])

    def test_len_iter(self):
        t = self._table()
        assert len(t) == 2
        assert [r["a"] for r in t] == [1, 2]

    def test_validate_on_build(self):
        schema = Schema.of(("a", T.INT))
        with pytest.raises(CatalogError):
            Table("t", schema, [{"a": "bad"}], validate=True)

    def test_append_and_extend(self):
        t = self._table()
        t.append({"a": 3, "b": "z"})
        t.extend([{"a": 4, "b": "w"}])
        assert len(t) == 4

    def test_column_values(self):
        assert self._table().column_values("a") == [1, 2]
        with pytest.raises(CatalogError):
            self._table().column_values("nope")

    def test_estimated_bytes_counts_fields(self):
        t = Table("t", Schema.of(("a", T.INT)), [{"a": 12}, {"a": 345}])
        # "12" + delim + "345" + delim
        assert t.estimated_bytes() == 3 + 4

    def test_sorted_rows_handles_nulls(self):
        t = Table("t", Schema.of(("a", T.INT)),
                  [{"a": 2}, {"a": None}, {"a": 1}])
        assert [r["a"] for r in t.sorted_rows()] == [None, 1, 2]

    def test_copy_is_deep_per_row(self):
        t = self._table()
        c = t.copy("t2")
        c.rows[0]["a"] = 99
        assert t.rows[0]["a"] == 1
        assert c.name == "t2"


class TestRowsEqualUnordered:
    def test_order_insensitive(self):
        a = [{"x": 1}, {"x": 2}]
        b = [{"x": 2}, {"x": 1}]
        assert rows_equal_unordered(a, b, ["x"])

    def test_multiset_semantics(self):
        assert not rows_equal_unordered(
            [{"x": 1}, {"x": 1}], [{"x": 1}], ["x"])

    def test_float_tolerance(self):
        a = [{"x": 1.0000000001}]
        b = [{"x": 1.0}]
        assert rows_equal_unordered(a, b, ["x"], float_tol=1e-6)
        assert not rows_equal_unordered([{"x": 1.1}], b, ["x"], float_tol=1e-6)

    def test_nulls_compare_equal(self):
        assert rows_equal_unordered([{"x": None}], [{"x": None}], ["x"])
        assert not rows_equal_unordered([{"x": None}], [{"x": 0}], ["x"])


class TestDatastore:
    def test_load_registers_schema(self):
        ds = Datastore()
        t = Table("newtab", Schema.of(("a", T.INT)), [{"a": 1}])
        ds.load_table(t)
        assert ds.catalog.has("newtab")
        assert ds.table("newtab") is t

    def test_table_missing(self):
        with pytest.raises(CatalogError, match="no table loaded"):
            Datastore().table("ghost")

    def test_intermediates_roundtrip(self):
        ds = Datastore()
        t = Table("x", Schema.of(("a", T.INT)), [{"a": 1}])
        ds.write_intermediate("job1.out", t)
        assert ds.intermediate("job1.out") is t
        assert ds.resolve("job1.out") is t

    def test_intermediate_no_replace(self):
        ds = Datastore()
        t = Table("x", Schema.of(("a", T.INT)), [])
        ds.write_intermediate("d", t)
        with pytest.raises(ExecutionError):
            ds.write_intermediate("d", t, replace=False)

    def test_resolve_prefers_intermediate(self):
        ds = Datastore()
        base = Table("t", Schema.of(("a", T.INT)), [{"a": 1}])
        ds.load_table(base)
        shadow = Table("t", Schema.of(("a", T.INT)), [{"a": 2}])
        ds.write_intermediate("t", shadow)
        assert ds.resolve("t") is shadow

    def test_resolve_missing(self):
        with pytest.raises(ExecutionError, match="neither"):
            Datastore().resolve("nothing")

    def test_drop_intermediates(self):
        ds = Datastore()
        ds.write_intermediate("d", Table("x", Schema.of(("a", T.INT)), []))
        ds.drop_intermediates()
        with pytest.raises(ExecutionError):
            ds.intermediate("d")


class TestDatastoreSuggestions:
    def store(self):
        ds = Datastore()
        ds.load_table(Table("lineitem", Schema.of(("a", T.INT)), []))
        ds.load_table(Table("orders", Schema.of(("a", T.INT)), []))
        ds.write_intermediate("q1.job1.out",
                              Table("x", Schema.of(("a", T.INT)), []))
        return ds

    def test_table_typo_suggests(self):
        with pytest.raises(CatalogError,
                           match="did you mean 'lineitem'"):
            self.store().table("lineitm")

    def test_case_is_folded_before_matching(self):
        with pytest.raises(CatalogError, match="did you mean 'orders'"):
            self.store().table("ORDRES")

    def test_intermediate_typo_suggests(self):
        with pytest.raises(ExecutionError,
                           match="did you mean 'q1.job1.out'"):
            self.store().intermediate("q1.job1.ot")

    def test_resolve_typo_suggests(self):
        with pytest.raises(ExecutionError, match="did you mean"):
            self.store().resolve("ordes")

    def test_no_close_match_no_suffix(self):
        with pytest.raises(CatalogError) as excinfo:
            self.store().table("zzzzzz")
        assert "did you mean" not in str(excinfo.value)


class TestDatastoreVersions:
    def test_load_stamps_and_reload_bumps(self):
        ds = Datastore()
        ds.load_table(Table("t", Schema.of(("a", T.INT)), [{"a": 1}]))
        v0 = ds.version("t")
        ds.load_table(Table("t", Schema.of(("a", T.INT)), [{"a": 2}]))
        assert ds.version("t") != v0

    def test_mutation_bumps_without_reload(self):
        ds = Datastore()
        table = Table("t", Schema.of(("a", T.INT)), [{"a": 1}])
        ds.load_table(table)
        v0 = ds.version("t")
        table.append({"a": 2})
        v1 = ds.version("t")
        assert v1 != v0
        table.extend([{"a": 3}])
        assert ds.version("t") not in (v0, v1)

    def test_intermediate_rewrite_bumps(self):
        ds = Datastore()
        ds.write_intermediate("d", Table("x", Schema.of(("a", T.INT)), []))
        v0 = ds.version("d")
        ds.write_intermediate("d", Table("x", Schema.of(("a", T.INT)), []))
        assert ds.version("d") != v0

    def test_versions_lists_every_dataset(self):
        ds = Datastore()
        ds.load_table(Table("t", Schema.of(("a", T.INT)), []))
        ds.write_intermediate("d", Table("x", Schema.of(("a", T.INT)), []))
        assert set(ds.versions()) == {"t", "d"}

    def test_version_unknown_raises_with_suggestion(self):
        ds = Datastore()
        ds.load_table(Table("events", Schema.of(("a", T.INT)), []))
        with pytest.raises(ExecutionError, match="did you mean 'events'"):
            ds.version("event")


class TestDatastoreSizes:
    def test_sizes_all_and_subset(self):
        ds = Datastore()
        ds.load_table(Table("t", Schema.of(("a", T.INT)), [{"a": 1}]))
        ds.write_intermediate("d", Table("x", Schema.of(("a", T.INT)),
                                         [{"a": 22}]))
        sizes = ds.sizes()
        assert set(sizes) == {"t", "d"}
        assert all(v > 0 for v in sizes.values())
        assert ds.sizes(["t"]) == {"t": sizes["t"]}

    def test_sizes_match_dataset_bytes(self):
        ds = Datastore()
        ds.load_table(Table("t", Schema.of(("a", T.INT)), [{"a": 1}]))
        assert ds.sizes(["t"])["t"] == ds.dataset_bytes("t")
