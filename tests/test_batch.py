"""Tests for multi-query batch translation (cross-query sharing)."""

import pytest

from repro.core.batch import run_batch, translate_batch
from repro.data import rows_equal_unordered
from repro.errors import TranslationError
from repro.plan.planner import plan_query
from repro.refexec import run_reference
from repro.sqlparser.parser import parse_sql
from repro.workloads.queries import paper_queries

LINECOUNTS_SQL = ("SELECT l_orderkey, count(*) AS lines, "
                  "sum(l_quantity) AS qty FROM lineitem GROUP BY l_orderkey")
SUPPLIER_SQL = ("SELECT l_suppkey, count(*) AS n FROM lineitem "
                "GROUP BY l_suppkey")


def check_batch_correct(batch, datastore, tr, result):
    for qid, sql in batch.items():
        ref = run_reference(plan_query(parse_sql(sql), datastore.catalog),
                            datastore)
        cols = [bare for _, bare in tr.output_columns[qid]]
        assert rows_equal_unordered(result.rows[qid], ref.rows, cols,
                                    1e-6), qid


class TestCorrectness:
    def test_two_unrelated_queries(self, datastore, fresh_namespace):
        batch = {"a": paper_queries()["q_agg"],
                 "b": SUPPLIER_SQL}
        tr = translate_batch(batch, catalog=datastore.catalog,
                             namespace=fresh_namespace)
        res = run_batch(tr, datastore)
        check_batch_correct(batch, datastore, tr, res)

    def test_paper_queries_batched(self, datastore, fresh_namespace):
        batch = {"q17": paper_queries()["q17"],
                 "waiters": paper_queries()["q21_subtree"],
                 "csa": paper_queries()["q_csa"]}
        tr = translate_batch(batch, catalog=datastore.catalog,
                             namespace=fresh_namespace)
        res = run_batch(tr, datastore)
        check_batch_correct(batch, datastore, tr, res)

    def test_sharing_toggle_preserves_results(self, datastore,
                                              fresh_namespace):
        batch = {"waiters": paper_queries()["q21_subtree"],
                 "lines": LINECOUNTS_SQL}
        for share in (True, False):
            tr = translate_batch(batch, catalog=datastore.catalog,
                                 namespace=f"{fresh_namespace}.{share}",
                                 share_across_queries=share)
            res = run_batch(tr, datastore)
            check_batch_correct(batch, datastore, tr, res)

    def test_same_query_twice(self, datastore, fresh_namespace):
        """Two instances of the same query share everything and still
        produce two result datasets."""
        batch = {"first": LINECOUNTS_SQL, "second": LINECOUNTS_SQL}
        tr = translate_batch(batch, catalog=datastore.catalog,
                             namespace=fresh_namespace)
        assert tr.job_count == 1
        res = run_batch(tr, datastore)
        assert res.rows["first"] and res.rows["first"] == res.rows["second"]


class TestSharing:
    def test_cross_query_merge_on_matching_pk(self, datastore,
                                              fresh_namespace):
        """Q21's sub-tree and a per-order report share the lineitem scan
        AND the shuffle: one job instead of two."""
        batch = {"waiters": paper_queries()["q21_subtree"],
                 "lines": LINECOUNTS_SQL}
        shared = translate_batch(batch, catalog=datastore.catalog,
                                 namespace=f"{fresh_namespace}.s")
        separate = translate_batch(batch, catalog=datastore.catalog,
                                   namespace=f"{fresh_namespace}.n",
                                   share_across_queries=False)
        assert shared.job_count == 1
        assert separate.job_count == 2

    def test_shared_scan_bytes_halved(self, datastore, fresh_namespace):
        batch = {"waiters": paper_queries()["q21_subtree"],
                 "lines": LINECOUNTS_SQL}
        li = datastore.table("lineitem").estimated_bytes()
        scans = {}
        for share in (True, False):
            tr = translate_batch(batch, catalog=datastore.catalog,
                                 namespace=f"{fresh_namespace}.{share}",
                                 share_across_queries=share)
            res = run_batch(tr, datastore)
            scans[share] = sum(r.counters.input_bytes.get("lineitem", 0)
                               for r in res.runs)
        assert scans[True] == li
        assert scans[False] == 2 * li

    def test_no_merge_on_different_pk(self, datastore, fresh_namespace):
        """Q17 (partkey) and the per-order report (orderkey) share input
        but not the partition key: IC without TC, no merge (the paper's
        distinction between the two correlations)."""
        batch = {"q17": paper_queries()["q17"], "lines": LINECOUNTS_SQL}
        shared = translate_batch(batch, catalog=datastore.catalog,
                                 namespace=fresh_namespace)
        separate = translate_batch(batch, catalog=datastore.catalog,
                                   namespace=f"{fresh_namespace}.n",
                                   share_across_queries=False)
        assert shared.job_count == separate.job_count

    def test_batch_never_worse_than_separate(self, datastore,
                                             fresh_namespace):
        queries = paper_queries()
        batch = {"q17": queries["q17"], "q18": queries["q18"],
                 "csa": queries["q_csa"], "lines": LINECOUNTS_SQL}
        shared = translate_batch(batch, catalog=datastore.catalog,
                                 namespace=fresh_namespace)
        separate = translate_batch(batch, catalog=datastore.catalog,
                                   namespace=f"{fresh_namespace}.n",
                                   share_across_queries=False)
        assert shared.job_count <= separate.job_count


class TestValidation:
    def test_empty_batch_rejected(self):
        with pytest.raises(TranslationError, match="at least one"):
            translate_batch({})

    def test_bad_query_id(self):
        with pytest.raises(TranslationError, match="without dots"):
            translate_batch({"a.b": "SELECT cid FROM clicks"})

    def test_output_columns_order_preserved(self, datastore,
                                            fresh_namespace):
        tr = translate_batch({"q": LINECOUNTS_SQL},
                             catalog=datastore.catalog,
                             namespace=fresh_namespace)
        bare = [b for _, b in tr.output_columns["q"]]
        assert bare == ["l_orderkey", "lines", "qty"]
