"""Corner cases around composite partition keys and key layout.

Common jobs order key components by sorted equivalence-class
representative so every role agrees on tuple positions; these tests pin
that behaviour with two-column join keys, merged aggregations over
composite PKs, and swapped-side key ordering.
"""

import pytest

from repro.catalog import Catalog, Schema
from repro.catalog.types import ColumnType as T
from repro.core.translator import translate_sql
from repro.data import Datastore, Table, rows_equal_unordered
from repro.mr.engine import run_jobs
from repro.plan.planner import plan_query
from repro.refexec import run_reference
from repro.sqlparser.parser import parse_sql


@pytest.fixture(scope="module")
def ds():
    store = Datastore(Catalog())
    store.load_table(Table("ev", Schema.of(
        ("day", T.INT), ("region", T.INT), ("v", T.INT)), [
        {"day": d, "region": r, "v": d * 10 + r}
        for d in range(4) for r in range(3) for _ in range(2)
    ]))
    store.load_table(Table("cal", Schema.of(
        ("day", T.INT), ("region", T.INT), ("w", T.INT)), [
        {"day": d, "region": r, "w": d + r}
        for d in range(4) for r in range(3)
    ]))
    return store


def check(sql, ds, namespace):
    ref = run_reference(plan_query(parse_sql(sql), ds.catalog), ds)
    results = {}
    for mode in ("ysmart", "hive"):
        tr = translate_sql(sql, mode=mode, catalog=ds.catalog,
                           namespace=f"{namespace}.{mode}")
        run_jobs(tr.jobs, ds)
        rows = ds.intermediate(tr.final_dataset).rows
        assert rows_equal_unordered(rows, ref.rows, tr.output_columns,
                                    1e-6), mode
        results[mode] = tr
    return results


class TestCompositeKeys:
    def test_two_column_equi_join(self, ds):
        check("SELECT ev.v, cal.w FROM ev, cal "
              "WHERE ev.day = cal.day AND ev.region = cal.region",
              ds, "mk1")

    def test_join_plus_composite_group_merges(self, ds):
        """Aggregation grouped on both join columns is JFC with the join
        and must merge into one job — with a two-component map key."""
        sql = ("SELECT ev.day, ev.region, sum(ev.v) AS s, max(cal.w) AS m "
               "FROM ev, cal "
               "WHERE ev.day = cal.day AND ev.region = cal.region "
               "GROUP BY ev.day, ev.region")
        results = check(sql, ds, "mk2")
        assert results["ysmart"].job_count == 1
        assert results["hive"].job_count == 2

    def test_swapped_predicate_sides(self, ds):
        """cal.day = ev.day (reversed) must land keys on the right sides."""
        check("SELECT ev.v, cal.w FROM ev, cal "
              "WHERE cal.day = ev.day AND cal.region = ev.region",
              ds, "mk3")

    def test_derived_composite_join(self, ds):
        """Q17-style: join a table with its own composite-key aggregate."""
        sql = ("SELECT e.day, e.region, e.v FROM ev AS e, "
               "(SELECT day, region, avg(v) AS a FROM ev "
               " GROUP BY day, region) AS m "
               "WHERE e.day = m.day AND e.region = m.region "
               "AND e.v > m.a")
        results = check(sql, ds, "mk4")
        # shared scan + TC merge + JFC join fold: a single job.
        assert results["ysmart"].job_count == 1

    def test_partial_key_overlap_no_jfc(self, ds):
        """Grouping on just `day` when the join partitions on (day,
        region): PK sets differ, so the agg stays a separate job."""
        sql = ("SELECT ev.day, count(*) AS n FROM ev, cal "
               "WHERE ev.day = cal.day AND ev.region = cal.region "
               "GROUP BY ev.day")
        results = check(sql, ds, "mk5")
        assert results["ysmart"].job_count == 2

    def test_composite_key_with_nulls(self):
        store = Datastore(Catalog())
        store.load_table(Table("a", Schema.of(("x", T.INT), ("y", T.INT)), [
            {"x": 1, "y": 1}, {"x": 1, "y": None}, {"x": None, "y": 2}]))
        store.load_table(Table("b", Schema.of(("x", T.INT), ("y", T.INT)), [
            {"x": 1, "y": 1}, {"x": None, "y": 2}]))
        check("SELECT a.x, a.y FROM a, b "
              "WHERE a.x = b.x AND a.y = b.y", store, "mk6")
