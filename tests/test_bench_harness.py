"""Tests for the experiment harness utilities (ExperimentResult, Workload)."""

import pytest

from repro.bench import ExperimentResult, standard_workload


@pytest.fixture
def result():
    r = ExperimentResult("x", "Test result", ["a", "b", "c"])
    r.rows = [
        {"a": 1, "b": "p", "c": 10},
        {"a": 2, "b": "p", "c": 20},
        {"a": 2, "b": "q", "c": 30},
    ]
    r.notes = ["a note"]
    return r


class TestExperimentResult:
    def test_by_filters(self, result):
        assert len(result.by(b="p")) == 2
        assert len(result.by(a=2, b="q")) == 1
        assert result.by(a=99) == []

    def test_value_unique(self, result):
        assert result.value("c", a=1) == 10

    def test_value_ambiguous_raises(self, result):
        with pytest.raises(ValueError, match="expected one row"):
            result.value("c", b="p")

    def test_value_missing_raises(self, result):
        with pytest.raises(ValueError):
            result.value("c", a=42)

    def test_markdown_contains_all(self, result):
        md = result.to_markdown()
        assert "### x: Test result" in md
        assert "| a | b | c |" in md
        assert "| 2 | q | 30 |" in md
        assert "*a note*" in md

    def test_markdown_missing_cells_blank(self):
        r = ExperimentResult("y", "t", ["a", "b"])
        r.rows = [{"a": 1}]
        assert "| 1 |  |" in r.to_markdown()


class TestWorkload:
    def test_scales_ordered(self):
        w = standard_workload(tpch_scale=0.001, clickstream_users=10)
        assert w.tpch_scale_10gb < w.tpch_scale_100gb < w.tpch_scale_1tb
        assert w.tpch_scale_100gb == pytest.approx(
            10 * w.tpch_scale_10gb)
        assert w.clicks_scale_20gb > 0

    def test_datastore_has_all_tables(self):
        w = standard_workload(tpch_scale=0.001, clickstream_users=10)
        for t in ("lineitem", "orders", "customer", "part", "supplier",
                  "nation", "clicks"):
            assert w.datastore.has_table(t)

    def test_seed_determinism(self):
        a = standard_workload(tpch_scale=0.001, clickstream_users=10, seed=3)
        b = standard_workload(tpch_scale=0.001, clickstream_users=10, seed=3)
        assert a.datastore.table("lineitem").rows == \
            b.datastore.table("lineitem").rows
