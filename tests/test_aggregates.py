"""Unit tests for aggregate accumulators."""

import pytest

from repro.errors import UnsupportedSqlError
from repro.expr.aggregates import (
    AvgAcc,
    CountAcc,
    CountDistinctAcc,
    CountStarAcc,
    MaxAcc,
    MinAcc,
    SumAcc,
    accumulator_factory,
    make_accumulator,
)


def feed(acc, values):
    for v in values:
        acc.add(v)
    return acc.result()


class TestSemantics:
    def test_count_star_counts_nulls(self):
        assert feed(CountStarAcc(), [1, None, 2]) == 3

    def test_count_skips_nulls(self):
        assert feed(CountAcc(), [1, None, 2]) == 2

    def test_count_distinct(self):
        assert feed(CountDistinctAcc(), [1, 1, 2, None, 2]) == 2

    def test_sum(self):
        assert feed(SumAcc(), [1, 2, None, 3]) == 6

    def test_sum_empty_is_null(self):
        assert SumAcc().result() is None
        assert feed(SumAcc(), [None, None]) is None

    def test_avg(self):
        assert feed(AvgAcc(), [2, 4, None]) == 3.0

    def test_avg_empty_is_null(self):
        assert AvgAcc().result() is None

    def test_min_max(self):
        assert feed(MinAcc(), [3, None, 1, 2]) == 1
        assert feed(MaxAcc(), [3, None, 1, 2]) == 3

    def test_min_empty_is_null(self):
        assert MinAcc().result() is None

    def test_count_empty_is_zero(self):
        assert CountAcc().result() == 0
        assert CountStarAcc().result() == 0


class TestMerge:
    @pytest.mark.parametrize("cls,chunks,expected", [
        (CountStarAcc, [[1, 2], [3]], 3),
        (CountAcc, [[1, None], [2]], 2),
        (SumAcc, [[1, 2], [3]], 6),
        (AvgAcc, [[2], [4, 6]], 4.0),
        (MinAcc, [[5], [2, 9]], 2),
        (MaxAcc, [[5], [2, 9]], 9),
        (CountDistinctAcc, [[1, 2], [2, 3]], 3),
    ])
    def test_merge_equals_single_pass(self, cls, chunks, expected):
        partials = []
        for chunk in chunks:
            acc = cls()
            for v in chunk:
                acc.add(v)
            partials.append(acc)
        merged = cls()
        for p in partials:
            merged.merge(p)
        assert merged.result() == expected

    @pytest.mark.parametrize("cls,chunks,expected", [
        (CountStarAcc, [[1, 2], [3]], 3),
        (SumAcc, [[1, 2], [3]], 6),
        (SumAcc, [[None], [None]], None),
        (AvgAcc, [[2], [4, 6]], 4.0),
        (MinAcc, [[5], [2, 9]], 2),
        (MaxAcc, [[], [2]], 2),
        (CountDistinctAcc, [[1, 2], [2, 3]], 3),
    ])
    def test_state_absorb_equals_single_pass(self, cls, chunks, expected):
        merged = cls()
        for chunk in chunks:
            acc = cls()
            for v in chunk:
                acc.add(v)
            merged.absorb(acc.state())
        assert merged.result() == expected

    def test_mergeable_flags(self):
        assert SumAcc.mergeable and AvgAcc.mergeable
        assert not CountDistinctAcc.mergeable


class TestFactory:
    def test_plain_functions(self):
        assert isinstance(make_accumulator("sum"), SumAcc)
        assert isinstance(make_accumulator("avg"), AvgAcc)
        assert isinstance(make_accumulator("min"), MinAcc)
        assert isinstance(make_accumulator("max"), MaxAcc)
        assert isinstance(make_accumulator("count"), CountAcc)

    def test_count_star(self):
        assert isinstance(make_accumulator("count", star=True), CountStarAcc)

    def test_count_distinct(self):
        acc = make_accumulator("count", distinct=True)
        assert isinstance(acc, CountDistinctAcc)

    def test_min_distinct_is_plain_min(self):
        assert isinstance(make_accumulator("min", distinct=True), MinAcc)

    def test_sum_distinct_unsupported(self):
        with pytest.raises(UnsupportedSqlError):
            make_accumulator("sum", distinct=True)

    def test_star_only_for_count(self):
        with pytest.raises(UnsupportedSqlError):
            make_accumulator("sum", star=True)

    def test_unknown_function(self):
        with pytest.raises(UnsupportedSqlError):
            make_accumulator("median")

    def test_factory_returns_fresh_instances(self):
        factory = accumulator_factory("sum")
        a, b = factory(), factory()
        a.add(5)
        assert b.result() is None

    def test_factory_validates_eagerly(self):
        with pytest.raises(UnsupportedSqlError):
            accumulator_factory("bogus")
