"""End-to-end integration: every translator mode on every paper query
produces exactly the reference executor's rows (DESIGN.md invariant 1/2)."""

import pytest

from repro.core.translator import TRANSLATOR_MODES, translate_sql
from repro.data import rows_equal_unordered
from repro.mr.engine import run_jobs
from repro.plan.planner import plan_query
from repro.refexec import run_reference
from repro.sqlparser.parser import parse_sql
from repro.workloads.queries import paper_queries

QUERIES = ["q_agg", "q17", "q18", "q21_subtree", "q21", "q_csa"]


@pytest.fixture(scope="module")
def references(datastore):
    refs = {}
    for name in QUERIES:
        plan = plan_query(parse_sql(paper_queries()[name]), datastore.catalog)
        refs[name] = run_reference(plan, datastore)
    return refs


@pytest.mark.parametrize("mode", TRANSLATOR_MODES)
@pytest.mark.parametrize("query", QUERIES)
def test_translation_matches_reference(query, mode, datastore, references,
                                       fresh_namespace):
    sql = paper_queries()[query]
    tr = translate_sql(sql, mode=mode, catalog=datastore.catalog,
                       namespace=f"{fresh_namespace}.{query}.{mode}")
    run_jobs(tr.jobs, datastore)
    result = datastore.intermediate(tr.final_dataset)
    ref = references[query]
    assert rows_equal_unordered(result.rows, ref.rows, tr.output_columns,
                                float_tol=1e-6), (
        f"{query} under {mode} diverged from the reference executor")


@pytest.mark.parametrize("query", QUERIES)
def test_merging_never_changes_results(query, datastore, fresh_namespace):
    """Staged rule application yields identical outputs (invariant 2)."""
    sql = paper_queries()[query]
    outputs = {}
    for mode in ("one_to_one", "ysmart_ic_tc", "ysmart"):
        tr = translate_sql(sql, mode=mode, catalog=datastore.catalog,
                           namespace=f"{fresh_namespace}.{query}.{mode}")
        run_jobs(tr.jobs, datastore)
        outputs[mode] = (datastore.intermediate(tr.final_dataset).rows,
                         tr.output_columns)
    base_rows, cols = outputs["one_to_one"]
    for mode in ("ysmart_ic_tc", "ysmart"):
        rows, _ = outputs[mode]
        assert rows_equal_unordered(rows, base_rows, cols, float_tol=1e-6)


@pytest.mark.parametrize("query", QUERIES)
def test_ysmart_minimizes_jobs(query, datastore):
    """YSmart's job count never exceeds the staged or naive translations
    (invariant 3)."""
    sql = paper_queries()[query]
    counts = {}
    for mode in ("ysmart", "ysmart_ic_tc", "one_to_one", "hive", "pig"):
        counts[mode] = translate_sql(sql, mode=mode,
                                     catalog=datastore.catalog,
                                     namespace=f"jc.{query}.{mode}").job_count
    assert counts["ysmart"] <= counts["ysmart_ic_tc"] <= counts["one_to_one"]
    assert counts["one_to_one"] == counts["hive"] == counts["pig"]


def test_sorted_output_order_preserved(datastore, fresh_namespace):
    """Q18's ORDER BY must survive the MR translation (total order job)."""
    sql = paper_queries()["q18"]
    plan = plan_query(parse_sql(sql), datastore.catalog)
    ref = run_reference(plan, datastore)
    tr = translate_sql(sql, mode="ysmart", catalog=datastore.catalog,
                       namespace=fresh_namespace)
    run_jobs(tr.jobs, datastore)
    rows = datastore.intermediate(tr.final_dataset).rows
    ref_keys = [(r["o_totalprice"], r["o_orderdate"]) for r in ref.rows]
    got_keys = [(r["o_totalprice"], r["o_orderdate"]) for r in rows]
    assert got_keys == ref_keys


def test_translation_describe_lists_jobs(datastore):
    tr = translate_sql(paper_queries()["q17"], mode="ysmart",
                       catalog=datastore.catalog, namespace="desc")
    text = tr.describe()
    assert "mode=ysmart" in text and "job1" in text


def test_unknown_mode_rejected(datastore):
    from repro.errors import TranslationError
    with pytest.raises(TranslationError, match="unknown translator mode"):
        translate_sql("SELECT cid FROM clicks", mode="spark",
                      catalog=datastore.catalog)


def test_shared_scan_in_merged_job(datastore, fresh_namespace):
    """The Q21 sub-tree common job scans lineitem exactly once even though
    three operations consume it (paper's headline mechanism)."""
    sql = paper_queries()["q21_subtree"]
    tr = translate_sql(sql, mode="ysmart", catalog=datastore.catalog,
                       namespace=fresh_namespace)
    assert tr.job_count == 1
    runs = run_jobs(tr.jobs, datastore)
    counters = runs[0].counters
    lineitem_bytes = datastore.table("lineitem").estimated_bytes()
    assert counters.input_bytes["lineitem"] == lineitem_bytes  # one scan

    # One-op translation scans lineitem three times across its jobs.
    tr2 = translate_sql(sql, mode="one_to_one", catalog=datastore.catalog,
                        namespace=f"{fresh_namespace}.naive")
    runs2 = run_jobs(tr2.jobs, datastore)
    total = sum(r.counters.input_bytes.get("lineitem", 0) for r in runs2)
    assert total == 3 * lineitem_bytes


def test_ysmart_moves_fewer_bytes(datastore, fresh_namespace):
    """Merging reduces total materialized + shuffled bytes (the paper's
    I/O argument)."""
    sql = paper_queries()["q_csa"]
    volumes = {}
    for mode in ("ysmart", "one_to_one"):
        tr = translate_sql(sql, mode=mode, catalog=datastore.catalog,
                           namespace=f"{fresh_namespace}.{mode}")
        runs = run_jobs(tr.jobs, datastore)
        volumes[mode] = sum(
            r.counters.total_input_bytes + r.counters.map_output_bytes
            + r.counters.total_output_bytes for r in runs)
    assert volumes["ysmart"] < volumes["one_to_one"]
