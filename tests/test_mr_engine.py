"""Tests for the MapReduce engine: map merging, combiner, shuffle, sort."""

import pytest

from repro.catalog import Catalog, Schema
from repro.catalog.types import ColumnType as T
from repro.cmf import CommonReducer
from repro.data import Datastore, Table
from repro.errors import TranslationError
from repro.mr import (
    EmitSpec,
    MRJob,
    MapAggSpec,
    MapInput,
    MapReduceEngine,
    OutputSpec,
    TagPolicy,
    stable_hash,
)
from repro.ops import AggTask, SPTask, TaskInput


@pytest.fixture
def ds():
    store = Datastore(Catalog())
    store.load_table(Table("nums", Schema.of(("k", T.INT), ("v", T.INT)), [
        {"k": 1, "v": 10}, {"k": 2, "v": 20}, {"k": 1, "v": 30},
        {"k": 3, "v": 40}, {"k": 2, "v": 50},
    ]))
    return store


def passthrough_job(ds, job_id="j1", **kwargs):
    def emit(record):
        return (record["k"],), {"v": record["v"]}

    task = SPTask("sp", TaskInput.shuffle("in", ["k"]))
    defaults = dict(
        job_id=job_id, name="pass",
        map_inputs=[MapInput("nums", [EmitSpec("in", emit)])],
        reducer=CommonReducer([task]),
        outputs=[OutputSpec(f"{job_id}.out", "sp", ["k", "v"])],
    )
    defaults.update(kwargs)
    return MRJob(**defaults)


class TestMapPhase:
    def test_counters_measure_input(self, ds):
        engine = MapReduceEngine(ds)
        c = engine.run_job(passthrough_job(ds))
        assert c.input_records == {"nums": 5}
        assert c.input_bytes["nums"] == ds.table("nums").estimated_bytes()
        assert c.map_output_records == 5
        assert c.map_output_bytes > 0

    def test_selection_drops_records(self, ds):
        def emit(record):
            if record["v"] < 25:
                return None
            return (record["k"],), {"v": record["v"]}

        job = passthrough_job(ds)
        job.map_inputs = [MapInput("nums", [EmitSpec("in", emit)])]
        c = MapReduceEngine(ds).run_job(job)
        assert c.map_output_records == 3

    def test_shared_scan_merges_roles(self, ds):
        """Two specs over the same table with the same key produce ONE
        multi-role pair per record (the paper's shared scan)."""
        def emit_a(record):
            return (record["k"],), {"v": record["v"]}

        def emit_b(record):
            return (record["k"],), {"v2": record["v"] * 2}

        task_a = SPTask("a", TaskInput.shuffle("ra", ["k"]))
        task_b = SPTask("b", TaskInput.shuffle("rb", ["k"]))
        job = MRJob(
            job_id="shared", name="shared",
            map_inputs=[MapInput("nums", [EmitSpec("ra", emit_a),
                                          EmitSpec("rb", emit_b)])],
            reducer=CommonReducer([task_a, task_b]),
            outputs=[OutputSpec("shared.a", "a", ["k", "v"]),
                     OutputSpec("shared.b", "b", ["k", "v2"])],
        )
        c = MapReduceEngine(ds).run_job(job)
        assert c.map_output_records == 5  # merged, not 10
        assert c.input_records == {"nums": 5}  # single scan
        assert c.reduce_dispatch_ops == 10  # each pair dispatched twice
        assert len(ds.intermediate("shared.a")) == 5
        assert len(ds.intermediate("shared.b")) == 5

    def test_differing_keys_do_not_merge(self, ds):
        def emit_a(record):
            return (record["k"],), {"v": record["v"]}

        def emit_b(record):
            return (record["v"],), {"k": record["k"]}

        task_a = SPTask("a", TaskInput.shuffle("ra", ["k"]))
        task_b = SPTask("b", TaskInput.shuffle("rb", ["v"]))
        job = MRJob(
            job_id="nomerge", name="x",
            map_inputs=[MapInput("nums", [EmitSpec("ra", emit_a),
                                          EmitSpec("rb", emit_b)])],
            reducer=CommonReducer([task_a, task_b]),
            outputs=[OutputSpec("nomerge.a", "a", ["k", "v"])],
        )
        c = MapReduceEngine(ds).run_job(job)
        assert c.map_output_records == 10


class TestCombiner:
    def _agg_job(self, ds, with_combiner):
        def emit(record):
            return (record["k"],), {"s": record["v"]}

        task = AggTask(
            "agg", TaskInput.shuffle("in", ["k"]),
            group_exprs=[("k", lambda r: r["k"])],
            agg_specs=[("s", "sum", (lambda r: r.get("s")), False, False)],
            partial=with_combiner)
        return MRJob(
            job_id="agg", name="agg",
            map_inputs=[MapInput("nums", [EmitSpec("in", emit)])],
            reducer=CommonReducer([task]),
            outputs=[OutputSpec("agg.out", "agg", ["k", "s"])],
            map_agg=MapAggSpec({"s": ("sum", False, False)})
            if with_combiner else None,
        )

    def test_combiner_reduces_map_output(self, ds):
        c = MapReduceEngine(ds).run_job(self._agg_job(ds, True))
        assert c.pre_combine_records == 5
        assert c.map_output_records == 3  # distinct keys

    def test_combiner_preserves_results(self, ds):
        MapReduceEngine(ds).run_job(self._agg_job(ds, True))
        with_comb = {r["k"]: r["s"] for r in ds.intermediate("agg.out").rows}
        MapReduceEngine(ds).run_job(self._agg_job(ds, False))
        without = {r["k"]: r["s"] for r in ds.intermediate("agg.out").rows}
        assert with_comb == without == {1: 40, 2: 70, 3: 40}


class TestShuffle:
    def test_stable_hash_deterministic(self):
        assert stable_hash((1, "a")) == stable_hash((1, "a"))
        assert stable_hash((1,)) != stable_hash((2,))

    def test_groups_counted(self, ds):
        c = MapReduceEngine(ds).run_job(passthrough_job(ds))
        assert c.reduce_groups == 3
        assert c.reduce_input_records == 5

    def test_sort_job_orders_output(self, ds):
        def emit(record):
            return (record["v"],), {"k": record["k"]}

        task = SPTask("sp", TaskInput.shuffle("in", ["v"]))
        job = MRJob(
            job_id="sorted", name="sort",
            map_inputs=[MapInput("nums", [EmitSpec("in", emit)])],
            reducer=CommonReducer([task]),
            outputs=[OutputSpec("sorted.out", "sp", ["v", "k"])],
            sort_output=True, sort_ascending=[False],
        )
        MapReduceEngine(ds).run_job(job)
        values = [r["v"] for r in ds.intermediate("sorted.out").rows]
        assert values == sorted(values, reverse=True)

    def test_limit_truncates(self, ds):
        job = passthrough_job(ds, limit=2)
        c = MapReduceEngine(ds).run_job(job)
        assert c.output_records["j1.out"] == 2


class TestOutputs:
    def test_output_projected_to_columns(self, ds):
        """Extra row fields are dropped; bytes charge declared columns."""
        def emit(record):
            return (record["k"],), {"v": record["v"], "extra": "xxxx"}

        task = SPTask("sp", TaskInput.shuffle("in", ["k"]))
        job = MRJob(
            job_id="proj", name="p",
            map_inputs=[MapInput("nums", [EmitSpec("in", emit)])],
            reducer=CommonReducer([task]),
            outputs=[OutputSpec("proj.out", "sp", ["k", "v"])],
        )
        MapReduceEngine(ds).run_job(job)
        assert set(ds.intermediate("proj.out").rows[0]) == {"k", "v"}

    def test_missing_output_column_raises(self, ds):
        job = passthrough_job(ds)
        job.outputs = [OutputSpec("bad.out", "sp", ["k", "missing"])]
        from repro.errors import ExecutionError
        with pytest.raises(ExecutionError, match="missing"):
            MapReduceEngine(ds).run_job(job)

    def test_chained_jobs_read_intermediates(self, ds):
        engine = MapReduceEngine(ds)
        job1 = passthrough_job(ds, job_id="c1")

        def emit2(record):
            return (record["k"],), {"v": record["v"] + 1}

        task = SPTask("sp", TaskInput.shuffle("in", ["k"]))
        job2 = MRJob(
            job_id="c2", name="second",
            map_inputs=[MapInput("c1.out", [EmitSpec("in", emit2)])],
            reducer=CommonReducer([task]),
            outputs=[OutputSpec("c2.out", "sp", ["k", "v"])],
        )
        runs = engine.run_jobs([job1, job2])
        assert [r.order for r in runs] == [0, 1]
        assert len(ds.intermediate("c2.out")) == 5


class TestValidation:
    def test_no_inputs_rejected(self, ds):
        job = passthrough_job(ds)
        job.map_inputs = []
        with pytest.raises(TranslationError):
            MapReduceEngine(ds).run_job(job)

    def test_no_outputs_rejected(self, ds):
        job = passthrough_job(ds)
        job.outputs = []
        with pytest.raises(TranslationError):
            MapReduceEngine(ds).run_job(job)

    def test_duplicate_roles_rejected(self, ds):
        def emit(record):
            return (record["k"],), {}

        job = passthrough_job(ds)
        job.map_inputs = [MapInput("nums", [EmitSpec("in", emit),
                                            EmitSpec("in", emit)])]
        with pytest.raises(TranslationError, match="duplicate"):
            MapReduceEngine(ds).run_job(job)

    def test_bad_reducer_count(self, ds):
        job = passthrough_job(ds, num_reducers=0)
        with pytest.raises(TranslationError):
            MapReduceEngine(ds).run_job(job)


class TestScaledCounters:
    def test_scaled_multiplies_volumes(self, ds):
        c = MapReduceEngine(ds).run_job(passthrough_job(ds))
        s = c.scaled(10)
        assert s.map_output_records == c.map_output_records * 10
        assert s.input_bytes["nums"] == c.input_bytes["nums"] * 10
        assert s.num_reducers == c.num_reducers  # not a volume
