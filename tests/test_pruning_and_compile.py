"""Tests for projection pruning and job compilation details."""

import pytest

from repro.catalog import standard_catalog
from repro.core.compile import CompileOptions, JobCompiler
from repro.core.jobgen import generate_job_graph
from repro.core.translator import translate_sql
from repro.mr.engine import run_jobs
from repro.mr.kv import TagPolicy
from repro.plan.nodes import AggNode, JoinNode, ScanNode
from repro.plan.planner import plan_query
from repro.plan.pruning import (
    child_requirements,
    expr_columns,
    needed_raw_columns,
    scan_base_columns,
)
from repro.sqlparser.parser import parse_sql
from repro.workloads.queries import paper_queries


def plan(sql):
    return plan_query(parse_sql(sql), standard_catalog())


class TestExprColumns:
    def test_collects_all_refs(self):
        p = plan("SELECT l_orderkey + l_partkey AS s FROM lineitem")
        expr = p.stages[-1].outputs[0].expr
        assert expr_columns(expr) == {"lineitem.l_orderkey",
                                      "lineitem.l_partkey"}

    def test_none_is_empty(self):
        assert expr_columns(None) == set()


class TestNeededRawColumns:
    def test_backward_through_project(self):
        p = plan("SELECT l_orderkey AS a, l_partkey AS b FROM lineitem")
        needed = needed_raw_columns(p, {"a"})
        assert needed == {"lineitem.l_orderkey"}

    def test_filter_columns_always_needed(self):
        p = plan("SELECT l_orderkey AS a FROM lineitem WHERE l_tax > 0")
        needed = needed_raw_columns(p)
        assert "lineitem.l_tax" in needed
        assert "lineitem.l_orderkey" in needed


class TestChildRequirements:
    def test_join_requirements_split_by_side(self):
        p = plan("SELECT l_quantity, p_name FROM lineitem, part "
                 "WHERE l_partkey = p_partkey")
        left, right = child_requirements(p)
        assert "lineitem.l_quantity" in left
        assert "lineitem.l_partkey" in left  # join key
        assert "part.p_name" in right and "part.p_partkey" in right
        assert not left & right

    def test_agg_requirements_are_group_and_args(self):
        p = plan("SELECT l_orderkey, sum(l_quantity) AS s FROM lineitem "
                 "GROUP BY l_orderkey")
        (req,) = child_requirements(p)
        assert req == {"lineitem.l_orderkey", "lineitem.l_quantity"}

    def test_scan_base_columns(self):
        p = plan("SELECT l_orderkey AS a FROM lineitem WHERE l_tax > 0")
        cols = scan_base_columns(p)
        assert cols == {"l_orderkey", "l_tax"}


class TestCompiledJobs:
    def _compile(self, sql, **opts):
        p = plan(sql)
        graph = generate_job_graph(p)
        compiler = JobCompiler(graph, "tc", CompileOptions(**opts))
        return compiler, compiler.compile()

    def test_q17_merged_job_shape(self):
        _, jobs = self._compile(paper_queries()["q17"])
        merged = jobs[0]
        # lineitem scanned once with two roles, part with one.
        by_dataset = {mi.dataset: mi for mi in merged.map_inputs}
        assert len(by_dataset["lineitem"].specs) == 2
        assert len(by_dataset["part"].specs) == 1
        assert merged.role_universe == 3

    def test_self_join_single_map_input(self):
        _, jobs = self._compile(
            "SELECT a.l_orderkey FROM lineitem AS a, lineitem AS b "
            "WHERE a.l_orderkey = b.l_orderkey AND a.l_tax < b.l_tax")
        job = jobs[0]
        assert [mi.dataset for mi in job.map_inputs] == ["lineitem"]
        assert len(job.map_inputs[0].specs) == 2

    def test_global_agg_single_reducer(self):
        _, jobs = self._compile("SELECT sum(l_quantity) AS s FROM lineitem")
        assert jobs[0].num_reducers == 1
        assert jobs[0].reducer.global_group

    def test_standalone_agg_gets_combiner(self):
        _, jobs = self._compile(paper_queries()["q_agg"])
        assert jobs[0].map_agg is not None

    def test_combiner_disabled_for_count_distinct(self):
        _, jobs = self._compile(
            "SELECT l_orderkey, count(DISTINCT l_suppkey) AS c "
            "FROM lineitem GROUP BY l_orderkey")
        assert jobs[0].map_agg is None

    def test_combiner_option_off(self):
        _, jobs = self._compile(paper_queries()["q_agg"],
                                map_side_agg=False)
        assert jobs[0].map_agg is None

    def test_sort_job_flags(self):
        _, jobs = self._compile(
            "SELECT l_orderkey, l_quantity FROM lineitem "
            "ORDER BY l_quantity DESC LIMIT 7")
        sort_job = jobs[-1]
        assert sort_job.sort_output
        assert sort_job.sort_ascending == [False]
        assert sort_job.limit == 7

    def test_tag_policy_propagates(self):
        _, jobs = self._compile(paper_queries()["q17"],
                                tag_policy=TagPolicy.DIRECT)
        assert all(j.tag_policy is TagPolicy.DIRECT for j in jobs)

    def test_intermediate_columns_pruned(self, datastore, fresh_namespace):
        """Only downstream-needed columns are materialized (the common
        mapper's 'required data' rule applied across jobs)."""
        sql = paper_queries()["q17"]
        tr = translate_sql(sql, mode="hive", catalog=datastore.catalog,
                           namespace=fresh_namespace)
        run_jobs(tr.jobs, datastore)
        join1_out = next(d for j in tr.jobs for d in j.output_datasets
                         if d.endswith("JOIN1"))
        cols = set(datastore.intermediate(join1_out).rows[0])
        # JOIN1 (lineitem x part) only feeds partkey/quantity/extendedprice.
        assert len(cols) == 3

    def test_dataset_name_registered_in_schedule_order(self):
        compiler, jobs = self._compile(paper_queries()["q18"])
        root = compiler.graph.root
        assert compiler.dataset_name(root).endswith(".result")


class TestCanonicalPayload:
    def test_shared_base_payload_smaller_than_qualified(self, datastore,
                                                        fresh_namespace):
        """Canonical table.column payload naming lets overlapping roles
        share bytes in the merged Q21 job."""
        sql = paper_queries()["q21_subtree"]
        sizes = {}
        for canonical in (True, False):
            p = plan_query(parse_sql(sql), datastore.catalog)
            graph = generate_job_graph(p)
            compiler = JobCompiler(
                graph, f"{fresh_namespace}.c{canonical}",
                CompileOptions(canonical_payload=canonical))
            jobs = compiler.compile()
            runs = run_jobs(jobs, datastore)
            sizes[canonical] = runs[0].counters.map_output_bytes
        assert sizes[True] < sizes[False]
