"""Tests for critical-path (DAG) job scheduling."""

import pytest

from repro.core.translator import translate_sql
from repro.errors import ConfigError
from repro.hadoop import (
    HadoopCostModel,
    dag_query_timing,
    job_dependencies,
    small_cluster,
)
from repro.mr.engine import run_jobs
from repro.workloads import data_scale_for
from repro.workloads.queries import paper_queries

TPCH = ["lineitem", "orders", "part", "customer", "supplier", "nation"]


@pytest.fixture(scope="module")
def model(datastore):
    scale = data_scale_for(datastore, TPCH, 10.0)
    return HadoopCostModel(small_cluster(data_scale=scale))


def run(datastore, query, mode, namespace):
    tr = translate_sql(paper_queries()[query], mode=mode,
                       catalog=datastore.catalog, namespace=namespace)
    runs = run_jobs(tr.jobs, datastore)
    return tr, runs


class TestDependencies:
    def test_chain_dependencies(self, datastore, fresh_namespace):
        tr, runs = run(datastore, "q_csa", "hive", fresh_namespace)
        deps = job_dependencies(
            runs, {j.job_id: j.input_datasets for j in tr.jobs},
            {j.job_id: j.output_datasets for j in tr.jobs})
        # The first job reads base tables only.
        assert deps[runs[0].job_id] == []
        # The final global average depends on its predecessor.
        assert deps[runs[-1].job_id] == [runs[-2].job_id]

    def test_independent_siblings(self, datastore, fresh_namespace):
        """Hive's Q17 AGG1 and JOIN1 both read base tables only."""
        tr, runs = run(datastore, "q17", "hive", fresh_namespace)
        deps = job_dependencies(
            runs, {j.job_id: j.input_datasets for j in tr.jobs},
            {j.job_id: j.output_datasets for j in tr.jobs})
        independents = [j for j, d in deps.items() if not d]
        assert len(independents) == 2  # AGG1 and JOIN1


class TestDagTiming:
    def test_never_slower_than_sequential(self, datastore, model,
                                          fresh_namespace):
        for mode in ("hive", "ysmart"):
            tr, runs = run(datastore, "q17", mode,
                           f"{fresh_namespace}.{mode}")
            seq = model.query_timing(runs).total_s
            dag = dag_query_timing(model, runs, tr.jobs)
            assert dag.total_s <= seq + 1e-6
            assert dag.sequential_s >= dag.total_s

    def test_hive_gains_more_overlap_than_ysmart(self, datastore, model,
                                                 fresh_namespace):
        """More jobs means more overlap opportunity — but not enough to
        catch YSmart (the redundant work still runs)."""
        results = {}
        for mode in ("hive", "ysmart"):
            tr, runs = run(datastore, "q17", mode,
                           f"{fresh_namespace}.{mode}")
            results[mode] = dag_query_timing(model, runs, tr.jobs)
        assert results["hive"].overlap_speedup > \
            results["ysmart"].overlap_speedup
        assert results["ysmart"].total_s < results["hive"].total_s

    def test_single_job_query_no_overlap(self, datastore, model,
                                         fresh_namespace):
        tr, runs = run(datastore, "q21_subtree", "ysmart", fresh_namespace)
        dag = dag_query_timing(model, runs, tr.jobs)
        assert dag.overlap_speedup == pytest.approx(1.0)

    def test_start_times_respect_dependencies(self, datastore, model,
                                              fresh_namespace):
        tr, runs = run(datastore, "q18", "hive", fresh_namespace)
        dag = dag_query_timing(model, runs, tr.jobs)
        by_id = {s.timing.job_id: s for s in dag.jobs}
        for job in dag.jobs:
            for dep in job.depends_on:
                assert job.start_s >= by_id[dep].finish_s - 1e-9

    def test_out_of_order_runs_rejected(self, datastore, model,
                                        fresh_namespace):
        tr, runs = run(datastore, "q_csa", "hive", fresh_namespace)
        with pytest.raises(ConfigError, match="execution order"):
            dag_query_timing(model, list(reversed(runs)), tr.jobs)
