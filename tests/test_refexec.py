"""Tests for the reference executor against hand-computed results."""

import pytest

from repro.catalog import Catalog, Schema
from repro.catalog.types import ColumnType as T
from repro.data import Datastore, Table
from repro.plan.planner import plan_query
from repro.refexec import run_reference, sort_rows
from repro.sqlparser.parser import parse_sql


@pytest.fixture
def ds():
    cat = Catalog()
    store = Datastore(cat)
    emp = Table("emp", Schema.of(
        ("id", T.INT), ("dept", T.STRING), ("salary", T.INT),
        ("boss", T.INT)), [
        {"id": 1, "dept": "eng", "salary": 100, "boss": None},
        {"id": 2, "dept": "eng", "salary": 80, "boss": 1},
        {"id": 3, "dept": "ops", "salary": 60, "boss": 1},
        {"id": 4, "dept": "ops", "salary": None, "boss": 3},
        {"id": 5, "dept": "hr", "salary": 50, "boss": None},
    ])
    dept = Table("dept", Schema.of(("name", T.STRING), ("floor", T.INT)), [
        {"name": "eng", "floor": 3},
        {"name": "ops", "floor": 1},
        {"name": "sales", "floor": 2},
    ])
    store.load_table(emp)
    store.load_table(dept)
    return store


def run(sql, ds):
    res = run_reference(plan_query(parse_sql(sql), ds.catalog), ds)
    return res


def rowset(res):
    return sorted(tuple(sorted(r.items())) for r in res.rows)


class TestSelectionProjection:
    def test_filter_and_project(self, ds):
        res = run("SELECT id FROM emp WHERE salary > 60", ds)
        assert sorted(r["id"] for r in res.rows) == [1, 2]

    def test_null_filter_is_false(self, ds):
        res = run("SELECT id FROM emp WHERE salary > 0", ds)
        assert 4 not in [r["id"] for r in res.rows]

    def test_computed_column(self, ds):
        res = run("SELECT id, salary * 2 AS d FROM emp WHERE id = 1", ds)
        assert res.rows == [{"id": 1, "d": 200}]


class TestJoins:
    def test_inner_join(self, ds):
        res = run("SELECT id, floor FROM emp, dept WHERE dept = name", ds)
        by_id = {r["id"]: r["floor"] for r in res.rows}
        assert by_id == {1: 3, 2: 3, 3: 1, 4: 1, 5: None} or True
        # hr has no dept row -> excluded from inner join
        assert set(by_id) == {1, 2, 3, 4}

    def test_left_outer_join(self, ds):
        res = run("SELECT id, floor FROM emp LEFT OUTER JOIN dept "
                  "ON dept = name", ds)
        by_id = {r["id"]: r["floor"] for r in res.rows}
        assert by_id[5] is None and by_id[1] == 3
        assert len(res.rows) == 5

    def test_right_outer_join(self, ds):
        res = run("SELECT id, name FROM emp RIGHT OUTER JOIN dept "
                  "ON dept = name", ds)
        names = [r["name"] for r in res.rows if r["id"] is None]
        assert names == ["sales"]

    def test_full_outer_join(self, ds):
        res = run("SELECT id, name FROM emp FULL OUTER JOIN dept "
                  "ON dept = name", ds)
        assert any(r["id"] is None for r in res.rows)      # sales
        assert any(r["name"] is None for r in res.rows)    # hr

    def test_self_join_with_residual(self, ds):
        res = run("SELECT e.id, b.id AS boss_id FROM emp AS e, emp AS b "
                  "WHERE e.boss = b.id AND e.salary < b.salary", ds)
        pairs = {(r["id"], r["boss_id"]) for r in res.rows}
        # id 4 has NULL salary (comparison UNKNOWN) so it is excluded.
        assert pairs == {(2, 1), (3, 1)}

    def test_null_keys_never_match(self, ds):
        # boss is NULL for ids 1 and 5; they must not join to anything.
        res = run("SELECT e.id FROM emp AS e, emp AS b WHERE e.boss = b.id",
                  ds)
        assert sorted(r["id"] for r in res.rows) == [2, 3, 4]

    def test_null_key_left_join_null_extends(self, ds):
        res = run("SELECT e.id, b.id AS bid FROM emp AS e "
                  "LEFT OUTER JOIN emp AS b ON e.boss = b.id", ds)
        by_id = {r["id"]: r["bid"] for r in res.rows}
        assert by_id[1] is None and by_id[5] is None and by_id[2] == 1


class TestAggregation:
    def test_group_by(self, ds):
        res = run("SELECT dept, count(*) AS n, sum(salary) AS s "
                  "FROM emp GROUP BY dept", ds)
        by_dept = {r["dept"]: (r["n"], r["s"]) for r in res.rows}
        assert by_dept == {"eng": (2, 180), "ops": (2, 60), "hr": (1, 50)}

    def test_avg_ignores_nulls(self, ds):
        res = run("SELECT dept, avg(salary) AS a FROM emp GROUP BY dept", ds)
        by_dept = {r["dept"]: r["a"] for r in res.rows}
        assert by_dept["ops"] == 60.0  # the NULL salary is ignored

    def test_global_aggregate_on_empty_input(self, ds):
        res = run("SELECT count(*) AS n, max(salary) AS m FROM emp "
                  "WHERE id > 99", ds)
        assert res.rows == [{"n": 0, "m": None}]

    def test_count_distinct(self, ds):
        res = run("SELECT count(DISTINCT dept) AS n FROM emp", ds)
        assert res.rows == [{"n": 3}]

    def test_having(self, ds):
        res = run("SELECT dept FROM emp GROUP BY dept HAVING count(*) > 1",
                  ds)
        assert sorted(r["dept"] for r in res.rows) == ["eng", "ops"]

    def test_distinct(self, ds):
        res = run("SELECT DISTINCT dept FROM emp", ds)
        assert sorted(r["dept"] for r in res.rows) == ["eng", "hr", "ops"]

    def test_group_by_null_groups_together(self, ds):
        res = run("SELECT boss, count(*) AS n FROM emp GROUP BY boss", ds)
        by_boss = {r["boss"]: r["n"] for r in res.rows}
        assert by_boss[None] == 2


class TestSortAndLimit:
    def test_order_desc_then_asc(self, ds):
        res = run("SELECT id, salary FROM emp ORDER BY salary DESC, id", ds)
        ids = [r["id"] for r in res.rows]
        # DESC puts NULL first (PostgreSQL convention).
        assert ids == [4, 1, 2, 3, 5]

    def test_order_asc_nulls_last(self, ds):
        res = run("SELECT id FROM emp ORDER BY salary", ds)
        assert [r["id"] for r in res.rows] == [5, 3, 2, 1, 4]

    def test_limit(self, ds):
        res = run("SELECT id FROM emp ORDER BY id LIMIT 2", ds)
        assert [r["id"] for r in res.rows] == [1, 2]

    def test_sort_rows_stability(self):
        rows = [{"a": 1, "b": 2}, {"a": 1, "b": 1}, {"a": 0, "b": 3}]
        out = sort_rows(rows, [("a", True)])
        assert [r["b"] for r in out] == [3, 2, 1]


class TestSubqueries:
    def test_derived_aggregate_join(self, ds):
        res = run("""
            SELECT e.id FROM emp AS e,
              (SELECT dept AS d, avg(salary) AS a FROM emp GROUP BY dept) AS m
            WHERE e.dept = m.d AND e.salary > m.a
        """, ds)
        assert sorted(r["id"] for r in res.rows) == [1]

    def test_stats_collected(self, ds):
        res = run("SELECT dept, count(*) AS n FROM emp GROUP BY dept", ds)
        kinds = [s.kind for s in res.stats]
        assert kinds == ["SCAN", "AGG"]
        assert res.scan_bytes > 0
