"""Tests for the extra DSS queries (TPC-H Q3 / Q10) and edge cases:
empty inputs, single rows, and translation determinism."""

import pytest

from repro.catalog import standard_catalog
from repro.core.translator import TRANSLATOR_MODES, translate_sql
from repro.data import Datastore, Table, rows_equal_unordered
from repro.mr.engine import MapReduceEngine, run_jobs
from repro.plan.nodes import AggNode, JoinNode
from repro.plan.planner import plan_query
from repro.refexec import run_reference
from repro.sqlparser.parser import parse_sql
from repro.workloads import extra_queries, paper_queries


class TestExtraQueries:
    @pytest.mark.parametrize("name", ["q3", "q10"])
    @pytest.mark.parametrize("mode", ["ysmart", "hive", "pig"])
    def test_matches_reference(self, name, mode, datastore, fresh_namespace):
        sql = extra_queries()[name]
        ref = run_reference(plan_query(parse_sql(sql), datastore.catalog),
                            datastore)
        tr = translate_sql(sql, mode=mode, catalog=datastore.catalog,
                           namespace=f"{fresh_namespace}.{mode}")
        run_jobs(tr.jobs, datastore)
        rows = datastore.intermediate(tr.final_dataset).rows
        assert rows_equal_unordered(rows, ref.rows, tr.output_columns, 1e-6)

    def test_q3_merges_final_aggregation(self, datastore):
        """Q3's aggregation shares l_orderkey with the lineitem join —
        Rule 2 folds it into that join's job."""
        tr = translate_sql(extra_queries()["q3"], mode="ysmart",
                           catalog=datastore.catalog, namespace="xq3")
        hive = translate_sql(extra_queries()["q3"], mode="hive",
                             catalog=datastore.catalog, namespace="xq3h")
        assert tr.job_count < hive.job_count
        assert any("JOIN" in j.name and "AGG" in j.name for j in tr.jobs)

    def test_q3_limit_and_order(self, datastore, fresh_namespace):
        sql = extra_queries()["q3"]
        ref = run_reference(plan_query(parse_sql(sql), datastore.catalog),
                            datastore)
        tr = translate_sql(sql, mode="ysmart", catalog=datastore.catalog,
                           namespace=fresh_namespace)
        run_jobs(tr.jobs, datastore)
        rows = datastore.intermediate(tr.final_dataset).rows
        assert len(rows) == len(ref.rows) <= 10
        assert [r["revenue"] for r in rows] == pytest.approx(
            [r["revenue"] for r in ref.rows])

    def test_q10_wide_group_by_has_valid_pk(self, datastore):
        from repro.core.correlation import CorrelationAnalysis
        plan = plan_query(parse_sql(extra_queries()["q10"]),
                          datastore.catalog)
        ca = CorrelationAnalysis(plan)
        agg = next(n for n in plan.post_order() if isinstance(n, AggNode))
        pk = ca.pk(agg)
        assert pk is not None and len(pk) >= 1


class TestEmptyAndTinyInputs:
    @pytest.fixture
    def empty_ds(self):
        ds = Datastore(standard_catalog())
        for name in ("lineitem", "orders", "customer", "part", "supplier",
                     "nation", "clicks"):
            ds.load_table(Table(name, ds.catalog.schema(name), []))
        return ds

    @pytest.mark.parametrize("query", ["q17", "q21_subtree", "q_csa",
                                       "q_agg", "q18"])
    @pytest.mark.parametrize("mode", ["ysmart", "hive"])
    def test_empty_tables(self, query, mode, empty_ds):
        """Every translation handles completely empty inputs, matching
        the reference (grand aggregates still yield their NULL row)."""
        sql = paper_queries()[query]
        ref = run_reference(plan_query(parse_sql(sql), empty_ds.catalog),
                            empty_ds)
        tr = translate_sql(sql, mode=mode, catalog=empty_ds.catalog,
                           namespace=f"empty.{query}.{mode}")
        run_jobs(tr.jobs, empty_ds)
        rows = empty_ds.intermediate(tr.final_dataset).rows
        assert rows_equal_unordered(rows, ref.rows, tr.output_columns, 1e-6)

    def test_single_row_tables(self):
        ds = Datastore(standard_catalog())
        li = {c.name: None for c in ds.catalog.schema("lineitem").columns}
        li.update({"l_orderkey": 1, "l_partkey": 1, "l_suppkey": 1,
                   "l_linenumber": 1, "l_quantity": 5.0,
                   "l_extendedprice": 100.0, "l_discount": 0.0,
                   "l_tax": 0.0, "l_returnflag": "N", "l_linestatus": "O",
                   "l_shipdate": "1995-01-01", "l_commitdate": "1995-01-01",
                   "l_receiptdate": "1995-01-02",
                   "l_shipinstruct": "NONE", "l_shipmode": "MAIL",
                   "l_comment": "x"})
        ds.load_table(Table("lineitem", ds.catalog.schema("lineitem"), [li]))
        part = {c.name: None for c in ds.catalog.schema("part").columns}
        part.update({"p_partkey": 1, "p_name": "p", "p_size": 1,
                     "p_retailprice": 1.0})
        ds.load_table(Table("part", ds.catalog.schema("part"), [part]))

        sql = paper_queries()["q17"]
        ref = run_reference(plan_query(parse_sql(sql), ds.catalog), ds)
        tr = translate_sql(sql, mode="ysmart", catalog=ds.catalog,
                           namespace="tiny")
        run_jobs(tr.jobs, ds)
        rows = ds.intermediate(tr.final_dataset).rows
        assert rows_equal_unordered(rows, ref.rows, tr.output_columns, 1e-6)


class TestDeterminism:
    @pytest.mark.parametrize("query", ["q17", "q_csa"])
    def test_counters_identical_across_runs(self, query, datastore):
        sql = paper_queries()[query]
        snapshots = []
        for attempt in range(2):
            tr = translate_sql(sql, mode="ysmart", catalog=datastore.catalog,
                               namespace=f"det.{query}.{attempt}")
            runs = run_jobs(tr.jobs, datastore)
            snapshots.append([
                (r.counters.map_output_records, r.counters.map_output_bytes,
                 r.counters.reduce_groups, r.counters.reduce_dispatch_ops,
                 r.counters.reduce_compute_ops,
                 r.counters.total_output_bytes)
                for r in runs])
        assert snapshots[0] == snapshots[1]
