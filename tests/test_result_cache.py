"""Tests for inter-query result reuse: plan fingerprints, the
materialized result cache, and the runtime's replay path.

The load-bearing invariants:

* fingerprints are stable across namespaces and instances, and differ
  whenever the plan (or its upstream chain, or the reducer count)
  differs;
* a warm run is byte-identical to a cold run — rows *and* every
  ``comparable()`` counter field, across every paper query;
* invalidation is exact: mutating a base table invalidates precisely
  the cached results that read it, and nothing else;
* reuse crosses query boundaries: a sub-plan of a *different* query
  whose merged common job fingerprint-matches is served from cache.
"""

import itertools

import pytest

from repro.core.translator import translate_sql
from repro.data import Datastore, Table
from repro.catalog import Schema, standard_catalog
from repro.catalog.types import ColumnType as T
from repro.mr.counters import JobCounters
from repro.mr.runtime import Runtime, make_executor
from repro.reuse import (
    CachedOutput,
    CacheEntry,
    ResultCache,
    canonicalize_signature,
    signature_digest,
)
from repro.reuse.fingerprint import job_cache_key
from repro.workloads.queries import paper_queries
from repro.workloads.runner import run_query
from repro.workloads.session import WorkloadSession

_ns = itertools.count(1)

AGG_SQL = ("SELECT l_orderkey, sum(l_quantity) AS qty FROM lineitem "
           "GROUP BY l_orderkey")
SORTED_AGG_SQL = AGG_SQL + " ORDER BY qty DESC LIMIT 5"
ORDERS_SQL = ("SELECT o_orderstatus, count(*) AS n FROM orders "
              "GROUP BY o_orderstatus")


def signatures(sql, datastore, **kwargs):
    tr = translate_sql(sql, catalog=datastore.catalog,
                       namespace=f"fp{next(_ns)}", **kwargs)
    return [job.plan_signature for job in tr.jobs]


def tiny_datastore():
    """A private mutable datastore (the shared fixture must stay clean).

    Narrow schemas keep the rows small; the queries here only touch
    these columns.
    """
    from repro.catalog import Catalog
    ds = Datastore(Catalog())
    ds.load_table(Table("lineitem", Schema.of(
        ("l_orderkey", T.INT), ("l_quantity", T.FLOAT)), [
        {"l_orderkey": k % 4, "l_quantity": float(k)}
        for k in range(12)]))
    ds.load_table(Table("orders", Schema.of(
        ("o_orderkey", T.INT), ("o_orderstatus", T.STRING)), [
        {"o_orderkey": k, "o_orderstatus": "OF"[k % 2]}
        for k in range(6)]))
    return ds


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------

class TestFingerprints:
    def test_stable_across_namespaces(self, datastore):
        for sql in sorted(paper_queries().values()):
            assert signatures(sql, datastore) == signatures(sql, datastore)

    def test_different_queries_differ(self, datastore):
        sigs = [signatures(sql, datastore)[0]
                for sql in sorted(paper_queries().values())]
        assert len(set(sigs)) == len(sigs)

    def test_num_reducers_changes_signature(self, datastore):
        assert (signatures(AGG_SQL, datastore, num_reducers=4)
                != signatures(AGG_SQL, datastore, num_reducers=8))

    def test_upstream_chain_is_merkle_hashed(self, datastore):
        # The sort job's signature embeds the digest of the agg job it
        # reads, so changing the upstream filter changes BOTH signatures.
        base = signatures(SORTED_AGG_SQL, datastore)
        filtered = signatures(
            "SELECT l_orderkey, sum(l_quantity) AS qty FROM lineitem "
            "WHERE l_quantity > 10 GROUP BY l_orderkey "
            "ORDER BY qty DESC LIMIT 5", datastore)
        assert len(base) == len(filtered) == 2
        assert base[0] != filtered[0]
        assert base[1] != filtered[1]

    def test_shared_subplan_signatures_match(self, datastore):
        # The agg stage of the sorted query IS the standalone agg query.
        assert signatures(SORTED_AGG_SQL, datastore)[0] == \
            signatures(AGG_SQL, datastore)[0]

    def test_canonicalize_renumbers_by_first_appearance(self):
        # One shared first-appearance counter across all token kinds.
        assert (canonicalize_signature("@7 __agg3 @2 @7 __g5 __agg3")
                == "@B0 __AGG1 @B2 @B0 __G3 __AGG1")

    def test_canonicalize_is_idempotent(self):
        once = canonicalize_signature("@9 __g2 @1")
        assert canonicalize_signature(once) == once

    def test_cache_key_folds_inputs_and_splits(self):
        sig = "agg(group=[x])"
        key = job_cache_key(sig, ["data:t@1.0"], None)
        assert key is not None
        assert key != job_cache_key(sig, ["data:t@2.0"], None)
        assert key != job_cache_key(sig, ["data:t@1.0"], 4)
        assert job_cache_key(None, ["data:t@1.0"], None) is None

    def test_digest_is_short_hex(self):
        digest = signature_digest("anything")
        assert len(digest) == 24
        int(digest, 16)


# ---------------------------------------------------------------------------
# The cache itself
# ---------------------------------------------------------------------------

def entry(key, size):
    return CacheEntry(key=key, outputs=[CachedOutput(columns=["a"],
                                                     rows=[{"a": 1}])],
                      counters=[{}], size_bytes=size)


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(budget_bytes=1000)
        assert cache.lookup("k") is None
        cache.admit(entry("k", 10))
        assert cache.lookup("k").key == "k"
        assert (cache.stats.hits, cache.stats.misses) == (1, 1)

    def test_lru_eviction_order(self):
        cache = ResultCache(budget_bytes=100)
        cache.admit(entry("a", 40))
        cache.admit(entry("b", 40))
        cache.lookup("a")            # refresh a; b is now LRU
        cache.admit(entry("c", 40))  # over budget -> evict b
        assert cache.keys() == ["a", "c"]
        assert cache.stats.evictions == 1

    def test_oversized_entry_rejected(self):
        cache = ResultCache(budget_bytes=100)
        cache.admit(entry("big", 101))
        assert cache.keys() == []
        assert cache.stats.rejected == 1
        assert cache.stats.admissions == 0

    def test_clear(self):
        cache = ResultCache(budget_bytes=100)
        cache.admit(entry("a", 10))
        cache.clear()
        assert cache.total_bytes == 0
        assert cache.lookup("a") is None

    def test_readmit_replaces_in_place(self):
        cache = ResultCache(budget_bytes=100)
        cache.admit(entry("a", 10))
        cache.admit(entry("a", 20))
        assert cache.total_bytes == 20


# ---------------------------------------------------------------------------
# Warm == cold, byte for byte
# ---------------------------------------------------------------------------

class TestWarmColdIdentity:
    @pytest.mark.parametrize("name", sorted(paper_queries()))
    def test_paper_query_warm_identical(self, name, datastore):
        sql = paper_queries()[name]
        # Same prefix for both arms: comparable() keeps job ids and
        # dataset names, so the streams must line up name for name.
        prefix = f"wc{next(_ns)}"
        cold = WorkloadSession(datastore, cache_mb=0,
                               namespace_prefix=prefix)
        warm = WorkloadSession(datastore, cache_mb=16,
                               namespace_prefix=prefix)
        for session in (cold, warm):
            session.run(sql)
            session.run(sql)
        for cold_run, warm_run in zip(cold.runs, warm.runs):
            assert warm_run.result.rows == cold_run.result.rows
            assert ([r.counters.comparable()
                     for r in warm_run.result.runs]
                    == [r.counters.comparable()
                        for r in cold_run.result.runs])
        assert warm.runs[1].fully_cached
        assert warm.cache_stats.hits == len(warm.runs[1].result.runs)

    def test_cached_run_marks_jobs(self, datastore):
        cache = ResultCache()
        first = run_query(AGG_SQL, datastore, cache=cache,
                          namespace=f"mk{next(_ns)}")
        second = run_query(AGG_SQL, datastore, cache=cache,
                           namespace=f"mk{next(_ns)}")
        assert [r.cached for r in first.runs] == [False]
        assert [r.cached for r in second.runs] == [True]
        assert second.runs[0].counters.cache_hits == 1
        assert second.runs[0].counters.cached_bytes_saved > 0

    def test_parallel_executor_shares_cache(self, datastore):
        cache = ResultCache()
        ns = f"px{next(_ns)}"
        cold = run_query(paper_queries()["q17"], datastore,
                         namespace=f"{ns}.a", parallelism=4, cache=cache)
        warm = run_query(paper_queries()["q17"], datastore,
                         namespace=f"{ns}.b", parallelism=4, cache=cache)
        assert warm.rows == cold.rows
        assert all(r.cached for r in warm.runs)


# ---------------------------------------------------------------------------
# Cross-query sub-plan reuse
# ---------------------------------------------------------------------------

class TestSubPlanReuse:
    def test_agg_job_reused_by_different_query(self, datastore):
        cache = ResultCache()
        sorted_run = run_query(SORTED_AGG_SQL, datastore, cache=cache,
                               namespace=f"sp{next(_ns)}")
        assert cache.stats.misses == 2
        ns = f"sp{next(_ns)}"
        agg_run = run_query(AGG_SQL, datastore, cache=cache, namespace=ns)
        # The standalone agg IS the sorted query's first job: a hit.
        assert cache.stats.hits == 1
        assert agg_run.runs[0].cached
        # ... and identical to running it cold under the same namespace
        # (comparable() keeps job ids and dataset names).
        cold = run_query(AGG_SQL, datastore, namespace=ns)
        assert agg_run.rows == cold.rows
        assert (agg_run.runs[0].counters.comparable()
                == cold.runs[0].counters.comparable())
        del sorted_run


# ---------------------------------------------------------------------------
# Staleness: exact invalidation
# ---------------------------------------------------------------------------

class TestInvalidation:
    def test_mutation_invalidates_exactly_its_readers(self):
        ds = tiny_datastore()
        cache = ResultCache()
        for ns in ("inv1", "inv2"):
            run_query(AGG_SQL, ds, cache=cache, namespace=f"{ns}.l")
            run_query(ORDERS_SQL, ds, cache=cache, namespace=f"{ns}.o")
        assert cache.stats.hits == 2  # second round fully cached
        before = run_query(AGG_SQL, ds, namespace="inv.before").rows

        ds.table("lineitem").append({"l_orderkey": 1, "l_quantity": 99.0})

        lineitem_run = run_query(AGG_SQL, ds, cache=cache,
                                 namespace="inv3.l")
        orders_run = run_query(ORDERS_SQL, ds, cache=cache,
                               namespace="inv3.o")
        # lineitem reader recomputed; orders reader still served.
        assert not lineitem_run.runs[0].cached
        assert orders_run.runs[0].cached
        # The recomputation saw the new row.
        assert lineitem_run.rows != before
        cold = run_query(AGG_SQL, ds, namespace="inv.after")
        assert lineitem_run.rows == cold.rows

    def test_version_bumps_on_mutation_and_reload(self):
        ds = tiny_datastore()
        v0 = ds.version("lineitem")
        ds.table("lineitem").append({"l_orderkey": 0, "l_quantity": 1.0})
        v1 = ds.version("lineitem")
        assert v1 != v0
        ds.load_table(Table("lineitem", ds.catalog.schema("lineitem"), []))
        assert ds.version("lineitem") not in (v0, v1)


# ---------------------------------------------------------------------------
# Counters and cost-model crediting
# ---------------------------------------------------------------------------

class TestCounters:
    def test_cache_fields_excluded_from_comparable(self):
        counters = JobCounters(job_id="j", name="n")
        counters.cache_hits = 5
        counters.cache_misses = 2
        counters.cached_bytes_saved = 1 << 20
        comparable = counters.comparable()
        for field in ("cache_hits", "cache_misses", "cached_bytes_saved",
                      "phase_wall_s"):
            assert field not in comparable

    def test_cost_model_credits_cached_jobs(self, datastore):
        from repro.hadoop import small_cluster
        cache = ResultCache()
        cluster = small_cluster(data_scale=100.0)
        cold = run_query(AGG_SQL, datastore, cluster=cluster, cache=cache,
                         namespace=f"cm{next(_ns)}")
        warm = run_query(AGG_SQL, datastore, cluster=cluster, cache=cache,
                         namespace=f"cm{next(_ns)}")
        assert cold.timing.total_s > 0
        assert warm.timing.total_s < cold.timing.total_s
        for job_timing in warm.timing.jobs:
            assert job_timing.total_s == 0

    def test_uncacheable_jobs_run_cold(self, datastore):
        # Hand-built jobs carry no plan signature: the runtime must
        # bypass the cache entirely (no misses charged, no admission).
        tr = translate_sql(AGG_SQL, catalog=datastore.catalog,
                           namespace=f"uc{next(_ns)}")
        for job in tr.jobs:
            job.plan_signature = None
        cache = ResultCache()
        runtime = Runtime(datastore, executor=make_executor(1),
                          result_cache=cache)
        runs = runtime.run_jobs(tr.jobs, dependencies=tr.dependencies())
        assert all(not r.cached for r in runs)
        assert cache.stats.misses == 0
        assert cache.keys() == []


# ---------------------------------------------------------------------------
# Budget pressure end to end
# ---------------------------------------------------------------------------

class TestBudgetPressure:
    def test_tiny_budget_degrades_to_cold_but_stays_correct(self, datastore):
        sql = paper_queries()["q17"]
        cold = run_query(sql, datastore, namespace=f"bp{next(_ns)}")
        tight = WorkloadSession(datastore, cache_mb=1e-6,  # ~1 byte
                                namespace_prefix=f"bp{next(_ns)}")
        for _ in range(2):
            result = tight.run(sql)
            assert result.rows == cold.rows
        assert tight.cache_stats.hits == 0
        assert tight.cache_stats.rejected > 0


# ---------------------------------------------------------------------------
# Stats/result-cache coupling: one versioned invalidation step
# ---------------------------------------------------------------------------

class TestStatsCacheCoupling:
    """The sketch catalog and the result cache key on the same
    ``Datastore.version`` stamps: a warm (fully cached) run collects
    zero new sketches, and one table mutation invalidates the cached
    results AND the sketches in the same versioned step."""

    def _ctx(self):
        from repro.stats import StatsContext, StatsPolicy
        return StatsContext(policy=StatsPolicy(min_rows=1))

    def test_warm_hit_collects_no_new_stats(self):
        ds = tiny_datastore()
        cache = ResultCache()
        ctx = self._ctx()
        run_query(AGG_SQL, ds, cache=cache, namespace="sc1.l", stats=ctx)
        cold_collections = ctx.catalog.collections
        assert cold_collections > 0  # the cold run sketched something

        warm = run_query(AGG_SQL, ds, cache=cache, namespace="sc2.l",
                         stats=ctx)
        assert warm.runs[0].cached  # served from the result cache
        assert ctx.catalog.collections == cold_collections
        assert ctx.catalog.hits > 0  # estimators reused cached sketches

    def test_mutation_invalidates_results_and_sketches_together(self):
        ds = tiny_datastore()
        cache = ResultCache()
        ctx = self._ctx()
        run_query(AGG_SQL, ds, cache=cache, namespace="sm1.l", stats=ctx)
        cold_collections = ctx.catalog.collections
        distinct_before = ctx.catalog.column_stats(
            ds, "lineitem", "l_orderkey").distinct

        ds.table("lineitem").append({"l_orderkey": 99,
                                     "l_quantity": 1.0})

        fresh = run_query(AGG_SQL, ds, cache=cache, namespace="sm2.l",
                          stats=ctx)
        # Result cache: recomputed, not served stale.
        assert not fresh.runs[0].cached
        assert any(r["l_orderkey"] == 99 for r in fresh.rows)
        # Sketch catalog: dropped and re-collected at the new version.
        assert ctx.catalog.invalidations >= 1
        assert ctx.catalog.collections > cold_collections
        assert ctx.catalog.column_stats(
            ds, "lineitem", "l_orderkey").distinct == distinct_before + 1

    def test_decisions_token_splits_cache_keys(self):
        sig = "agg(group=[x])"
        refs = ["data:t@1.0"]
        plain = job_cache_key(sig, refs, None)
        assert plain == job_cache_key(sig, refs, None, decisions=None)
        assert plain != job_cache_key(sig, refs, None, decisions="estd=4")
        assert job_cache_key(sig, refs, None, decisions="estd=4") != \
            job_cache_key(sig, refs, None, decisions="skew=2")

    def test_adaptive_and_static_runs_never_alias_one_entry(self):
        # Same query, same cache: the static arm and an arm whose jobs
        # carry stats decisions must miss each other's entries yet each
        # stay self-consistent.
        ds = tiny_datastore()
        cache = ResultCache()
        ctx = self._ctx()
        adaptive = run_query(AGG_SQL, ds, cache=cache,
                             namespace="al1.l", stats=ctx)
        static = run_query(AGG_SQL, ds, cache=cache,
                           namespace="al2.l", stats="off")
        assert not static.runs[0].cached  # no cross-arm aliasing
        assert static.rows == adaptive.rows
        warm_static = run_query(AGG_SQL, ds, cache=cache,
                                namespace="al3.l", stats="off")
        assert warm_static.runs[0].cached


# ---------------------------------------------------------------------------
# Codegen/result-cache coupling: the run-mode marker in the job key
# ---------------------------------------------------------------------------

class TestCodegenCacheCoupling:
    """The codegen toggle folds into result-cache job keys exactly like
    stats decisions: a ``run=codegen`` marker rides the ``decisions=``
    token, so compiled and interpreted runs never alias one entry —
    while interpreted keys stay byte-identical to the pre-codegen
    format."""

    def test_codegen_and_interpreted_runs_never_alias_one_entry(self):
        ds = tiny_datastore()
        cache = ResultCache()
        compiled = run_query(AGG_SQL, ds, cache=cache,
                             namespace="cg1.l", codegen=True)
        interp = run_query(AGG_SQL, ds, cache=cache,
                           namespace="cg2.l", codegen=False)
        assert not interp.runs[0].cached  # no cross-arm aliasing
        assert interp.rows == compiled.rows
        # ... yet each arm warms its own entry:
        warm_on = run_query(AGG_SQL, ds, cache=cache,
                            namespace="cg3.l", codegen=True)
        warm_off = run_query(AGG_SQL, ds, cache=cache,
                             namespace="cg4.l", codegen=False)
        assert warm_on.runs[0].cached
        assert warm_off.runs[0].cached
        assert warm_on.rows == warm_off.rows == compiled.rows

    def test_marker_composes_with_stats_decisions(self):
        from repro.mr.runtime import _ReuseTracker
        ds = tiny_datastore()
        tr = translate_sql(AGG_SQL, catalog=ds.catalog, namespace="cgk.l")
        job = tr.jobs[0]
        off = _ReuseTracker(ResultCache(), ds, None, codegen=False)
        on = _ReuseTracker(ResultCache(), ds, None, codegen=True)
        # Interpreted runs key exactly as before codegen existed:
        assert off._decisions_token(job) == job.stats_decisions
        assert on._decisions_token(job) == ";".join(
            filter(None, [job.stats_decisions, "run=codegen"]))
        assert job_cache_key(job.plan_signature, ["data:t@1.0"], None,
                             decisions=off._decisions_token(job)) != \
            job_cache_key(job.plan_signature, ["data:t@1.0"], None,
                          decisions=on._decisions_token(job))
