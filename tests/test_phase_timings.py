"""Phase-timing observability: measured wall-clock per execution phase.

The record-path overhaul added real (not simulated) per-phase timings to
:class:`JobCounters` so the benchmark and ``repro run --timings`` can
show where time goes.  Timings are measurement, not semantics: they are
excluded from counter equality and golden snapshots.
"""

from __future__ import annotations

import itertools

from repro.cli import main as cli_main
from repro.core.translator import translate_sql
from repro.mr.counters import JobCounters, TIMING_FIELDS
from repro.workloads.queries import paper_queries
from repro.workloads.runner import run_translation

_ns = itertools.count(1)

PHASES = ("map", "shuffle", "reduce", "finalize")


def test_every_job_reports_all_phases(datastore):
    tr = translate_sql(paper_queries()["q17"], catalog=datastore.catalog,
                       namespace=f"walls{next(_ns)}")
    result = run_translation(tr, datastore)
    for run in result.runs:
        walls = run.counters.phase_wall_s
        assert set(walls) == set(PHASES)
        assert all(v >= 0.0 for v in walls.values())
        # Real work happened, so *something* took nonzero time.
        assert sum(walls.values()) > 0.0


def test_timings_excluded_from_equality_and_comparable():
    a = JobCounters(job_id="j", phase_wall_s={"map": 1.0})
    b = JobCounters(job_id="j", phase_wall_s={"map": 2.0})
    assert a == b
    assert a.comparable() == b.comparable()
    for name in TIMING_FIELDS:
        assert name not in a.comparable()


def test_scaled_carries_timings_unscaled():
    c = JobCounters(job_id="j", map_output_bytes=100,
                    phase_wall_s={"map": 0.5})
    scaled = c.scaled(10.0)
    assert scaled.map_output_bytes == 1000
    assert scaled.phase_wall_s == {"map": 0.5}
    assert scaled.phase_wall_s is not c.phase_wall_s


def test_trace_events_carry_timestamps(datastore):
    tr = translate_sql(paper_queries()["q_agg"], catalog=datastore.catalog,
                       namespace=f"walls{next(_ns)}")
    result = run_translation(tr, datastore, parallelism=2, keep_trace=True)
    events = result.trace.events
    assert events and all(e.t > 0.0 for e in events)
    starts = {(e.job_id, e.task_id): e.t for e in events
              if e.phase == "start"}
    for e in events:
        if e.phase == "finish":
            assert e.t >= starts[(e.job_id, e.task_id)]


def test_cli_run_timings_flag(capsys):
    rc = cli_main(["run",
                   "SELECT l_orderkey, count(*) AS n FROM lineitem "
                   "GROUP BY l_orderkey",
                   "--timings", "--tpch-scale", "0.001", "--limit", "2",
                   "--clickstream-users", "5"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "measured phase wall-clock" in out
    for phase in PHASES:
        assert f"{phase}=" in out
    assert "total" in out
