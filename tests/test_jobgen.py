"""Tests for job generation and the paper's merge rules (incl. Fig. 7)."""

import pytest

from repro.catalog import Catalog, Schema, standard_catalog
from repro.catalog.types import ColumnType as T
from repro.core.correlation import CorrelationAnalysis
from repro.core.jobgen import (
    JobGraph,
    apply_rule4_swaps,
    generate_job_graph,
    merge_step1,
    merge_step2,
    one_to_one_graph,
)
from repro.plan.planner import plan_query
from repro.sqlparser.parser import parse_sql
from repro.workloads.queries import paper_queries


def build(sql, catalog=None, **kwargs):
    plan = plan_query(parse_sql(sql), catalog or standard_catalog())
    return generate_job_graph(plan, **kwargs)


class TestPaperJobCounts:
    """Job counts the paper states explicitly (Sec. VII-A.2)."""

    @pytest.mark.parametrize("query,ysmart,one_op", [
        ("q17", 2, 4),
        ("q18", 3, 6),
        ("q21", 5, 9),
        ("q21_subtree", 1, 5),
        ("q_csa", 2, 6),
        ("q_agg", 1, 1),
    ])
    def test_counts(self, query, ysmart, one_op):
        sql = paper_queries()[query]
        assert build(sql).job_count() == ysmart
        assert build(sql, use_rule1=False, use_rule234=False,
                     use_swaps=False).job_count() == one_op

    def test_q21_subtree_staged(self):
        """Fig. 9's three stages: 5 jobs -> 3 jobs -> 1 job."""
        sql = paper_queries()["q21_subtree"]
        assert build(sql, use_rule1=False, use_rule234=False,
                     use_swaps=False).job_count() == 5
        assert build(sql, use_rule1=True, use_rule234=False,
                     use_swaps=False).job_count() == 3
        assert build(sql).job_count() == 1

    def test_qcsa_merged_job_contains_five_operations(self):
        graph = build(paper_queries()["q_csa"])
        schedule = graph.schedule()
        assert sorted(schedule[0].labels) == [
            "AGG1", "AGG2", "AGG3", "JOIN1", "JOIN2"]
        assert schedule[1].labels == ["AGG4"]


class TestRule1:
    def test_merges_independent_tc_jobs(self):
        graph = build(paper_queries()["q17"], use_rule1=True,
                      use_rule234=False, use_swaps=False)
        merged = [d for d in graph.drafts if len(d.nodes) > 1]
        assert len(merged) == 1
        assert sorted(merged[0].labels) == ["AGG1", "JOIN1"]

    def test_never_merges_dependent_jobs(self):
        """Q-CSA's JOIN1 and JOIN2 have TC but JOIN2 depends on JOIN1."""
        graph = build(paper_queries()["q_csa"], use_rule1=True,
                      use_rule234=False, use_swaps=False)
        for draft in graph.drafts:
            labels = set(draft.labels)
            assert not {"JOIN1", "JOIN2"} <= labels

    def test_q21_triple_merge(self):
        graph = build(paper_queries()["q21_subtree"], use_rule1=True,
                      use_rule234=False, use_swaps=False)
        merged = max(graph.drafts, key=lambda d: len(d.nodes))
        assert sorted(merged.labels) == ["AGG1", "AGG2", "JOIN1"]


class TestRules234:
    def test_rule2_agg_into_child_job(self):
        sql = """
        SELECT t.l_orderkey, count(*) AS n FROM
          (SELECT l_orderkey, o_custkey FROM lineitem, orders
           WHERE l_orderkey = o_orderkey) AS t
        GROUP BY t.l_orderkey
        """
        graph = build(sql)
        assert graph.job_count() == 1
        assert sorted(graph.drafts[0].labels) == ["AGG1", "JOIN1"]

    def test_rule2_skips_global_agg(self):
        sql = """
        SELECT sum(t.l_quantity) AS s FROM
          (SELECT l_orderkey, l_quantity FROM lineitem, orders
           WHERE l_orderkey = o_orderkey) AS t
        """
        graph = build(sql)
        assert graph.job_count() == 2

    def test_rule3_join_of_common_job_children(self):
        graph = build(paper_queries()["q17"])
        big = max(graph.drafts, key=lambda d: len(d.nodes))
        assert sorted(big.labels) == ["AGG1", "JOIN1", "JOIN2"]

    def test_rule4_base_table_other_input(self):
        """Q-CSA's JOIN2 merges although one input is the raw table."""
        graph = build(paper_queries()["q_csa"])
        big = max(graph.drafts, key=lambda d: len(d.nodes))
        assert "JOIN2" in big.labels


class TestFig7Scenario:
    """The paper's Fig. 7: swap enables the two-job translation."""

    @pytest.fixture(scope="class")
    def catalog(self):
        cat = Catalog()
        # r(a, b): JOIN1 = r1 ⋈ r2 on a; AGG1 groups s on b; AGG2 groups
        # r on a; JOIN2 = (JOIN1 ⋈ AGG1) on b; JOIN3 = JOIN2 ⋈ AGG2 on a.
        cat.register("r", Schema.of(("a", T.INT), ("b", T.INT),
                                    ("v", T.INT)))
        cat.register("s", Schema.of(("a", T.INT), ("b", T.INT),
                                    ("w", T.INT)))
        return cat

    SQL_FIG7A = """
    SELECT j2.a, j2.b FROM
      (SELECT j1.a AS a, j1.b AS b FROM
         (SELECT r1.a AS a, r1.b AS b FROM r AS r1, s AS r2
          WHERE r1.a = r2.a) AS j1,
         (SELECT b, count(*) AS n FROM s GROUP BY b) AS a1
       WHERE j1.b = a1.b) AS j2,
      (SELECT a, count(*) AS m FROM r GROUP BY a) AS a2
    WHERE j2.a = a2.a
    """

    def test_structure_assumptions(self, catalog):
        plan = plan_query(parse_sql(self.SQL_FIG7A), catalog)
        ca = CorrelationAnalysis(plan)
        labels = {n.label: n for n in ca.operator_nodes}
        # JOIN1 & AGG2 share input table r with the same PK (a): IC+TC.
        assert ca.transit_correlated(labels["JOIN1"], labels["AGG2"])
        # JOIN2 has JFC with JOIN1? No: JOIN2 partitions on b, JOIN1 on a.
        assert ca.job_flow_correlated(labels["JOIN2"], labels["AGG1"])
        assert not ca.job_flow_correlated(labels["JOIN2"], labels["JOIN1"])
        # JOIN3 has JFC with JOIN2? JOIN3 on a, JOIN2 on b: no. With AGG2: yes.
        assert ca.job_flow_correlated(labels["JOIN3"], labels["AGG2"])

    def test_without_swap_three_jobs(self, catalog):
        plan = plan_query(parse_sql(self.SQL_FIG7A), catalog)
        graph = generate_job_graph(plan, use_swaps=False)
        # {JOIN1+AGG2(+JOIN3 via rule 4 since AGG2's partner JOIN2 ...)}
        # At minimum the merge of JOIN1 and AGG2 must happen.
        merged = max(graph.drafts, key=lambda d: len(d.nodes))
        assert {"JOIN1", "AGG2"} <= set(merged.labels)
        assert graph.job_count() <= 3

    def test_with_swap_at_most_as_many_jobs(self, catalog):
        plan_a = plan_query(parse_sql(self.SQL_FIG7A), catalog)
        no_swap = generate_job_graph(plan_a, use_swaps=False).job_count()
        plan_b = plan_query(parse_sql(self.SQL_FIG7A), catalog)
        with_swap = generate_job_graph(plan_b, use_swaps=True).job_count()
        assert with_swap <= no_swap


class TestSwaps:
    def test_swap_preserves_join_semantics_bookkeeping(self):
        sql = paper_queries()["q17"]
        plan = plan_query(parse_sql(sql), standard_catalog())
        ca = CorrelationAnalysis(plan)
        swaps = apply_rule4_swaps(plan, ca)
        # Q17's JOIN2 has JFC with both children; no swap needed.
        assert swaps == 0

    def test_swap_flips_outer_join_type(self):
        from repro.plan.nodes import JoinNode, ScanNode
        left = ScanNode("lineitem", "l", 0, ["l_orderkey"])
        right = ScanNode("orders", "o", 0, ["o_orderkey"])
        join = JoinNode(left, right, "left", ["l.l_orderkey"],
                        ["o.o_orderkey"])
        join.swap_children()
        assert join.join_type == "right"
        assert join.left is right
        assert join.left_keys == ["o.o_orderkey"]


class TestSchedule:
    def test_schedule_is_topological(self):
        for name in ["q17", "q18", "q21", "q_csa"]:
            graph = build(paper_queries()[name])
            seen = set()
            for draft in graph.schedule():
                assert graph.direct_deps(draft) <= seen
                seen.add(draft.draft_id)

    def test_written_nodes_cover_cross_draft_edges(self):
        graph = build(paper_queries()["q18"])
        written = {n.label for d in graph.drafts
                   for n in graph.written_nodes(d)}
        # Every draft's external consumer must find its input written.
        for draft in graph.drafts:
            for node in draft.nodes:
                for child in graph.operator_children(node):
                    if graph.draft_of(child) is not draft:
                        assert child.label in written

    def test_root_always_written(self):
        graph = build(paper_queries()["q_agg"])
        written = [n.label for d in graph.drafts
                   for n in graph.written_nodes(d)]
        assert graph.root.label in written
