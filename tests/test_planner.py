"""Unit tests for the planner: plan shapes, resolution, pushdown."""

import pytest

from repro.catalog import Catalog, Schema, standard_catalog
from repro.catalog.types import ColumnType as T
from repro.errors import (
    NameResolutionError,
    PlanError,
    UnsupportedSqlError,
)
from repro.plan.explain import explain_plan, plan_signature
from repro.plan.nodes import (
    AggNode,
    Filter,
    JoinNode,
    Project,
    ScanNode,
    SortNode,
)
from repro.plan.planner import plan_query
from repro.sqlparser.parser import parse_sql


@pytest.fixture(scope="module")
def catalog():
    cat = standard_catalog()
    cat.register("t1", Schema.of(("a", T.INT), ("b", T.INT), ("c", T.STRING)))
    cat.register("t2", Schema.of(("a", T.INT), ("d", T.INT)))
    return cat


def plan(sql, catalog):
    return plan_query(parse_sql(sql), catalog)


class TestScanBlocks:
    def test_sp_plan(self, catalog):
        p = plan("SELECT a, b FROM t1 WHERE c = 'x'", catalog)
        assert isinstance(p, ScanNode)
        kinds = [type(s).__name__ for s in p.stages]
        assert kinds == ["Filter", "Project"]
        assert p.output_names == ["a", "b"]

    def test_expression_output(self, catalog):
        p = plan("SELECT a + b AS s FROM t1", catalog)
        assert p.output_names == ["s"]

    def test_auto_output_names(self, catalog):
        p = plan("SELECT a, a + 1 FROM t1", catalog)
        assert p.output_names == ["a", "_col1"]

    def test_duplicate_output_rejected(self, catalog):
        with pytest.raises(PlanError, match="duplicate output"):
            plan("SELECT a, b AS a FROM t1", catalog)


class TestResolution:
    def test_unknown_table(self, catalog):
        with pytest.raises(Exception):
            plan("SELECT a FROM ghost", catalog)

    def test_unknown_column(self, catalog):
        with pytest.raises(NameResolutionError, match="unknown column"):
            plan("SELECT zz FROM t1", catalog)

    def test_ambiguous_column(self, catalog):
        with pytest.raises(NameResolutionError, match="ambiguous"):
            plan("SELECT a FROM t1, t2 WHERE t1.a = t2.a", catalog)

    def test_qualified_disambiguates(self, catalog):
        p = plan("SELECT t1.a FROM t1, t2 WHERE t1.a = t2.a", catalog)
        assert p.output_names == ["a"]

    def test_duplicate_alias_rejected(self, catalog):
        with pytest.raises(NameResolutionError, match="duplicate table alias"):
            plan("SELECT x.a FROM t1 AS x, t2 AS x WHERE x.a = x.d", catalog)

    def test_unknown_alias(self, catalog):
        with pytest.raises(NameResolutionError, match="unknown table alias"):
            plan("SELECT zz.a FROM t1", catalog)


class TestJoins:
    def test_comma_join_with_where_equi(self, catalog):
        p = plan("SELECT t1.a FROM t1, t2 WHERE t1.a = t2.a", catalog)
        assert isinstance(p, JoinNode)
        assert p.join_type == "inner"
        assert len(p.left_keys) == 1

    def test_single_table_filters_pushed_to_scan(self, catalog):
        p = plan("SELECT t1.a FROM t1, t2 "
                 "WHERE t1.a = t2.a AND t1.b > 5 AND t2.d < 3", catalog)
        left, right = p.children
        assert any(isinstance(s, Filter) for s in left.stages)
        assert any(isinstance(s, Filter) for s in right.stages)

    def test_cross_item_residual_stays_on_join(self, catalog):
        p = plan("SELECT t1.a FROM t1, t2 "
                 "WHERE t1.a = t2.a AND t1.b < t2.d", catalog)
        assert any(isinstance(s, Filter) for s in p.stages)

    def test_cross_join_rejected(self, catalog):
        with pytest.raises(UnsupportedSqlError, match="cross join"):
            plan("SELECT t1.a FROM t1, t2", catalog)

    def test_explicit_join_on(self, catalog):
        p = plan("SELECT t1.a FROM t1 JOIN t2 ON t1.a = t2.a AND t1.b < t2.d",
                 catalog)
        assert isinstance(p, JoinNode)
        assert p.residual is not None  # non-equi conjunct

    def test_outer_join_type_preserved(self, catalog):
        p = plan("SELECT t1.a FROM t1 LEFT OUTER JOIN t2 ON t1.a = t2.a",
                 catalog)
        assert p.join_type == "left"

    def test_join_without_equi_rejected(self, catalog):
        with pytest.raises(UnsupportedSqlError, match="equi-join"):
            plan("SELECT t1.a FROM t1 JOIN t2 ON t1.b < t2.d", catalog)

    def test_self_join_detection(self, catalog):
        p = plan("SELECT x.a FROM t1 AS x, t1 AS y WHERE x.a = y.a", catalog)
        assert isinstance(p, JoinNode) and p.is_self_join

    def test_three_way_left_deep_in_from_order(self, catalog):
        cat = Catalog()
        cat.register("r", Schema.of(("k1", T.INT)))
        cat.register("s", Schema.of(("k1", T.INT), ("k2", T.INT)))
        cat.register("u", Schema.of(("k2", T.INT)))
        p = plan("SELECT r.k1 FROM r, s, u "
                 "WHERE r.k1 = s.k1 AND s.k2 = u.k2", cat)
        assert isinstance(p, JoinNode)
        assert isinstance(p.left, JoinNode)  # (r ⋈ s) ⋈ u

    def test_out_of_order_comma_items_connect(self, catalog):
        cat = Catalog()
        cat.register("r", Schema.of(("k1", T.INT)))
        cat.register("s", Schema.of(("k1", T.INT), ("k2", T.INT)))
        cat.register("u", Schema.of(("k2", T.INT)))
        # r connects to s, not to u; u must wait for s.
        p = plan("SELECT r.k1 FROM r, u, s "
                 "WHERE r.k1 = s.k1 AND s.k2 = u.k2", cat)
        assert isinstance(p, JoinNode)


class TestAggregation:
    def test_group_by_plan(self, catalog):
        p = plan("SELECT c, count(*) AS n FROM t1 GROUP BY c", catalog)
        assert isinstance(p, AggNode)
        assert p.output_names == ["c", "n"]
        assert p.aggs[0].func == "count" and p.aggs[0].star

    def test_global_aggregate(self, catalog):
        p = plan("SELECT sum(a) AS s FROM t1", catalog)
        assert isinstance(p, AggNode) and p.is_global

    def test_global_agg_pk_is_none(self, catalog):
        from repro.core.correlation import CorrelationAnalysis
        p = plan("SELECT sum(a) AS s FROM t1", catalog)
        assert CorrelationAnalysis(p).pk(p) is None

    def test_mixed_expression_over_group_and_agg(self, catalog):
        p = plan("SELECT c, count(*) - 2 AS n FROM t1 GROUP BY c", catalog)
        assert p.output_names == ["c", "n"]

    def test_group_by_select_alias(self, catalog):
        # The paper's Q-CSA relies on GROUP BY naming a select alias.
        p = plan("SELECT a + b AS s, count(*) AS n FROM t1 GROUP BY s",
                 catalog)
        assert isinstance(p, AggNode)
        assert len(p.group_keys) == 1

    def test_non_grouped_column_rejected(self, catalog):
        with pytest.raises(PlanError, match="neither grouped nor aggregated"):
            plan("SELECT b, count(*) FROM t1 GROUP BY c", catalog)

    def test_having_becomes_filter_stage(self, catalog):
        p = plan("SELECT c FROM t1 GROUP BY c HAVING count(*) > 1", catalog)
        assert isinstance(p.stages[0], Filter)

    def test_having_agg_deduplicated_with_select(self, catalog):
        p = plan("SELECT c, sum(a) AS s FROM t1 GROUP BY c "
                 "HAVING sum(a) > 10", catalog)
        assert len(p.aggs) == 1

    def test_duplicate_aggregates_share_slot(self, catalog):
        p = plan("SELECT sum(a) AS x, sum(a) + 1 AS y FROM t1", catalog)
        assert len(p.aggs) == 1

    def test_nested_aggregate_rejected(self, catalog):
        with pytest.raises(UnsupportedSqlError, match="nested aggregate"):
            plan("SELECT sum(count(a)) FROM t1", catalog)

    def test_distinct_becomes_grouping(self, catalog):
        p = plan("SELECT DISTINCT c FROM t1", catalog)
        assert isinstance(p, AggNode)
        assert not p.aggs

    def test_unique_slots_across_agg_nodes(self, catalog):
        sql = """
        SELECT s.c, count(*) AS n FROM
          (SELECT c, sum(a) AS t FROM t1 GROUP BY c) AS s
        GROUP BY s.c
        """
        p = plan(sql, catalog)
        slots = set()
        for node in p.post_order():
            if isinstance(node, AggNode):
                for gk in node.group_keys:
                    assert gk.slot not in slots
                    slots.add(gk.slot)


class TestSortLimitDistinct:
    def test_order_by(self, catalog):
        p = plan("SELECT a, b FROM t1 ORDER BY b DESC, a", catalog)
        assert isinstance(p, SortNode)
        assert p.keys == [("b", False), ("a", True)]

    def test_limit_without_order(self, catalog):
        p = plan("SELECT a FROM t1 LIMIT 5", catalog)
        assert isinstance(p, SortNode) and p.limit == 5 and not p.keys

    def test_order_by_unknown_column(self, catalog):
        with pytest.raises(NameResolutionError):
            plan("SELECT a FROM t1 ORDER BY zz", catalog)

    def test_order_by_expression_unsupported(self, catalog):
        with pytest.raises(UnsupportedSqlError):
            plan("SELECT a FROM t1 ORDER BY a + 1", catalog)


class TestDerivedTables:
    def test_subquery_names_requalified(self, catalog):
        p = plan("SELECT d.s FROM (SELECT a + b AS s FROM t1) AS d "
                 "WHERE d.s > 3", catalog)
        assert p.output_names == ["s"]

    def test_sp_over_derived_appends_stages(self, catalog):
        p = plan("SELECT d.s FROM (SELECT a AS s FROM t1) AS d "
                 "WHERE d.s > 3", catalog)
        # The derived scan carries both blocks' stages; no extra node.
        assert isinstance(p, ScanNode)

    def test_nested_blocks_have_unique_row_keys(self, catalog):
        sql = """
        SELECT o.s FROM
          (SELECT i.s AS s FROM
             (SELECT a AS s FROM t1) AS i) AS o
        """
        p = plan(sql, catalog)
        assert p.output_names == ["s"]


class TestExplain:
    def test_explain_includes_labels_and_stages(self, catalog):
        p = plan("SELECT c, count(*) AS n FROM t1 WHERE a > 1 GROUP BY c",
                 catalog)
        text = explain_plan(p)
        assert "AGG1" in text and "SCAN" in text
        assert "filter" in text and "project" in text

    def test_plan_signature(self, catalog):
        p = plan("SELECT t1.a FROM t1, t2 WHERE t1.a = t2.a", catalog)
        assert plan_signature(p) == ["SCAN t1", "SCAN t2", "JOIN1"]

    def test_labels_post_order(self, catalog):
        p = plan("SELECT c, count(*) AS n FROM t1 GROUP BY c "
                 "ORDER BY n DESC", catalog)
        assert p.label == "SORT1"
        assert p.child.label == "AGG1"
