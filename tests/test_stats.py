"""Tests for the adaptive statistics layer: sketches, the version-keyed
catalog, plan estimators, and the stats-driven decision points (skew
partition plans, cost-based merges, combiner choice, cardinality split
sizing)."""

import pickle

import pytest

from repro.catalog import Catalog, Schema, standard_catalog
from repro.catalog.types import ColumnType as T
from repro.data import Datastore, Table
from repro.mr.tasks import auto_split_rows, auto_split_rows_stats, stable_hash
from repro.plan.planner import plan_query
from repro.sqlparser.parser import parse_sql
from repro.stats import (
    MisraGries,
    PlanEstimator,
    SkewPartitionPlan,
    StatsCatalog,
    StatsContext,
    StatsOptimizer,
    StatsPolicy,
    build_skew_plan,
    distinct_of_tuples,
    resolve_stats,
    sketch_column,
)
from repro.workloads.runner import build_datastore, run_query


# ---------------------------------------------------------------------------
# Sketches
# ---------------------------------------------------------------------------

class TestMisraGries:
    def test_guaranteed_heavy_survivor(self):
        # Any value with frequency > n/(k+1) must survive as a candidate.
        values = [7] * 40 + list(range(100, 160))
        mg = MisraGries(k=4)
        for v in values:
            mg.add(v)
        assert 7 in mg.candidates()

    def test_counter_budget_respected(self):
        mg = MisraGries(k=3)
        for v in range(1000):
            mg.add(v % 17)
        assert len(mg.counters) <= 3

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            MisraGries(k=0)


class TestSketchColumn:
    def test_exact_on_small_column(self):
        values = [1, 1, 1, 2, 2, 3, None]
        count, distinct, nulls, heavy, sampled = sketch_column(values, k=4)
        assert (count, distinct, nulls, sampled) == (7, 3, 1, False)
        assert heavy[0] == (1, 3)  # heaviest first, exact counts
        assert dict(heavy)[2] == 2

    def test_sampling_is_deterministic_and_scaled(self):
        # Period 7 is co-prime to the stride, so the sample still sees
        # every residue.
        values = [i % 7 for i in range(1000)]
        a = sketch_column(values, k=8, sample_cap=100)
        b = sketch_column(values, k=8, sample_cap=100)
        assert a == b
        count, distinct, _nulls, heavy, sampled = a
        assert sampled and count == 1000 and distinct == 7
        # Scaled counts approximate the true ~143-per-value frequency.
        assert all(80 <= c <= 220 for _v, c in heavy)

    def test_unhashable_values_counted_by_repr(self):
        values = [[1], [1], [2]]
        count, distinct, nulls, _heavy, _ = sketch_column(values)
        assert (count, distinct, nulls) == (3, 2, 0)

    def test_composite_distinct(self):
        a = [1, 1, 2, 2]
        b = ["x", "y", "x", "x"]
        assert distinct_of_tuples([a, b]) == 3


# ---------------------------------------------------------------------------
# Catalog: versioning shared with the result cache
# ---------------------------------------------------------------------------

def _mini_store(rows):
    ds = Datastore(Catalog())
    ds.load_table(Table("t", Schema.of(("k", T.INT), ("v", T.INT)), rows))
    return ds


class TestStatsCatalog:
    def test_lazy_collection_and_hits(self):
        ds = _mini_store([{"k": i % 3, "v": i} for i in range(30)])
        cat = StatsCatalog()
        stats = cat.column_stats(ds, "t", "k")
        assert stats.distinct == 3 and cat.collections == 1
        again = cat.column_stats(ds, "t", "k")
        assert again is stats and cat.hits == 1 and cat.collections == 1

    def test_mutation_invalidates_in_one_versioned_step(self):
        ds = _mini_store([{"k": 1, "v": 1}])
        cat = StatsCatalog()
        assert cat.column_stats(ds, "t", "k").distinct == 1
        ds.resolve("t").append({"k": 2, "v": 2})
        fresh = cat.column_stats(ds, "t", "k")
        assert fresh.distinct == 2
        assert cat.invalidations == 1 and cat.collections == 2

    def test_reload_invalidates_too(self):
        ds = _mini_store([{"k": 1, "v": 1}])
        cat = StatsCatalog()
        cat.column_stats(ds, "t", "k")
        ds.load_table(Table("t", Schema.of(("k", T.INT), ("v", T.INT)),
                            [{"k": i, "v": i} for i in range(5)]))
        assert cat.column_stats(ds, "t", "k").distinct == 5
        assert cat.invalidations == 1

    def test_absent_column_skipped(self):
        ds = _mini_store([{"k": 1, "v": 1}])
        cat = StatsCatalog()
        assert cat.column_stats(ds, "t", "nope") is None
        assert cat.distinct_of(ds, "t", ("k", "nope")) is None


class TestColumnsView:
    def test_only_requested_columns(self):
        t = Table("t", Schema.of(("a", T.INT), ("b", T.INT)),
                  [{"a": 1, "b": 2}])
        view = t.columns_view(["a", "zzz"])
        assert view == {"a": [1]}

    def test_reuses_batch_cache(self):
        t = Table("t", Schema.of(("a", T.INT),), [{"a": 3}])
        batch = t.column_batch()
        assert t.columns_view(["a"])["a"] is batch["a"]


# ---------------------------------------------------------------------------
# Estimators (SimpleDB-style records_output / distinct_values)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def paper_store():
    return build_datastore(tpch_scale=0.002, clickstream_users=40, seed=11)


def _plan(sql, ds):
    return plan_query(parse_sql(sql), ds.catalog)


class TestPlanEstimator:
    def test_scan_records_exact(self, paper_store):
        est = PlanEstimator(paper_store, StatsCatalog())
        plan = _plan("SELECT l_orderkey FROM lineitem", paper_store)
        scan = list(plan.post_order())[0]
        assert est.records_output(scan) == \
            len(paper_store.resolve("lineitem"))

    def test_group_by_cardinality_matches_truth(self, paper_store):
        est = PlanEstimator(paper_store, StatsCatalog())
        plan = _plan("SELECT l_orderkey, COUNT(*) AS c FROM lineitem "
                     "GROUP BY l_orderkey", paper_store)
        truth = len({r["l_orderkey"]
                     for r in paper_store.resolve("lineitem").rows})
        assert est.records_output(plan) == truth

    def test_global_agg_is_one_row(self, paper_store):
        est = PlanEstimator(paper_store, StatsCatalog())
        plan = _plan("SELECT COUNT(*) AS n FROM orders", paper_store)
        assert est.records_output(plan) == 1

    def test_equality_selectivity_is_one_over_v(self, paper_store):
        est = PlanEstimator(paper_store, StatsCatalog())
        plan = _plan("SELECT o_orderkey FROM orders "
                     "WHERE o_orderstatus = 'F'", paper_store)
        table = paper_store.resolve("orders")
        v = len({r["o_orderstatus"] for r in table.rows})
        expect = max(1, int(len(table) * (1.0 / v)))
        assert est.records_output(plan) == expect

    def test_join_containment_bound(self, paper_store):
        est = PlanEstimator(paper_store, StatsCatalog())
        plan = _plan(
            "SELECT o.o_orderkey FROM orders AS o, lineitem AS l "
            "WHERE o.o_orderkey = l.l_orderkey", paper_store)
        join = next(n for n in plan.post_order()
                    if type(n).__name__ == "JoinNode")
        orders = paper_store.resolve("orders")
        lineitem = paper_store.resolve("lineitem")
        v = max(len({r["o_orderkey"] for r in orders.rows}),
                len({r["l_orderkey"] for r in lineitem.rows}))
        expect = max(1, (len(orders) * len(lineitem)) // v)
        assert est.records_output(join) == expect

    def test_distinct_values_through_filter_capped(self, paper_store):
        est = PlanEstimator(paper_store, StatsCatalog())
        plan = _plan("SELECT l_orderkey FROM lineitem "
                     "WHERE l_quantity > 0", paper_store)
        scan = list(plan.post_order())[0]
        d = est.distinct_values(scan, "l_orderkey")
        assert 1 <= d <= est.records_output(scan)

    def test_heavy_hitters_come_from_base_sketch(self):
        rows = [{"k": 7, "v": i} for i in range(90)] + \
               [{"k": 100 + i, "v": i} for i in range(10)]
        ds = _mini_store(rows)
        est = PlanEstimator(ds, StatsCatalog())
        plan = plan_query(parse_sql("SELECT k, v FROM t"), ds.catalog)
        scan = list(plan.post_order())[0]
        heavy = est.heavy_hitters(scan, "k")
        assert heavy and heavy[0][0] == 7 and heavy[0][1] == 90


# ---------------------------------------------------------------------------
# Skew partition plans
# ---------------------------------------------------------------------------

class TestSkewPartitionPlan:
    def test_heavy_keys_get_dedicated_partitions(self):
        plan = build_skew_plan([(7, 900), (3, 500)], num_partitions=8)
        assert plan.num_heavy == 2
        assert plan.partition((7,)) == 0 and plan.partition((3,)) == 1

    def test_light_keys_stay_in_range_and_off_heavy_partitions(self):
        plan = build_skew_plan([(7, 900)], num_partitions=4)
        for k in range(100):
            pid = plan.partition((k,)) if k != 7 else None
            if pid is not None:
                assert 1 <= pid < 4

    def test_light_region_uses_stable_hash(self):
        plan = build_skew_plan([(7, 900)], num_partitions=4)
        assert plan.partition((42,)) == 1 + stable_hash((42,)) % 3

    def test_caps_at_partitions_minus_one(self):
        loads = [(i, 100 - i) for i in range(10)]
        plan = build_skew_plan(loads, num_partitions=4)
        assert plan.num_heavy == 3

    def test_picklable(self):
        plan = build_skew_plan([(7, 900)], num_partitions=4)
        clone = pickle.loads(pickle.dumps(plan))
        assert all(clone.partition((k,)) == plan.partition((k,))
                   for k in range(50))

    def test_describe_mentions_heavy_count(self):
        plan = build_skew_plan([((7,), 900)], num_partitions=4)
        assert "1" in plan.describe()


class TestAutoSplitStats:
    def test_high_cardinality_keeps_parallelism(self):
        # distinct * 8 >= rows: combiner collapses nothing, keep 8 tasks.
        assert auto_split_rows_stats(10_000, 5_000) == \
            auto_split_rows(10_000)

    def test_mid_cardinality_cuts_fewer_bigger_splits(self):
        # Static 8 tasks would give 2500-row splits against 1000 groups:
        # the combiner collapses barely 2.5x per split.  The stats
        # sizing cuts 2 splits of 10000 rows (>= 8x collapse each).
        rows, distinct = 20_000, 1_000
        split = auto_split_rows_stats(rows, est_distinct=distinct)
        static = auto_split_rows(rows)
        assert split == 10_000 and static == 2_500
        assert split >= distinct * 8

    def test_very_low_cardinality_keeps_static_parallelism(self):
        # 10 groups: even 12500-row static splits collapse ~1000x, so
        # there is nothing to win by giving up map parallelism.
        assert auto_split_rows_stats(100_000, 10) == \
            auto_split_rows(100_000)

    def test_never_below_floor(self):
        assert auto_split_rows_stats(300, 1) >= 256


# ---------------------------------------------------------------------------
# Decision points end to end (gates lowered explicitly)
# ---------------------------------------------------------------------------

class TestResolveStats:
    def test_context_passthrough(self):
        ctx = StatsContext()
        assert resolve_stats(ctx) is ctx

    def test_on_off_literals(self):
        assert resolve_stats("off") is None
        assert resolve_stats(False) is None
        assert isinstance(resolve_stats("on"), StatsContext)
        assert isinstance(resolve_stats(True), StatsContext)

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_STATS", "off")
        assert resolve_stats(None) is None
        monkeypatch.setenv("REPRO_STATS", "on")
        assert isinstance(resolve_stats(None), StatsContext)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            resolve_stats("sometimes")


def _skewed_join_store(n=4000, hot_share=0.6):
    """A fact table with one hot join key plus a small dimension."""
    ds = Datastore(Catalog())
    hot = int(n * hot_share)
    rows = [{"k": 0, "v": i} for i in range(hot)] + \
           [{"k": 1 + (i % 97), "v": i} for i in range(n - hot)]
    ds.load_table(Table("fact", Schema.of(("k", T.INT), ("v", T.INT)),
                        rows))
    ds.load_table(Table("dim", Schema.of(("k", T.INT), ("w", T.STRING)),
                        [{"k": k, "w": f"w{k}"} for k in range(98)]))
    return ds


class TestDecisionsEndToEnd:
    JOIN_SQL = ("SELECT f.k, f.v, d.w FROM fact AS f, dim AS d "
                "WHERE f.k = d.k")

    def test_skew_plan_on_reduce_join_preserves_rows(self):
        # A reduce-side join has no combiner, so the hot key's whole
        # load lands on one hash partition — the case the skew plan
        # dedicates a partition to.
        ds = _skewed_join_store()
        static = run_query(self.JOIN_SQL, ds, stats="off",
                           namespace="sk_static")
        ctx = StatsContext(policy=StatsPolicy(min_rows=100))
        adaptive = run_query(self.JOIN_SQL, ds, stats=ctx,
                             namespace="sk_adapt")
        assert sorted(map(repr, adaptive.rows)) == \
            sorted(map(repr, static.rows))
        skew = [d for d in ctx.log.decisions if d.kind == "skew"]
        assert skew and any(d.changed for d in skew)
        job = adaptive.translation.jobs[0]
        assert job.partitioner is not None and job.stats_decisions

    def test_skew_partitioner_spreads_reduce_load(self):
        ds = _skewed_join_store()
        ctx = StatsContext(policy=StatsPolicy(min_rows=100))
        adaptive = run_query(self.JOIN_SQL, ds, stats=ctx,
                             namespace="skl_adapt")
        static = run_query(self.JOIN_SQL, ds, stats="off",
                           namespace="skl_static")

        def max_mean(runs):
            c = runs[0].counters
            loads = [x for x in c.reduce_task_records if x]
            return max(loads) / (sum(loads) / len(loads))

        # Dedicating a partition to the hot key cannot make the most
        # loaded reduce task worse, and the light tail spreads out.
        assert max_mean(adaptive.runs) <= max_mean(static.runs)

    def test_combiner_disabled_on_near_unique_key(self):
        ds = _mini_store([{"k": i, "v": i} for i in range(2000)])
        ctx = StatsContext(policy=StatsPolicy(min_rows=100))
        adaptive = run_query("SELECT k, COUNT(*) AS c FROM t GROUP BY k",
                             ds, stats=ctx, namespace="cb_adapt")
        static = run_query("SELECT k, COUNT(*) AS c FROM t GROUP BY k",
                           ds, stats="off", namespace="cb_static")
        assert sorted(map(repr, adaptive.rows)) == \
            sorted(map(repr, static.rows))
        comb = [d for d in ctx.log.decisions if d.kind == "combiner"]
        assert comb and comb[0].changed  # 2000 groups / 2000 rows -> off
        # The adaptive arm really shuffled raw records (no pre-combine).
        assert all(r.counters.pre_combine_records
                   == r.counters.map_output_records
                   for r in adaptive.runs)

    def test_split_decision_logged_and_identical(self):
        ds = _mini_store([{"k": i % 5, "v": i} for i in range(3000)])
        ctx = StatsContext(policy=StatsPolicy(min_rows=100))
        adaptive = run_query("SELECT k, SUM(v) AS s FROM t GROUP BY k",
                             ds, stats=ctx, split_rows="auto",
                             namespace="sp_adapt")
        static = run_query("SELECT k, SUM(v) AS s FROM t GROUP BY k",
                           ds, stats="off", split_rows="auto",
                           namespace="sp_static")
        assert sorted(map(repr, adaptive.rows)) == \
            sorted(map(repr, static.rows))
        splits = [d for d in ctx.log.decisions if d.kind == "split"]
        assert splits and splits[0].estimate["est_key_distinct"] == 5

    def test_merge_decision_evaluated_above_gate(self):
        ds = build_datastore(tpch_scale=0.002, clickstream_users=None)
        ctx = StatsContext(policy=StatsPolicy(min_rows=10))
        sql = ("SELECT l_orderkey, SUM(l_quantity) AS q, "
               "COUNT(*) AS c FROM lineitem GROUP BY l_orderkey")
        run_query(sql, ds, stats=ctx, namespace="mg_adapt")
        # The single-agg query has no Rule-1 pair; use the aggregate
        # merge query from the paper family instead.
        sql2 = ("SELECT s.l_orderkey, s.q, a.c FROM "
                "(SELECT l_orderkey, SUM(l_quantity) AS q FROM lineitem "
                " GROUP BY l_orderkey) AS s, "
                "(SELECT l_orderkey, COUNT(*) AS c FROM lineitem "
                " GROUP BY l_orderkey) AS a "
                "WHERE s.l_orderkey = a.l_orderkey")
        adaptive = run_query(sql2, ds, stats=ctx, namespace="mg2_adapt")
        static = run_query(sql2, ds, stats="off", namespace="mg2_static")
        assert sorted(map(repr, adaptive.rows)) == \
            sorted(map(repr, static.rows))
        merges = [d for d in ctx.log.decisions if d.kind == "merge"]
        assert merges  # the advisor was consulted above the gate

    def test_default_gates_leave_suite_workload_static(self, paper_store):
        sql = ("SELECT l_orderkey, SUM(l_quantity) AS q FROM lineitem "
               "GROUP BY l_orderkey")
        ctx = StatsContext()  # default policy: min_rows far above SF0.002
        adaptive = run_query(sql, paper_store, stats=ctx,
                             namespace="def_adapt")
        assert not ctx.log.changed()
        assert all(job.partitioner is None and job.stats_decisions is None
                   for job in adaptive.translation.jobs)


class TestStatsOptimizerUnits:
    def test_estimate_counters_shape(self, paper_store):
        opt = StatsOptimizer(paper_store, StatsContext())
        plan = _plan("SELECT l_orderkey, COUNT(*) AS c FROM lineitem "
                     "GROUP BY l_orderkey", paper_store)
        nodes = [n for n in plan.post_order()]
        c = opt.estimate_draft_counters(nodes)
        assert c.total_input_records == \
            len(paper_store.resolve("lineitem"))
        assert c.reduce_groups >= 1 and c.total_input_bytes > 0

    def test_merge_always_approved_below_gate(self, paper_store):
        opt = StatsOptimizer(paper_store, StatsContext())
        sql = ("SELECT s.l_orderkey, s.q, a.c FROM "
               "(SELECT l_orderkey, SUM(l_quantity) AS q FROM lineitem "
               " GROUP BY l_orderkey) AS s, "
               "(SELECT l_orderkey, COUNT(*) AS c FROM lineitem "
               " GROUP BY l_orderkey) AS a "
               "WHERE s.l_orderkey = a.l_orderkey")
        from repro.core.jobgen import one_to_one_graph
        from repro.core.correlation import CorrelationAnalysis
        plan = _plan(sql, paper_store)
        graph = one_to_one_graph(plan, CorrelationAnalysis(plan))
        aggs = [d for d in graph.drafts
                if type(d.nodes[0]).__name__ == "AggNode"]
        assert len(aggs) >= 2
        assert opt.approve_merge(graph, aggs[0], aggs[1]) is True
        assert not opt.log.decisions  # below gate: silent paper behaviour
