"""Unit tests for the expression compiler (incl. SQL NULL semantics)."""

import pytest

from repro.errors import NameResolutionError, UnsupportedSqlError
from repro.expr.compiler import (
    compile_predicate,
    compile_scalar,
    identity_resolver,
)
from repro.sqlparser.parser import parse_sql


def compiled(text):
    expr = parse_sql(f"SELECT {text} FROM t").items[0].expr
    return compile_scalar(expr, identity_resolver)


def value(text, row=None):
    return compiled(text)(row or {})


class TestArithmetic:
    def test_add_sub_mul(self):
        assert value("1 + 2 * 3 - 4") == 3

    def test_division_is_true_division(self):
        assert value("7 / 2") == 3.5

    def test_division_by_zero_yields_null(self):
        assert value("1 / 0") is None

    def test_modulo(self):
        assert value("7 % 3") == 1

    def test_unary_minus(self):
        assert value("-(2 + 3)") == -5

    def test_concat(self):
        assert value("'a' || 'b'") == "ab"

    def test_column_lookup(self):
        assert value("x + 1", {"x": 41}) == 42

    def test_qualified_lookup_uses_resolver(self):
        assert value("t1.x", {"t1.x": 5}) == 5

    def test_missing_column_raises(self):
        with pytest.raises(NameResolutionError):
            value("nope", {"x": 1})


class TestNullPropagation:
    @pytest.mark.parametrize("expr", [
        "x + 1", "1 - x", "x * 2", "x / 2", "2 / x", "x % 2",
        "x = 1", "x <> 1", "x < 1", "x >= 1", "-x", "'a' || x",
    ])
    def test_null_operand_yields_null(self, expr):
        assert value(expr, {"x": None}) is None


class TestKleeneLogic:
    def test_and_truth_table(self):
        f = compiled("a AND b")
        assert f({"a": True, "b": True}) is True
        assert f({"a": True, "b": False}) is False
        assert f({"a": False, "b": None}) is False   # short-circuit
        assert f({"a": None, "b": False}) is False
        assert f({"a": None, "b": True}) is None
        assert f({"a": None, "b": None}) is None

    def test_or_truth_table(self):
        f = compiled("a OR b")
        assert f({"a": True, "b": None}) is True
        assert f({"a": None, "b": True}) is True
        assert f({"a": False, "b": False}) is False
        assert f({"a": None, "b": False}) is None
        assert f({"a": False, "b": None}) is None

    def test_not(self):
        f = compiled("NOT a")
        assert f({"a": True}) is False
        assert f({"a": False}) is True
        assert f({"a": None}) is None


class TestPredicateForms:
    def test_is_null(self):
        assert value("x IS NULL", {"x": None}) is True
        assert value("x IS NULL", {"x": 0}) is False
        assert value("x IS NOT NULL", {"x": 0}) is True

    def test_between_inclusive(self):
        assert value("x BETWEEN 1 AND 3", {"x": 1}) is True
        assert value("x BETWEEN 1 AND 3", {"x": 3}) is True
        assert value("x BETWEEN 1 AND 3", {"x": 4}) is False

    def test_between_null(self):
        assert value("x BETWEEN 1 AND 3", {"x": None}) is None

    def test_in_list(self):
        assert value("x IN (1, 2)", {"x": 2}) is True
        assert value("x IN (1, 2)", {"x": 3}) is False
        assert value("x NOT IN (1, 2)", {"x": 3}) is True

    def test_in_with_null_operand(self):
        assert value("x IN (1, 2)", {"x": None}) is None

    def test_in_with_null_item_unknown_when_missing(self):
        # 3 IN (1, NULL) is UNKNOWN; 1 IN (1, NULL) is TRUE.
        assert value("x IN (1, NULL)", {"x": 3}) is None
        assert value("x IN (1, NULL)", {"x": 1}) is True

    def test_case_when(self):
        f = compiled("CASE WHEN x > 0 THEN 'pos' WHEN x < 0 THEN 'neg' "
                     "ELSE 'zero' END")
        assert f({"x": 5}) == "pos"
        assert f({"x": -5}) == "neg"
        assert f({"x": 0}) == "zero"

    def test_case_without_else_defaults_null(self):
        assert value("CASE WHEN x > 0 THEN 1 END", {"x": -1}) is None

    def test_case_null_condition_skipped(self):
        assert value("CASE WHEN x > 0 THEN 1 ELSE 2 END", {"x": None}) == 2


class TestBuiltins:
    def test_abs(self):
        assert value("abs(0 - 5)") == 5

    def test_round(self):
        assert value("round(2.567, 1)") == 2.6
        assert value("round(2.5)") == 2

    def test_coalesce(self):
        assert value("coalesce(x, y, 9)", {"x": None, "y": None}) == 9
        assert value("coalesce(x, 9)", {"x": 4}) == 4

    def test_length(self):
        assert value("length('abc')") == 3

    def test_unknown_function(self):
        with pytest.raises(UnsupportedSqlError, match="unsupported function"):
            compiled("frobnicate(x)")

    def test_aggregate_rejected_as_scalar(self):
        with pytest.raises(UnsupportedSqlError, match="aggregate"):
            compiled("sum(x)")


class TestCompilePredicate:
    def test_null_counts_as_false(self):
        pred = compile_predicate(
            parse_sql("SELECT a FROM t WHERE x > 1").where,
            identity_resolver)
        assert pred({"x": None}) is False
        assert pred({"x": 2}) is True

    def test_none_predicate_always_true(self):
        pred = compile_predicate(None, identity_resolver)
        assert pred({}) is True
