"""Tests for the event-driven dataflow scheduler.

Three pillars:

* **Identity** — the dataflow scheduler produces byte-identical rows and
  ``comparable()`` counters to the wave scheduler (and the golden-pinned
  serial runs) on every paper query, serial and parallel, with and
  without the result cache, under every split policy.
* **Scheduling profile** — :class:`RuntimeTrace` records a real
  schedule: ready <= start <= finish per task, no task starts before its
  prerequisites finish, and the critical path / utilization / overlap
  inspections are consistent under both schedulers.
* **Simulated chain makespan** — the cost model's list scheduler
  respects dependencies, never beats the critical job, and never loses
  to sequential submission.
"""

import itertools
import os
import time

import pytest

from repro.catalog import Catalog, Schema, standard_catalog
from repro.catalog.types import ColumnType as T
from repro.cmf import CommonReducer
from repro.data import Datastore, Table
from repro.errors import ConfigError, ExecutionError
from repro.hadoop import small_cluster
from repro.hadoop.costmodel import HadoopCostModel
from repro.mr import (
    EmitSpec,
    JobTaskGraph,
    MapInput,
    MRJob,
    OutputSpec,
    ParallelExecutor,
    Runtime,
    auto_split_rows,
    default_worker_count,
    make_executor,
)
from repro.mr.tasks import AUTO_SPLIT_MIN_ROWS, AUTO_SPLIT_TARGET_TASKS
from repro.ops import SPTask, TaskInput
from repro.reuse import ResultCache
from repro.core.translator import translate_sql
from repro.workloads.queries import paper_queries
from repro.workloads.runner import run_translation

_ns = itertools.count(1)


def _emit_kv(record):
    return (record["k"],), {"v": record["v"]}


def _emit_kv_slow(record):
    time.sleep(0.004)
    return (record["k"],), {"v": record["v"]}


def picklable_job(job_id, dataset="nums", out=None, emit=_emit_kv):
    """A hand-built job with module-level functions only, safe to ship
    to a process pool."""
    task = SPTask("sp", TaskInput.shuffle("in", ["k"]))
    return MRJob(
        job_id=job_id, name="pass",
        map_inputs=[MapInput(dataset, [EmitSpec("in", emit)])],
        reducer=CommonReducer([task]),
        outputs=[OutputSpec(out or f"{job_id}.out", "sp", ["k", "v"])],
    )


def small_datastore(wide_rows=0):
    ds = Datastore(Catalog())
    ds.load_table(Table("nums", Schema.of(("k", T.INT), ("v", T.INT)), [
        {"k": 1, "v": 10}, {"k": 2, "v": 20}, {"k": 1, "v": 30},
        {"k": 3, "v": 40}, {"k": 2, "v": 50},
    ]))
    if wide_rows:
        ds.load_table(Table(
            "wide", Schema.of(("k", T.INT), ("v", T.INT)),
            [{"k": i % 7, "v": i} for i in range(wide_rows)]))
    return ds


# ---------------------------------------------------------------------------
# Deterministic auto splits
# ---------------------------------------------------------------------------

class TestAutoSplits:
    def test_small_tables_stay_single_split(self):
        assert auto_split_rows(0) is None
        assert auto_split_rows(AUTO_SPLIT_MIN_ROWS) is None

    def test_large_tables_split_toward_target(self):
        n = AUTO_SPLIT_MIN_ROWS * AUTO_SPLIT_TARGET_TASKS * 4
        rows = auto_split_rows(n)
        assert rows == n // AUTO_SPLIT_TARGET_TASKS
        # Never below the floor, however large the target task count.
        assert auto_split_rows(AUTO_SPLIT_MIN_ROWS + 1) == AUTO_SPLIT_MIN_ROWS

    def test_auto_accepted_by_task_graph(self):
        graph = JobTaskGraph(picklable_job("j"), small_datastore(),
                             split_rows="auto")
        assert len(graph.map_tasks) == 1  # 5 rows: below the floor

        big = small_datastore(wide_rows=AUTO_SPLIT_MIN_ROWS * 3)
        graph = JobTaskGraph(picklable_job("j", dataset="wide"), big,
                             split_rows="auto")
        assert len(graph.map_tasks) == 3

    def test_bad_split_spelling_rejected(self):
        with pytest.raises(ExecutionError, match="split_rows"):
            JobTaskGraph(picklable_job("j"), small_datastore(),
                         split_rows="eight")

    def test_auto_decomposition_is_executor_invariant(self):
        # The split plan is a function of (job, split_rows) only — the
        # byte-identity invariant depends on it.
        ds = small_datastore(wide_rows=AUTO_SPLIT_MIN_ROWS * 3)
        job = picklable_job("j", dataset="wide")
        serial = Runtime(ds, split_rows="auto", keep_trace=True)
        serial.run_job(job)
        parallel = Runtime(ds, executor=ParallelExecutor(max_workers=4),
                           split_rows="auto", keep_trace=True)
        parallel.run_job(job)
        maps = lambda tr: sorted(t.task_id for t in tr.tasks.values()
                                 if t.kind == "map")
        assert maps(serial.trace) == maps(parallel.trace)


# ---------------------------------------------------------------------------
# Auto parallelism
# ---------------------------------------------------------------------------

class TestAutoParallelism:
    def test_zero_means_cpu_count(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 6)
        ex = make_executor(0)
        assert isinstance(ex, ParallelExecutor)
        assert ex.max_workers == 6

    def test_cpu_count_unknown_falls_back(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert default_worker_count() == 4

    def test_worker_count_is_bounded(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 512)
        assert default_worker_count() == 32

    def test_negative_parallelism_rejected(self):
        with pytest.raises(ExecutionError, match="parallelism"):
            make_executor(-1)


# ---------------------------------------------------------------------------
# Identity: dataflow == wave == golden, everywhere
# ---------------------------------------------------------------------------

class TestDataflowIdentity:
    @pytest.mark.parametrize("name", sorted(paper_queries()))
    def test_paper_queries_identical_to_wave(self, name, datastore):
        tr = translate_sql(paper_queries()[name], catalog=datastore.catalog,
                           namespace=f"df.{name}")
        wave = run_translation(tr, datastore, scheduler="wave")
        for parallelism in (1, 4):
            got = run_translation(tr, datastore, parallelism=parallelism,
                                  scheduler="dataflow")
            assert got.rows == wave.rows, (name, parallelism)
            assert [r.counters.comparable() for r in got.runs] == \
                [r.counters.comparable() for r in wave.runs]

    def test_identical_with_explicit_and_auto_splits(self, datastore):
        tr = translate_sql(paper_queries()["q21"], catalog=datastore.catalog,
                           namespace=f"df.split{next(_ns)}")
        for split_rows in (None, "auto", 64):
            wave = run_translation(tr, datastore, split_rows=split_rows,
                                   scheduler="wave")
            flow = run_translation(tr, datastore, split_rows=split_rows,
                                   parallelism=4, scheduler="dataflow")
            assert flow.rows == wave.rows, split_rows
            assert [r.counters.comparable() for r in flow.runs] == \
                [r.counters.comparable() for r in wave.runs]

    def test_identical_under_result_cache(self, datastore):
        tr = translate_sql(paper_queries()["q17"], catalog=datastore.catalog,
                           namespace=f"df.cache{next(_ns)}")
        cold = run_translation(tr, datastore, scheduler="wave")
        cache = ResultCache(budget_bytes=64 * 1024 * 1024)
        miss = run_translation(tr, datastore, parallelism=4, cache=cache,
                               scheduler="dataflow")
        hit = run_translation(tr, datastore, parallelism=4, cache=cache,
                              scheduler="dataflow")
        assert miss.rows == cold.rows == hit.rows
        assert all(not r.cached for r in miss.runs)
        assert all(r.cached for r in hit.runs)
        for a, b in zip(cold.runs, hit.runs):
            assert a.counters.comparable() == b.counters.comparable()

    def test_cache_admits_as_jobs_complete(self, datastore):
        # A chain executed once must be fully served from cache on the
        # second pass — admission happens per job at finalize, not at
        # at the end of a wave.
        tr = translate_sql(paper_queries()["q21"], catalog=datastore.catalog,
                           namespace=f"df.admit{next(_ns)}")
        cache = ResultCache(budget_bytes=64 * 1024 * 1024)
        run_translation(tr, datastore, parallelism=4, cache=cache)
        again = run_translation(tr, datastore, parallelism=4, cache=cache)
        assert all(r.cached for r in again.runs)

    def test_process_pool_identity_for_picklable_jobs(
            self, suite_executor_kind):
        ds = small_datastore(wide_rows=300)
        jobs = [picklable_job("a", dataset="wide", out="a.out"),
                picklable_job("b", dataset="a.out", out="b.out"),
                picklable_job("c", dataset="nums", out="c.out")]
        serial = Runtime(small_datastore(wide_rows=300))
        base = serial.run_jobs([picklable_job("a", dataset="wide",
                                              out="a.out"),
                                picklable_job("b", dataset="a.out",
                                              out="b.out"),
                                picklable_job("c", dataset="nums",
                                              out="c.out")])
        runtime = Runtime(ds, executor=ParallelExecutor(
            max_workers=2, kind=suite_executor_kind))
        runs = runtime.run_jobs(jobs)
        assert [r.counters.comparable() for r in runs] == \
            [r.counters.comparable() for r in base]
        want = serial.datastore.intermediate("b.out").rows
        assert ds.intermediate("b.out").rows == want


# ---------------------------------------------------------------------------
# Trace invariants and the scheduling profile
# ---------------------------------------------------------------------------

def _assert_trace_invariants(trace):
    assert trace.tasks
    for tid, t in trace.tasks.items():
        assert t.ready_t <= t.start_t <= t.finish_t, tid
        for pre in trace.edges.get(tid, ()):
            assert trace.tasks[pre].finish_t <= t.start_t, (pre, tid)


class TestSchedulingProfile:
    @pytest.mark.parametrize("scheduler", ["dataflow", "wave"])
    def test_trace_invariants_hold(self, datastore, scheduler):
        tr = translate_sql(paper_queries()["q21"], catalog=datastore.catalog,
                           namespace=f"df.trace{next(_ns)}.{scheduler}")
        res = run_translation(tr, datastore, parallelism=4, keep_trace=True,
                              scheduler=scheduler)
        _assert_trace_invariants(res.trace)
        summary = res.trace.schedule_summary()
        for key in ("scheduler", "workers", "tasks", "makespan_s", "busy_s",
                    "idle_s", "utilization", "critical_path_s",
                    "critical_path", "cross_job_overlap"):
            assert key in summary, key
        assert summary["scheduler"] == scheduler
        assert summary["workers"] == 4
        assert 0.0 < summary["critical_path_s"] <= summary["makespan_s"] + 1e-9
        assert summary["critical_path"], "critical path must be non-empty"
        # The path must be a real chain through the recorded edges.
        path = summary["critical_path"]
        for pre, nxt in zip(path, path[1:]):
            assert pre in res.trace.edges.get(nxt, ()), (pre, nxt)

    @pytest.mark.parametrize("scheduler", ["dataflow", "wave"])
    def test_width_inspections_work_on_both_traces(self, datastore,
                                                   scheduler):
        tr = translate_sql(paper_queries()["q21"], mode="one_to_one",
                           catalog=datastore.catalog,
                           namespace=f"df.width{next(_ns)}.{scheduler}")
        res = run_translation(tr, datastore, parallelism=4, keep_trace=True,
                              scheduler=scheduler)
        assert res.trace.max_wave_width > 1
        batches = res.trace.concurrent_job_batches()
        assert batches and len(set(batches[0][2])) > 1

    @pytest.mark.skipif(bool(os.environ.get("REPRO_SUITE_SPILL")),
                        reason="suite spill leg moves shuffle work to "
                               "scheduler-side run ingest by design, "
                               "which this wall-clock ratio excludes")
    def test_serial_dataflow_has_full_utilization(self):
        runtime = Runtime(small_datastore(wide_rows=3000), keep_trace=True)
        runtime.run_job(picklable_job("solo", dataset="wide"))
        s = runtime.trace.schedule_summary()
        assert s["workers"] == 1
        assert s["utilization"] > 0.9

    def test_reduce_overlaps_unrelated_jobs_map(self):
        # One slow independent scan (wide, per-record sleep) next to a
        # fast two-job chain: with two workers the chain's reduces must
        # run while the slow map still holds the other worker — the
        # cross-job overlap waves structurally forbid.
        ds = small_datastore(wide_rows=60)
        jobs = [picklable_job("slow", dataset="wide", out="slow.out",
                              emit=_emit_kv_slow),
                picklable_job("c1", dataset="nums", out="c1.out"),
                picklable_job("c2", dataset="c1.out", out="c2.out")]
        runtime = Runtime(ds, executor=ParallelExecutor(max_workers=2),
                          keep_trace=True)
        runtime.run_jobs(jobs)
        overlaps = runtime.trace.cross_job_overlap()
        assert any("slow" in map_id for _, map_id in overlaps), overlaps
        reduce_jobs = {rid.split("/")[0] for rid, _ in overlaps}
        assert reduce_jobs & {"c1", "c2"}
        _assert_trace_invariants(runtime.trace)


# ---------------------------------------------------------------------------
# Simulated chain makespan (cost-model list scheduling)
# ---------------------------------------------------------------------------

class TestChainMakespan:
    def _result(self, datastore, mode="ysmart"):
        tr = translate_sql(paper_queries()["q21"], mode=mode,
                           catalog=datastore.catalog,
                           namespace=f"df.sim{next(_ns)}")
        res = run_translation(tr, datastore)
        return tr, res

    def test_respects_dependencies_and_sequential_bound(self, datastore):
        tr, res = self._result(datastore)
        model = HadoopCostModel(small_cluster())
        chain = model.chain_makespan(res.runs, tr.dependencies())
        assert chain.makespan_s <= chain.sequential_s + 1e-9
        assert chain.overlap_speedup >= 1.0
        finish = {s.job_id: s.finish_s for s in chain.spans}
        for span in chain.spans:
            assert span.ready_s <= span.start_s <= span.finish_s
            for dep in span.depends_on:
                assert finish[dep] <= span.ready_s + 1e-9

    def test_independent_jobs_beat_sequential(self, datastore):
        tr, res = self._result(datastore, mode="one_to_one")
        model = HadoopCostModel(small_cluster())
        chain = model.chain_makespan(res.runs, tr.dependencies())
        assert chain.overlap_speedup > 1.0

    def test_cached_runs_cost_nothing(self, datastore):
        tr, res = self._result(datastore)
        for run in res.runs:
            run.cached = True
        model = HadoopCostModel(small_cluster())
        chain = model.chain_makespan(res.runs, tr.dependencies())
        assert chain.makespan_s == 0.0
        assert all(s.cached and s.finish_s == s.ready_s
                   for s in chain.spans)

    def test_cycle_rejected(self, datastore):
        tr, res = self._result(datastore)
        ids = [r.job_id for r in res.runs[:2]]
        cyclic = {ids[0]: [ids[1]], ids[1]: [ids[0]]}
        model = HadoopCostModel(small_cluster())
        with pytest.raises(ConfigError, match="cycle"):
            model.chain_makespan(res.runs[:2], cyclic)
