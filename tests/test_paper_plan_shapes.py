"""Locks the exact plan shapes of the paper's queries to the figures.

These assertions pin the reproduction to the paper: the post-order
operator sequences match Fig. 2(a), Fig. 4, and Fig. 8, and the merged
YSmart job compositions match the Sec. VII-A.2 analysis verbatim.  If a
planner change alters any of these, the diff is a fidelity question, not
just a code question.
"""

import pytest

from repro.core.translator import translate_sql
from repro.plan.explain import plan_signature
from repro.workloads.queries import paper_queries, plan_paper_query


class TestFigureShapes:
    def test_q17_matches_fig4(self):
        """Fig. 4: AGG1 (inner), JOIN1 (outer), JOIN2, AGG2."""
        sig = plan_signature(plan_paper_query("q17"))
        assert sig == [
            "SCAN lineitem", "AGG1",
            "SCAN lineitem", "SCAN part", "JOIN1",
            "JOIN2", "AGG2",
        ]

    def test_qcsa_matches_fig2a(self):
        """Fig. 2(a): JOIN1, AGG1, AGG2, JOIN2, AGG3, AGG4 bottom-up."""
        sig = plan_signature(plan_paper_query("q_csa"))
        assert sig == [
            "SCAN clicks",
            "SCAN clicks", "SCAN clicks", "JOIN1",
            "AGG1", "AGG2", "JOIN2", "AGG3", "AGG4",
        ]

    def test_q18_matches_fig8a(self):
        """Fig. 8(a): JOIN1(lineitem, orders), AGG1, JOIN2, then the
        customer join, final aggregation and sort."""
        sig = plan_signature(plan_paper_query("q18"))
        assert sig == [
            "SCAN lineitem", "SCAN orders", "JOIN1",
            "SCAN lineitem", "AGG1", "JOIN2",
            "SCAN customer", "JOIN3", "AGG2", "SORT1",
        ]

    def test_q21_subtree_matches_fig8b(self):
        """Fig. 8(b): JOIN1, AGG1, JOIN2, AGG2, Left Outer Join 1."""
        plan = plan_paper_query("q21_subtree")
        sig = plan_signature(plan)
        assert sig == [
            "SCAN lineitem", "SCAN orders", "JOIN1",
            "SCAN lineitem", "AGG1", "JOIN2",
            "SCAN lineitem", "AGG2", "JOIN3",
        ]
        loj = plan
        assert loj.label == "JOIN3" and loj.join_type == "left"

    def test_q21_subtree_scans_lineitem_three_times(self):
        """The paper's motivating observation: the naive plan scans
        lineitem three times (Sec. VII-C's 65%-of-time jobs)."""
        sig = plan_signature(plan_paper_query("q21_subtree"))
        assert sig.count("SCAN lineitem") == 3


class TestMergedJobCompositions:
    """The exact operator sets of YSmart's merged jobs (Sec. VII-A.2)."""

    def _names(self, query):
        tr = translate_sql(paper_queries()[query], mode="ysmart",
                           namespace=f"shape.{query}")
        return [job.name for job in tr.jobs]

    def test_q17(self):
        assert self._names("q17") == ["AGG1+JOIN1+JOIN2", "AGG2"]

    def test_qcsa(self):
        assert self._names("q_csa") == [
            "JOIN1+AGG1+AGG2+JOIN2+AGG3", "AGG4"]

    def test_q21_subtree(self):
        assert self._names("q21_subtree") == [
            "JOIN1+AGG1+JOIN2+AGG2+JOIN3"]

    def test_q18(self):
        assert self._names("q18") == [
            "JOIN1+AGG1+JOIN2", "JOIN3+AGG2", "SORT1"]

    def test_q21_full(self):
        names = self._names("q21")
        assert names[0] == "JOIN1+AGG1+JOIN2+AGG2+JOIN3"
        assert len(names) == 5
