"""Tests for whole-stage code generation (``repro.expr.codegen``).

The load-bearing contract: generated kernels are **byte-identical** to
the interpreted engine in rows, partition assignment, and every
``comparable()`` counter — across executors, schedulers, data planes,
fault injection, and spill budgets.  Anything codegen cannot express
falls back per construct, never wrong.

Three layers of evidence:

* expression pins and a hypothesis property suite proving the rendered
  Python agrees with ``compile_scalar``/``compile_predicate`` on SQL
  three-valued logic (NULL in IN lists, NULL BETWEEN bounds, CASE with
  no ELSE, division by zero, ``||`` with NULL);
* generated-source determinism: byte-stable across translations and
  across interpreter processes with different hash seeds;
* end-to-end identity matrices over the engine configuration space,
  plus counter bookkeeping (compiles / cache hits / fallbacks).
"""

import hashlib
import itertools
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.translator import translate_sql
from repro.expr.codegen import (
    _PREAMBLE,
    _Ctx,
    _render,
    _render_true,
    RawEmit,
    generate_job,
    job_source,
    resolve_codegen,
    specialize,
)
from repro.expr.compiler import compile_predicate, compile_scalar
from repro.errors import ExecutionError, NameResolutionError
from repro.mr.faultplan import FaultPlan
from repro.sqlparser.ast import (
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    FuncCall,
    InList,
    IsNull,
    Literal,
    UnaryOp,
)
from repro.workloads.queries import paper_queries
from repro.workloads.runner import run_query, run_translation

_ns = itertools.count(1)

AGG_SQL = ("SELECT l_orderkey, sum(l_quantity) AS qty FROM lineitem "
           "GROUP BY l_orderkey")
FILTER_AGG_SQL = ("SELECT l_orderkey, avg(l_quantity) AS q, count(*) AS n "
                  "FROM lineitem WHERE l_quantity > 10.0 "
                  "GROUP BY l_orderkey")


def _namespace(prefix="cg"):
    return f"{prefix}{next(_ns)}"


# ---------------------------------------------------------------------------
# Expression-level identity: rendered Python vs the interpreted compiler
# ---------------------------------------------------------------------------

def _bare_ref(table, name):
    """Codegen resolver: a subscript expression over the row dict."""
    assert table is None
    return f"_r[{name!r}]"


def _bare_key(table, name):
    """Interpreted resolver: the row key itself."""
    assert table is None
    return name


def _eval_env():
    env = {"_NRE": NameResolutionError}
    exec(compile(_PREAMBLE, "<test-preamble>", "exec"), env)
    return env


def _gen_value(expr, row):
    code = _render(expr, _bare_ref, _Ctx())
    return eval(code, _eval_env(), {"_r": row})  # noqa: S307 - test oracle


def _gen_true(expr, row):
    code = _render_true(expr, _bare_ref, _Ctx())
    return bool(eval(code, _eval_env(), {"_r": row}))  # noqa: S307


def _interp_value(expr, row):
    return compile_scalar(expr, _bare_key)(row)


def _agree(expr, row):
    """Assert both engines produce the same scalar value AND the same
    filter decision; return the shared scalar value."""
    interp = _interp_value(expr, row)
    gen = _gen_value(expr, row)
    assert gen == interp and type(gen) is type(interp), \
        f"{expr.to_sql()} on {row}: interpreted={interp!r} generated={gen!r}"
    assert _gen_true(expr, row) == compile_predicate(expr, _bare_key)(row)
    return interp


def col(name):
    return ColumnRef(None, name)


def lits(*values):
    return tuple(Literal(v) for v in values)


class TestThreeValuedPins:
    """The 3VL edge cases both engines must agree on, pinned one by one
    (each also asserts the SQL-mandated value, not just agreement)."""

    def test_null_in_list(self):
        row = {"x": 2}
        # A match decides True regardless of the NULL item ...
        assert _agree(InList(col("x"), lits(2, None)), row) is True
        # ... but a non-match with a NULL item is unknown, not False.
        assert _agree(InList(col("x"), lits(1, None)), row) is None
        assert _agree(InList(col("x"), lits(1, None), negated=True),
                      row) is None
        assert _agree(InList(col("x"), lits(2, None), negated=True),
                      row) is False
        # NULL operand is unknown either way.
        assert _agree(InList(col("x"), lits(1, 2)), {"x": None}) is None

    def test_between_null_bounds(self):
        expr = Between(col("x"), Literal(None), Literal(5))
        assert _agree(expr, {"x": 3}) is None
        expr = Between(col("x"), Literal(1), Literal(None))
        assert _agree(expr, {"x": 3}) is None
        assert _agree(Between(col("x"), Literal(1), Literal(5)),
                      {"x": None}) is None
        assert _agree(Between(col("x"), Literal(1), Literal(5)),
                      {"x": 5}) is True

    def test_case_with_no_else(self):
        expr = CaseWhen(branches=((BinaryOp(">", col("x"), Literal(0)),
                                   Literal("pos")),))
        assert _agree(expr, {"x": 1}) == "pos"
        assert _agree(expr, {"x": -1}) is None   # no ELSE -> NULL
        assert _agree(expr, {"x": None}) is None  # unknown cond skips branch

    def test_division_by_zero_is_null(self):
        expr = BinaryOp("/", col("x"), col("y"))
        assert _agree(expr, {"x": 7, "y": 0}) is None
        assert _agree(expr, {"x": 7, "y": 0.0}) is None
        assert _agree(expr, {"x": 7, "y": 2}) == 3.5
        assert _agree(expr, {"x": None, "y": 2}) is None

    def test_concat_with_null_operands(self):
        expr = BinaryOp("||", col("x"), col("y"))
        assert _agree(expr, {"x": "a", "y": None}) is None
        assert _agree(expr, {"x": None, "y": "b"}) is None
        assert _agree(expr, {"x": "a", "y": 1}) == "a1"

    def test_kleene_connectives(self):
        null = IsNull(col("missing_is_fine_here"))
        t = BinaryOp("=", Literal(1), Literal(1))
        f = BinaryOp("=", Literal(1), Literal(2))
        unknown = BinaryOp("=", col("x"), Literal(1))
        row = {"x": None}
        # NULL AND False -> False; NULL OR True -> True (Kleene).
        assert _agree(BinaryOp("AND", unknown, f), row) is False
        assert _agree(BinaryOp("OR", unknown, t), row) is True
        assert _agree(BinaryOp("AND", unknown, t), row) is None
        assert _agree(BinaryOp("OR", unknown, f), row) is None
        assert _agree(UnaryOp("NOT", unknown), row) is None
        del null


# ---------------------------------------------------------------------------
# Hypothesis property suite: random expression trees, random rows
# ---------------------------------------------------------------------------

_COLS = ("a", "b", "c")

_scalar_values = st.one_of(
    st.none(),
    st.integers(min_value=-50, max_value=50),
    st.floats(min_value=-50, max_value=50, allow_nan=False, width=32),
)

_rows = st.fixed_dictionaries({c: _scalar_values for c in _COLS})

_numeric_leaf = st.one_of(
    st.sampled_from(_COLS).map(col),
    st.integers(min_value=-9, max_value=9).map(Literal),
    st.floats(min_value=-9, max_value=9, allow_nan=False,
              width=16).map(Literal),
    st.just(Literal(None)),
)


def _numeric_nodes(children):
    binop = st.builds(BinaryOp, st.sampled_from(["+", "-", "*", "/"]),
                      children, children)
    neg = st.builds(UnaryOp, st.just("-"), children)
    case = st.builds(
        lambda c, v, d: CaseWhen(branches=((c, v),), default=d),
        st.builds(BinaryOp, st.sampled_from(["<", ">", "=", "<="]),
                  children, children),
        children, children)
    fn = st.builds(lambda a, b: FuncCall("coalesce", (a, b)),
                   children, children)
    return st.one_of(binop, neg, case, fn)


_numeric_exprs = st.recursive(_numeric_leaf, _numeric_nodes, max_leaves=8)


def _bool_leaves(num):
    cmp_ = st.builds(BinaryOp,
                     st.sampled_from(["=", "<>", "<", ">", "<=", ">="]),
                     num, num)
    isnull = st.builds(IsNull, num, st.booleans())
    between = st.builds(Between, num, num, num)
    inlist = st.builds(
        InList, num,
        st.lists(st.one_of(st.integers(min_value=-9, max_value=9),
                           st.none()),
                 min_size=1, max_size=4).map(lambda xs: lits(*xs)),
        st.booleans())
    return st.one_of(cmp_, isnull, between, inlist)


def _bool_nodes(children):
    return st.one_of(
        st.builds(BinaryOp, st.sampled_from(["AND", "OR"]),
                  children, children),
        st.builds(UnaryOp, st.just("NOT"), children))


_bool_exprs = st.recursive(_bool_leaves(_numeric_exprs), _bool_nodes,
                           max_leaves=6)


class TestPropertyIdentity:
    @settings(max_examples=150, deadline=None)
    @given(expr=_numeric_exprs, row=_rows)
    def test_scalar_values_agree(self, expr, row):
        _agree(expr, row)

    @settings(max_examples=150, deadline=None)
    @given(expr=_bool_exprs, row=_rows)
    def test_filter_decisions_agree(self, expr, row):
        _agree(expr, row)

    @settings(max_examples=60, deadline=None)
    @given(expr=_bool_exprs, row=_rows)
    def test_rendered_source_is_pure(self, expr, row):
        # Rendering twice yields identical text, and evaluating that
        # text twice yields identical decisions (no hidden state).
        a = _render_true(expr, _bare_ref, _Ctx())
        b = _render_true(expr, _bare_ref, _Ctx())
        assert a == b
        env = _eval_env()
        first = eval(a, env, {"_r": row})  # noqa: S307
        assert eval(a, env, {"_r": row}) == first  # noqa: S307


# ---------------------------------------------------------------------------
# Per-record emit identity: generated emits vs interpreted closures
# ---------------------------------------------------------------------------

class TestEmitIdentity:
    def _emit_pairs(self, sql, datastore):
        """(interpreted spec, specialized spec, records) triples for
        every generated map emit of every job of ``sql``."""
        tr = translate_sql(sql, catalog=datastore.catalog,
                           namespace=_namespace())
        out = []
        for job in tr.jobs:
            new_job, _ = specialize(job)
            if new_job is None:
                continue
            for mi, new_mi in zip(job.map_inputs, new_job.map_inputs):
                if not datastore.has_table(mi.dataset):
                    continue  # intermediate dataset: not materialized here
                records = datastore.table(mi.dataset).rows
                for spec, new_spec in zip(mi.specs, new_mi.specs):
                    if new_spec.cg_loop is not None:
                        out.append((spec, new_spec, records))
        return out

    def test_generated_emits_match_interpreted(self, datastore):
        pairs = []
        for sql in paper_queries().values():
            pairs.extend(self._emit_pairs(sql, datastore))
        assert pairs  # the paper workload must exercise codegen
        for spec, new_spec, records in pairs:
            for record in records:
                assert new_spec.emit(record) == spec.emit(record)

    def test_generated_loops_match_interpreted(self, datastore):
        for spec, new_spec, records in self._emit_pairs(
                paper_queries()["q17"], datastore):
            pairs = new_spec.cg_loop(records)
            assert all(tv.roles == frozenset((spec.role,))
                       for _, tv in pairs)
            loop = [(key, tv.payload) for key, tv in pairs]
            single = [pair for record in records
                      if (pair := spec.emit(record)) is not None]
            assert loop == single

    def test_missing_column_error_identity(self, datastore):
        """A malformed record produces the same outcome from both
        engines: the generated emit's KeyError reruns the interpreted
        closure, which yields the identical value or raises its own
        resolver error."""
        bad = {"not_the_column": 1}
        checked = 0
        for sql in paper_queries().values():
            for spec, new_spec, _ in self._emit_pairs(sql, datastore):
                try:
                    expected = spec.emit(bad)
                except Exception as exc:  # noqa: BLE001 - identity oracle
                    with pytest.raises(type(exc)):
                        new_spec.emit(bad)
                else:
                    assert new_spec.emit(bad) == expected
                checked += 1
        assert checked > 0


# ---------------------------------------------------------------------------
# End-to-end identity across the engine configuration space
# ---------------------------------------------------------------------------

def _norm_comparable(run, namespace):
    data = run.counters.comparable()
    data.pop("job_id", None)
    for key, value in list(data.items()):
        if isinstance(value, dict):
            data[key] = {k.replace(namespace, "NS"): v
                         for k, v in value.items()}
    return data


def _arms(sql, datastore, **kwargs):
    """Run ``sql`` with codegen on and off; return both results with
    namespace-normalized comparable counters."""
    results = {}
    for arm in (True, False):
        ns = _namespace()
        result = run_query(sql, datastore, namespace=ns, codegen=arm,
                           **kwargs)
        results[arm] = (result,
                        [_norm_comparable(r, ns) for r in result.runs])
    return results


def _assert_identical(results):
    on, off = results[True], results[False]
    assert on[0].rows == off[0].rows
    assert on[1] == off[1]
    # The toggle itself must never leak into comparable():
    gen_counters = [r.counters for r in on[0].runs]
    assert any(c.codegen_compiles or c.codegen_cache_hits
               for c in gen_counters)
    assert all(c.codegen_compiles == 0 and c.codegen_cache_hits == 0
               for r in off[0].runs for c in [r.counters])


class TestEndToEndIdentity:
    @pytest.mark.parametrize("scheduler", ["dataflow", "wave"])
    @pytest.mark.parametrize("data_plane", ["batch", "row"])
    @pytest.mark.parametrize("parallelism", [1, 2])
    def test_identity_matrix(self, datastore, scheduler, data_plane,
                             parallelism):
        _assert_identical(_arms(
            FILTER_AGG_SQL, datastore, scheduler=scheduler,
            data_plane=data_plane, parallelism=parallelism))

    @pytest.mark.parametrize("name", sorted(paper_queries()))
    def test_identity_paper_workload(self, datastore, name):
        _assert_identical(_arms(paper_queries()[name], datastore))

    @pytest.mark.parametrize("scheduler", ["dataflow", "wave"])
    def test_identity_under_fault_injection(self, datastore, scheduler):
        _assert_identical(_arms(
            paper_queries()["q17"], datastore, scheduler=scheduler,
            fault_plan=FaultPlan(0.05, seed=3), max_attempts=20))

    def test_identity_under_spill_budget(self, datastore):
        _assert_identical(_arms(
            paper_queries()["q17"], datastore, memory_budget_mb=0.05))


# ---------------------------------------------------------------------------
# Determinism of the generated source
# ---------------------------------------------------------------------------

class TestSourceDeterminism:
    def test_source_stable_across_translations(self, datastore):
        for sql in paper_queries().values():
            first = [job_source(j) for j in translate_sql(
                sql, catalog=datastore.catalog,
                namespace=_namespace()).jobs]
            second = [job_source(j) for j in translate_sql(
                sql, catalog=datastore.catalog,
                namespace=_namespace()).jobs]
            assert first == second
            assert any(s is not None for s in first)

    def test_source_stable_across_interpreters(self):
        """No dict-order or id()-dependent naming: two fresh interpreter
        processes with different hash seeds render byte-identical
        modules for the whole paper workload."""
        script = (
            "import hashlib\n"
            "from repro.core.translator import translate_sql\n"
            "from repro.expr.codegen import job_source\n"
            "from repro.workloads.queries import paper_queries\n"
            "for name in sorted(paper_queries()):\n"
            "    sql = paper_queries()[name]\n"
            "    for job in translate_sql(sql, namespace='det').jobs:\n"
            "        src = job_source(job) or ''\n"
            "        digest = hashlib.sha256(src.encode()).hexdigest()\n"
            "        print(job.job_id, digest)\n")

        def digests(seed):
            proc = subprocess.run(
                [sys.executable, "-c", script], capture_output=True,
                text=True, check=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed})
            return proc.stdout

        first = digests("0")
        assert first.strip()
        assert first == digests("4242")


# ---------------------------------------------------------------------------
# Bookkeeping: compiles, cache hits, fallbacks, and the toggle
# ---------------------------------------------------------------------------

class TestCounters:
    def test_repeat_run_hits_code_cache(self, datastore):
        sql = FILTER_AGG_SQL
        # codegen=True explicitly: this test is about the code cache, so
        # it must hold on the REPRO_SUITE_CODEGEN=0 suite leg too.
        cold = run_query(sql, datastore, namespace=_namespace(),
                         codegen=True)
        warm = run_query(sql, datastore, namespace=_namespace(),
                         codegen=True)
        assert sum(r.counters.codegen_compiles
                   + r.counters.codegen_cache_hits
                   for r in cold.runs) > 0
        assert sum(r.counters.codegen_compiles for r in warm.runs) == 0
        assert sum(r.counters.codegen_cache_hits for r in warm.runs) > 0
        assert warm.rows == cold.rows

    def test_unsupported_construct_counts_fallback(self, datastore):
        tr = translate_sql(AGG_SQL, catalog=datastore.catalog,
                           namespace=_namespace())
        job = tr.jobs[0]
        baseline = run_translation(tr, datastore, codegen=False)
        spec = job.map_inputs[0].specs[0]
        original = spec.cg
        bad = BinaryOp("LIKE", ColumnRef(None, "l_orderkey"), Literal("x"))
        try:
            spec.cg = RawEmit("AGG1.in", ("l_orderkey",),
                              (("l_quantity", "l_quantity"),),
                              filters=(bad,),
                              qmap=(("l_orderkey", "l_orderkey"),))
            gen = generate_job(job)
            assert gen is not None
            assert gen.stats.fallbacks == 1
            assert (0, 0) not in gen.spec_plans
            # End to end, the spec simply stays interpreted:
            result = run_translation(tr, datastore, codegen=True)
            assert result.runs[0].counters.codegen_fallbacks == 1
            assert result.rows == baseline.rows
        finally:
            spec.cg = original

    def test_resolve_codegen(self, monkeypatch):
        monkeypatch.delenv("REPRO_CODEGEN", raising=False)
        assert resolve_codegen(None) is True  # default on
        monkeypatch.setenv("REPRO_CODEGEN", "0")
        assert resolve_codegen(None) is False
        assert resolve_codegen(True) is True  # explicit beats env
        assert resolve_codegen("on") is True
        assert resolve_codegen("off") is False
        with pytest.raises(ExecutionError):
            resolve_codegen("maybe")

    def test_codegen_counters_excluded_from_comparable(self):
        from repro.mr.counters import JobCounters
        comparable = JobCounters(job_id="x").comparable()
        for name in ("codegen_compiles", "codegen_cache_hits",
                     "codegen_fallbacks"):
            assert name not in comparable
