"""Tests for UNION ALL: parsing, planning, execution, translation."""

import pytest

from repro.core.translator import translate_sql
from repro.data import rows_equal_unordered
from repro.errors import PlanError, SqlSyntaxError
from repro.mr.engine import run_jobs
from repro.plan.nodes import UnionNode
from repro.plan.planner import plan_query
from repro.refexec import run_reference
from repro.sqlparser.ast import SelectStmt, UnionStmt
from repro.sqlparser.parser import parse_sql


def check_modes(sql, datastore, namespace):
    ref = run_reference(plan_query(parse_sql(sql), datastore.catalog),
                        datastore)
    for mode in ("ysmart", "ysmart_ic_tc", "one_to_one", "hive", "pig"):
        tr = translate_sql(sql, mode=mode, catalog=datastore.catalog,
                           namespace=f"{namespace}.{mode}")
        run_jobs(tr.jobs, datastore)
        rows = datastore.intermediate(tr.final_dataset).rows
        assert rows_equal_unordered(rows, ref.rows, tr.output_columns,
                                    1e-6), mode
    return ref


class TestParsing:
    def test_two_branches(self):
        stmt = parse_sql("SELECT a FROM t UNION ALL SELECT b FROM u")
        assert isinstance(stmt, UnionStmt)
        assert len(stmt.branches) == 2
        assert all(isinstance(b, SelectStmt) for b in stmt.branches)

    def test_three_branches(self):
        stmt = parse_sql("SELECT a FROM t UNION ALL SELECT b FROM u "
                         "UNION ALL SELECT c FROM v")
        assert len(stmt.branches) == 3

    def test_union_requires_all(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT a FROM t UNION SELECT b FROM u")

    def test_union_in_derived_table(self):
        stmt = parse_sql("SELECT d.a FROM (SELECT a FROM t UNION ALL "
                         "SELECT b FROM u) AS d")
        assert isinstance(stmt.from_items[0].query, UnionStmt)

    def test_to_sql_roundtrip(self):
        stmt = parse_sql("SELECT a FROM t UNION ALL SELECT b FROM u")
        assert parse_sql(stmt.to_sql()) == stmt


class TestPlanning:
    def test_plan_shape(self, datastore):
        plan = plan_query(parse_sql(
            "SELECT n_name AS x FROM nation UNION ALL "
            "SELECT s_name FROM supplier"), datastore.catalog)
        assert isinstance(plan, UnionNode)
        assert plan.label == "UNION1"
        assert len(plan.children) == 2
        assert plan.output_names == ["x"]

    def test_arity_mismatch_rejected(self, datastore):
        with pytest.raises(PlanError, match="same column count"):
            plan_query(parse_sql(
                "SELECT n_name, n_regionkey FROM nation UNION ALL "
                "SELECT s_name FROM supplier"), datastore.catalog)

    def test_union_has_no_partition_key(self, datastore):
        from repro.core.correlation import CorrelationAnalysis
        plan = plan_query(parse_sql(
            "SELECT n_regionkey AS r FROM nation UNION ALL "
            "SELECT n_regionkey FROM nation"), datastore.catalog)
        assert CorrelationAnalysis(plan).pk(plan) is None


class TestExecution:
    def test_basic_union(self, datastore, fresh_namespace):
        ref = check_modes(
            "SELECT n_name AS name, n_nationkey AS k FROM nation "
            "WHERE n_regionkey = 0 UNION ALL "
            "SELECT s_name, s_suppkey FROM supplier",
            datastore, fresh_namespace)
        nations = len([r for r in datastore.table("nation").rows
                       if r["n_regionkey"] == 0])
        assert len(ref.rows) == nations + len(datastore.table("supplier"))

    def test_duplicates_preserved(self, datastore, fresh_namespace):
        ref = check_modes(
            "SELECT n_regionkey AS r FROM nation UNION ALL "
            "SELECT n_regionkey FROM nation",
            datastore, fresh_namespace)
        assert len(ref.rows) == 2 * len(datastore.table("nation"))

    def test_union_feeding_aggregation(self, datastore, fresh_namespace):
        check_modes(
            "SELECT u.k, count(*) AS n FROM "
            "(SELECT o_custkey AS k FROM orders WHERE o_orderstatus = 'F' "
            " UNION ALL SELECT c_custkey FROM customer) AS u GROUP BY u.k",
            datastore, fresh_namespace)

    def test_union_of_aggregations(self, datastore, fresh_namespace):
        check_modes(
            "SELECT u.k, u.v FROM "
            "(SELECT l_orderkey AS k, sum(l_quantity) AS v FROM lineitem "
            " GROUP BY l_orderkey UNION ALL "
            " SELECT o_orderkey, o_totalprice FROM orders) AS u "
            "WHERE u.v > 100",
            datastore, fresh_namespace)

    def test_union_then_order(self, datastore, fresh_namespace):
        check_modes(
            "SELECT r, count(*) AS n FROM "
            "(SELECT n_regionkey AS r FROM nation UNION ALL "
            " SELECT n_regionkey FROM nation) AS u "
            "GROUP BY r ORDER BY n DESC, r",
            datastore, fresh_namespace)

    def test_same_table_branches_share_one_scan(self, datastore,
                                                fresh_namespace):
        """Two branches over the same table become two emit specs on a
        single map input — one scan, like the self-join optimization."""
        sql = ("SELECT n_regionkey AS r FROM nation WHERE n_nationkey < 5 "
               "UNION ALL SELECT n_nationkey FROM nation")
        tr = translate_sql(sql, mode="ysmart", catalog=datastore.catalog,
                           namespace=fresh_namespace)
        runs = run_jobs(tr.jobs, datastore)
        nation_bytes = datastore.table("nation").estimated_bytes()
        assert runs[0].counters.input_bytes["nation"] == nation_bytes
