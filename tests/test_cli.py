"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr()
    return code, out.out, out.err


QAGG = "SELECT cid, count(*) AS n FROM clicks GROUP BY cid"


class TestExplain:
    def test_shows_plan_and_jobs(self, capsys):
        code, out, _ = run_cli(capsys, "explain", QAGG,
                               "--clickstream-users", "10",
                               "--tpch-scale", "0.0005")
        assert code == 0
        assert "Plan tree" in out and "AGG1" in out
        assert "one-op-one-job: 1 jobs" in out

    def test_correlated_query_lists_pairs(self, capsys):
        sql = ("SELECT t.l_orderkey, count(*) AS n FROM "
               "(SELECT l_orderkey, o_custkey FROM lineitem, orders "
               "WHERE l_orderkey = o_orderkey) AS t GROUP BY t.l_orderkey")
        code, out, _ = run_cli(capsys, "explain", sql,
                               "--tpch-scale", "0.0005",
                               "--clickstream-users", "5")
        assert code == 0
        assert "JFC" in out
        assert "YSmart: 1 jobs" in out


class TestRun:
    def test_rows_printed(self, capsys):
        code, out, _ = run_cli(capsys, "run", QAGG,
                               "--clickstream-users", "10",
                               "--tpch-scale", "0.0005")
        assert code == 0
        assert "mode=ysmart jobs=1" in out
        assert "cid | n" in out

    def test_timing_with_cluster(self, capsys):
        code, out, _ = run_cli(capsys, "run", QAGG,
                               "--cluster", "small", "--target-gb", "1",
                               "--clickstream-users", "10",
                               "--tpch-scale", "0.0005")
        assert code == 0
        assert "simulated time on small-2node" in out

    def test_mode_flag(self, capsys):
        code, out, _ = run_cli(capsys, "run", QAGG, "--mode", "hive",
                               "--clickstream-users", "10",
                               "--tpch-scale", "0.0005")
        assert code == 0
        assert "mode=hive" in out

    def test_limit_truncates_output(self, capsys):
        code, out, _ = run_cli(capsys, "run", QAGG, "--limit", "2",
                               "--clickstream-users", "30",
                               "--tpch-scale", "0.0005")
        assert code == 0
        assert "showing first 2" in out


class TestExperiments:
    def test_single_experiment(self, capsys):
        code, out, _ = run_cli(capsys, "experiments", "job-counts",
                               "--tpch-scale", "0.001",
                               "--clickstream-users", "20")
        assert code == 0
        assert "### job-counts" in out
        assert "| q_csa | 2 | 6 | 6 |" in out

    def test_unknown_experiment(self, capsys):
        code, _, err = run_cli(capsys, "experiments", "fig99")
        assert code == 2
        assert "unknown experiment" in err


class TestGenerate:
    def test_writes_tables(self, capsys, tmp_path):
        out_dir = str(tmp_path / "data")
        code, out, _ = run_cli(capsys, "generate", "--out", out_dir,
                               "--tpch-scale", "0.0005",
                               "--clickstream-users", "5")
        assert code == 0
        assert "wrote 7 tables" in out
        import os
        assert os.path.exists(os.path.join(out_dir, "lineitem.tbl"))
        assert os.path.exists(os.path.join(out_dir, "manifest.json"))


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_bad_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "SELECT 1", "--mode", "spark"])


class TestExperimentReporting:
    def test_json_output(self, capsys):
        code, out, _ = run_cli(capsys, "experiments", "job-counts",
                               "--json", "--tpch-scale", "0.001",
                               "--clickstream-users", "10")
        assert code == 0
        import json
        data = json.loads(out)
        assert data[0]["exp_id"] == "job-counts"

    def test_save_and_clean_compare(self, capsys, tmp_path):
        path = str(tmp_path / "base.json")
        code, _, err = run_cli(capsys, "experiments", "job-counts",
                               "--save", path, "--tpch-scale", "0.001",
                               "--clickstream-users", "10")
        assert code == 0 and "saved to" in err
        code, _, err = run_cli(capsys, "experiments", "job-counts",
                               "--compare", path, "--tpch-scale", "0.001",
                               "--clickstream-users", "10")
        assert code == 0
        assert "no drift" in err

    def test_compare_detects_drift(self, capsys, tmp_path):
        import json
        path = str(tmp_path / "base.json")
        run_cli(capsys, "experiments", "job-counts", "--save", path,
                "--tpch-scale", "0.001", "--clickstream-users", "10")
        with open(path) as f:
            data = json.load(f)
        data[0]["rows"][0]["ysmart"] = 99  # corrupt the baseline
        with open(path, "w") as f:
            json.dump(data, f)
        code, _, err = run_cli(capsys, "experiments", "job-counts",
                               "--compare", path, "--tpch-scale", "0.001",
                               "--clickstream-users", "10")
        assert code == 1
        assert "99" in err
