"""Property tests for the record hot-path kernels.

Each optimized kernel in the record path ships with an executable
reference — the formulation the historical engine used — and these
properties assert equivalence on randomized inputs:

* :func:`make_sort_key` orders exactly like
  ``functools.cmp_to_key(_compare_keys)`` (NULLs first, per-position
  descending flags);
* :func:`pairs_bytes` equals the per-pair :func:`pair_bytes` sum;
* the fused :class:`CompiledStages` pipeline equals the historical
  stage-at-a-time multi-pass, and ``run_one`` equals ``run([row])``;
* ``clone()``d reducers share no mutable state with their prototype or
  each other (the contract that let the engine drop ``copy.deepcopy``
  from the reduce path).
"""

from __future__ import annotations

import functools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mr.kv import TaggedValue, TagPolicy, pair_bytes, pairs_bytes
from repro.mr.tasks import _compare_keys, make_sort_key
from repro.ops.tasks import CompiledStages, SPTask, TaskInput
from repro.cmf import CommonReducer


# ---------------------------------------------------------------------------
# Sort-key vectors vs the comparator reference
# ---------------------------------------------------------------------------

_POSITION_TYPES = [
    st.integers(min_value=-50, max_value=50),
    st.floats(min_value=-50, max_value=50, allow_nan=False),
    st.text(max_size=4),
]


@st.composite
def keys_and_flags(draw):
    """Keys of a common width, each position typed consistently (mixed
    int/float is allowed — the engine's numeric canonicalization treats
    them as one domain) and optionally NULL."""
    width = draw(st.integers(min_value=1, max_value=3))
    position = [draw(st.sampled_from(_POSITION_TYPES)) for _ in range(width)]
    key = st.tuples(*[st.one_of(st.none(), strat) for strat in position])
    keys = draw(st.lists(key, min_size=0, max_size=30))
    flags = draw(st.lists(st.booleans(), min_size=width, max_size=width))
    return keys, flags


@settings(max_examples=200, deadline=None)
@given(keys_and_flags())
def test_sort_key_vector_matches_comparator(case):
    keys, ascending = case
    reference = sorted(keys, key=functools.cmp_to_key(
        lambda a, b: _compare_keys(a, b, ascending)))
    assert sorted(keys, key=make_sort_key(ascending)) == reference


@settings(max_examples=100, deadline=None)
@given(keys_and_flags())
def test_all_ascending_fast_path_matches_comparator(case):
    keys, flags = case
    ascending = [True] * len(flags)
    reference = sorted(keys, key=functools.cmp_to_key(
        lambda a, b: _compare_keys(a, b, ascending)))
    assert sorted(keys, key=make_sort_key(ascending)) == reference


# ---------------------------------------------------------------------------
# Batched byte accounting vs the per-pair reference
# ---------------------------------------------------------------------------

_ROLES = ["r1", "r2", "r3", "r4"]

pairs_strategy = st.lists(
    st.tuples(
        st.tuples(st.integers(min_value=0, max_value=999),
                  st.text(max_size=6)),
        st.builds(
            TaggedValue,
            roles=st.sets(st.sampled_from(_ROLES), min_size=1,
                          max_size=len(_ROLES)).map(frozenset),
            payload=st.dictionaries(st.sampled_from(["a", "bb", "ccc"]),
                                    st.integers(0, 10 ** 6), max_size=3),
        ),
    ),
    max_size=25)


@settings(max_examples=100, deadline=None)
@given(pairs=pairs_strategy,
       universe=st.integers(min_value=1, max_value=8),
       policy=st.sampled_from(list(TagPolicy)))
def test_pairs_bytes_matches_per_pair_sum(pairs, universe, policy):
    expected = sum(pair_bytes(key, value, universe, policy)
                   for key, value in pairs)
    assert pairs_bytes(pairs, universe, policy) == expected


# ---------------------------------------------------------------------------
# Fused stage pipeline vs the historical multi-pass
# ---------------------------------------------------------------------------

def _stages_from_ops(ops):
    """A CompiledStages over pre-compiled ops (bypasses plan-node
    compilation so properties can use arbitrary callables)."""
    stages = CompiledStages.__new__(CompiledStages)
    stages._ops = list(ops)
    stages._pipeline = stages._fuse()
    return stages


def _multipass(ops, rows):
    """The historical stage-at-a-time formulation: one full list per
    stage."""
    for kind, op in ops:
        if kind == "filter":
            rows = [r for r in rows if op(r)]
        else:
            rows = [{name: fn(r) for name, fn in op} for r in rows]
    return rows


_FILTERS = {
    "even": lambda r: r["v"] % 2 == 0,
    "positive": lambda r: r["v"] > 0,
    "small": lambda r: abs(r["v"]) < 10,
}
_PROJECTS = {
    "double": [("v", lambda r: r["v"] * 2)],
    "shift": [("v", lambda r: r["v"] - 3), ("orig", lambda r: r["v"])],
}

op_strategy = st.one_of(
    st.sampled_from(sorted(_FILTERS)).map(
        lambda n: ("filter", _FILTERS[n])),
    st.sampled_from(sorted(_PROJECTS)).map(
        lambda n: ("project", _PROJECTS[n])),
)


@settings(max_examples=150, deadline=None)
@given(ops=st.lists(op_strategy, max_size=4),
       values=st.lists(st.integers(min_value=-100, max_value=100),
                       max_size=30))
def test_fused_pipeline_matches_multipass(ops, values):
    rows = [{"v": v} for v in values]
    stages = _stages_from_ops(ops)
    assert stages.run(list(rows)) == _multipass(ops, rows)


@settings(max_examples=150, deadline=None)
@given(ops=st.lists(op_strategy, max_size=4),
       value=st.integers(min_value=-100, max_value=100))
def test_run_one_matches_run_single_row(ops, value):
    stages = _stages_from_ops(ops)
    batch = stages.run([{"v": value}])
    single = stages.run_one({"v": value})
    assert single == (batch[0] if batch else None)


# ---------------------------------------------------------------------------
# Reducer clones share no mutable state
# ---------------------------------------------------------------------------

def _make_reducer():
    return CommonReducer([SPTask("a", TaskInput.shuffle("ra", ["k"])),
                          SPTask("b", TaskInput.shuffle("rb", ["k"]))])


def _tv(roles, **payload):
    return TaggedValue(roles=frozenset(roles), payload=payload)


values_strategy = st.lists(
    st.tuples(st.sets(st.sampled_from(["ra", "rb"]), min_size=1, max_size=2),
              st.integers(0, 99)),
    min_size=1, max_size=15)


@settings(max_examples=100, deadline=None)
@given(groups=st.lists(st.tuples(st.integers(0, 9), values_strategy),
                       min_size=1, max_size=5))
def test_cloned_reducers_share_no_mutable_state(groups):
    prototype = _make_reducer()
    fresh = _make_reducer()

    clones = [prototype.clone() for _ in range(2)]
    for clone in clones:
        outputs = [clone.reduce((key,), [_tv(roles, v=v)
                                         for roles, v in values])
                   for key, values in groups]
        expected = [fresh.reduce((key,), [_tv(roles, v=v)
                                          for roles, v in values])
                    for key, values in groups]
        assert outputs == expected

        # The prototype never saw a value: its op counters stay zero and
        # its tasks' buffers stay empty.
        assert prototype._dispatch == 0 and prototype._compute == 0
        for task in prototype.tasks:
            assert task._buffers == {}
            assert task.compute_ops == 0

    # Clones drained independently: each saw exactly its own dispatches.
    ops = [clone.dispatch_ops() for clone in clones]
    assert ops[0] == ops[1] > 0
    fresh.dispatch_ops()


def test_clone_shares_compiled_config_but_not_tasks():
    prototype = _make_reducer()
    clone = prototype.clone()
    assert clone.tasks is not prototype.tasks
    for orig, dup in zip(prototype.tasks, clone.tasks):
        assert dup is not orig
        assert dup._buffers is not orig._buffers
        # Immutable compiled configuration is shared, not copied.
        assert dup._shuffle_inputs is orig._shuffle_inputs
        assert dup.shuffle_roles is orig.shuffle_roles
        assert dup.stages is orig.stages


def test_protocol_clone_fallback_is_deep():
    """Third-party reducers that don't override clone() still get the
    no-shared-mutable-state contract via the deepcopy fallback."""
    from repro.mr.job import ReducerProtocol

    class Custom(ReducerProtocol):
        def __init__(self):
            self.seen = []

        def reduce(self, key, values):
            self.seen.append(key)
            return {}

    proto = Custom()
    dup = proto.clone()
    dup.reduce((1,), [])
    assert proto.seen == []
    assert dup.seen == [(1,)]
