"""Property-based tests for inter-query result reuse: for ANY
interleaving of queries and table mutations, and ANY executor, a
session running with the result cache on is byte-identical — rows,
intermediate datasets, and ``comparable()`` counters — to the same
stream executed cold.

This is the cache's load-bearing invariant: reuse plus exact
version-based invalidation must be indistinguishable from
re-execution, no matter when the data changes underneath it.
"""

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.catalog import Catalog, Schema
from repro.catalog.types import ColumnType as T
from repro.core.translator import translate_sql
from repro.data import Datastore, Table
from repro.mr.runtime import ParallelExecutor, Runtime, make_executor
from repro.reuse import ResultCache
from repro.workloads.runner import run_query

_case = itertools.count(1)

QUERY_SHAPES = [
    "SELECT f.g, sum(f.v) AS a FROM fact AS f GROUP BY f.g",
    "SELECT f.g, count(DISTINCT f.v) AS a FROM fact AS f "
    "WHERE f.v > 0 GROUP BY f.g",
    "SELECT f.g, d.w FROM fact AS f, dim AS d WHERE f.k = d.k",
    "SELECT d.w, avg(f.v) AS a FROM fact AS f, dim AS d "
    "WHERE f.k = d.k GROUP BY d.w",
    "SELECT f.g, count(*) AS n FROM fact AS f GROUP BY f.g "
    "ORDER BY n DESC, g LIMIT 3",
    "SELECT count(*) AS n, max(f.v) AS m FROM fact AS f",
]

fact_rows = st.lists(
    st.fixed_dictionaries({
        "k": st.integers(0, 6),
        "g": st.integers(0, 3),
        "v": st.one_of(st.none(), st.integers(-50, 50)),
    }), min_size=0, max_size=20)

dim_rows = st.lists(
    st.fixed_dictionaries({
        "k": st.integers(0, 6),
        "w": st.integers(0, 9),
    }), min_size=0, max_size=8)

# A step either runs a query or mutates a base table in place.
steps = st.lists(
    st.one_of(
        st.tuples(st.just("query"),
                  st.integers(0, len(QUERY_SHAPES) - 1)),
        st.tuples(st.just("mutate_fact"), st.fixed_dictionaries({
            "k": st.integers(0, 6), "g": st.integers(0, 3),
            "v": st.integers(-50, 50)})),
        st.tuples(st.just("mutate_dim"), st.fixed_dictionaries({
            "k": st.integers(0, 6), "w": st.integers(0, 9)})),
    ), min_size=2, max_size=8)


def make_datastore(fact, dim):
    ds = Datastore(Catalog())
    ds.load_table(Table("fact", Schema.of(
        ("k", T.INT), ("g", T.INT), ("v", T.INT)),
        [dict(r) for r in fact]))
    ds.load_table(Table("dim", Schema.of(("k", T.INT), ("w", T.INT)),
                        [dict(r) for r in dim]))
    return ds


def replay(ops, datastore, cache, prefix, parallelism):
    """Apply the step stream; return per-query (rows, counters)."""
    observed = []
    for i, (kind, payload) in enumerate(ops):
        if kind == "query":
            result = run_query(QUERY_SHAPES[payload], datastore,
                               cache=cache, parallelism=parallelism,
                               namespace=f"{prefix}.q{i}")
            observed.append((result.rows,
                             [r.counters.comparable()
                              for r in result.runs]))
        elif kind == "mutate_fact":
            datastore.table("fact").append(dict(payload))
        else:
            datastore.table("dim").append(dict(payload))
    return observed


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(fact=fact_rows, dim=dim_rows, ops=steps,
       parallelism=st.sampled_from([1, 4]))
def test_cached_stream_identical_to_cold(fact, dim, ops, parallelism):
    prefix = f"pc{next(_case)}"
    cold = replay(ops, make_datastore(fact, dim), None,
                  prefix, parallelism)
    cache = ResultCache()
    warm = replay(ops, make_datastore(fact, dim), cache,
                  prefix, parallelism)
    assert warm == cold


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(fact=fact_rows, dim=dim_rows,
       shape=st.sampled_from(QUERY_SHAPES))
def test_serial_and_thread_arms_share_one_cache(fact, dim, shape):
    # A cache populated under one executor must serve another: keys
    # depend on the plan and the data, never on the execution strategy.
    prefix = f"px{next(_case)}"
    ds = make_datastore(fact, dim)
    cache = ResultCache()
    first = run_query(shape, ds, cache=cache, parallelism=1,
                      namespace=f"{prefix}.a")
    second = run_query(shape, ds, cache=cache, parallelism=4,
                       namespace=f"{prefix}.b")
    assert second.rows == first.rows
    assert all(r.cached for r in second.runs)
    assert cache.stats.hits == len(second.runs)


def test_process_executor_serves_fully_cached_stream():
    # Translator jobs carry closures the process executor cannot
    # pickle — but a fully cached stream never reaches the executor,
    # so reuse makes the process pool usable where cold execution
    # would raise.  (Cold process-executor behavior is pinned in
    # test_runtime.py::test_process_executor_rejects_closure_jobs.)
    ds = make_datastore([{"k": 1, "g": 1, "v": 5}], [{"k": 1, "w": 2}])
    cache = ResultCache()
    sql = QUERY_SHAPES[0]
    warmup = run_query(sql, ds, cache=cache, namespace="proc.a")
    tr = translate_sql(sql, catalog=ds.catalog, namespace="proc.b")
    runtime = Runtime(ds, executor=ParallelExecutor(max_workers=2,
                                                    kind="process"),
                      result_cache=cache)
    runs = runtime.run_jobs(tr.jobs, dependencies=tr.dependencies())
    assert all(r.cached for r in runs)
    assert (ds.intermediate(tr.final_dataset).rows
            == [dict(r) for r in warmup.rows])


def test_parallelism_zero_is_auto_and_one_is_serial():
    from repro.mr.runtime import (SerialExecutor, ParallelExecutor,
                                  default_worker_count)
    assert isinstance(make_executor(1), SerialExecutor)
    auto = make_executor(0)
    assert isinstance(auto, ParallelExecutor)
    assert auto.max_workers == default_worker_count()
