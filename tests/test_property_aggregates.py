"""Property-based tests: accumulators vs Python reference semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr.aggregates import (
    AvgAcc,
    CountAcc,
    CountDistinctAcc,
    CountStarAcc,
    MaxAcc,
    MinAcc,
    StddevAcc,
    SumAcc,
    VarianceAcc,
)

values = st.lists(st.one_of(st.none(), st.integers(-1000, 1000)), max_size=60)
#: ways to split a list into chunks (simulating map tasks)
splits = st.integers(1, 5)


def chunked(data, n):
    if not data:
        return [[]]
    size = max(1, len(data) // n)
    return [data[i:i + size] for i in range(0, len(data), size)]


def reference(values, kind):
    non_null = [v for v in values if v is not None]
    if kind == "count_star":
        return len(values)
    if kind == "count":
        return len(non_null)
    if kind == "count_distinct":
        return len(set(non_null))
    if kind == "sum":
        return sum(non_null) if non_null else None
    if kind == "avg":
        return sum(non_null) / len(non_null) if non_null else None
    if kind == "min":
        return min(non_null) if non_null else None
    if kind == "max":
        return max(non_null) if non_null else None
    if kind == "variance":
        if not non_null:
            return None
        mean = sum(non_null) / len(non_null)
        return sum((x - mean) ** 2 for x in non_null) / len(non_null)
    if kind == "stddev":
        var = reference(values, "variance")
        return None if var is None else var ** 0.5
    raise AssertionError(kind)


CASES = [
    (CountStarAcc, "count_star"),
    (CountAcc, "count"),
    (CountDistinctAcc, "count_distinct"),
    (SumAcc, "sum"),
    (AvgAcc, "avg"),
    (MinAcc, "min"),
    (MaxAcc, "max"),
    (VarianceAcc, "variance"),
    (StddevAcc, "stddev"),
]


def _close(a, b):
    if a is None or b is None:
        return a == b
    return abs(a - b) <= 1e-6 * max(1.0, abs(a), abs(b))


@given(data=values)
def test_single_pass_matches_reference(data):
    for cls, kind in CASES:
        acc = cls()
        for v in data:
            acc.add(v)
        assert _close(acc.result(), reference(data, kind)), kind


@given(data=values, n=splits)
def test_partial_aggregation_matches_single_pass(data, n):
    """state()/absorb() over any chunking equals one pass — the combiner
    correctness invariant."""
    for cls, kind in CASES:
        merged = cls()
        for chunk in chunked(data, n):
            partial = cls()
            for v in chunk:
                partial.add(v)
            merged.absorb(partial.state())
        assert _close(merged.result(), reference(data, kind)), kind


@given(data=values, n=splits)
def test_merge_matches_single_pass(data, n):
    for cls, kind in CASES:
        merged = cls()
        for chunk in chunked(data, n):
            partial = cls()
            for v in chunk:
                partial.add(v)
            merged.merge(partial)
        assert _close(merged.result(), reference(data, kind)), kind


@given(data=values)
def test_add_order_irrelevant(data):
    for cls, kind in CASES:
        forward, backward = cls(), cls()
        for v in data:
            forward.add(v)
        for v in reversed(data):
            backward.add(v)
        assert _close(forward.result(), backward.result()), kind
