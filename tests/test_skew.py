"""Tests for reduce-side key-skew measurement and its cost effect."""

import pytest

from repro.catalog import Catalog, Schema
from repro.catalog.types import ColumnType as T
from repro.cmf import CommonReducer
from repro.data import Datastore, Table
from repro.hadoop import HadoopCostModel, small_cluster
from repro.mr import EmitSpec, MRJob, MapInput, MapReduceEngine, OutputSpec
from repro.ops import SPTask, TaskInput


def _job(ds, num_reducers=4, sort=False):
    def emit(record):
        return (record["k"],), {"v": record["v"]}

    task = SPTask("sp", TaskInput.shuffle("in", ["k"]))
    return MRJob(
        job_id="skew", name="skew",
        map_inputs=[MapInput("t", [EmitSpec("in", emit)])],
        reducer=CommonReducer([task]),
        outputs=[OutputSpec("skew.out", "sp", ["k", "v"])],
        num_reducers=num_reducers,
        sort_output=sort, sort_ascending=[True])


def _store(rows):
    ds = Datastore(Catalog())
    ds.load_table(Table("t", Schema.of(("k", T.INT), ("v", T.INT)), rows))
    return ds


class TestSkewMeasurement:
    def test_uniform_keys_balanced(self):
        rows = [{"k": i, "v": i} for i in range(100)]
        c = MapReduceEngine(_store(rows)).run_job(_job(_store(rows)))
        # 100 distinct keys over 4 partitions: no task should dominate.
        assert c.reduce_max_task_records < 50

    def test_single_hot_key_measured(self):
        rows = [{"k": 7, "v": i} for i in range(90)] + \
               [{"k": i, "v": i} for i in range(10)]
        ds = _store(rows)
        c = MapReduceEngine(ds).run_job(_job(ds))
        assert c.reduce_max_task_records >= 90

    def test_sort_job_range_loads(self):
        rows = [{"k": i % 5, "v": i} for i in range(50)]
        ds = _store(rows)
        c = MapReduceEngine(ds).run_job(_job(ds, num_reducers=5, sort=True))
        assert c.reduce_max_task_records >= 10

    def test_scaled_preserves_ratio(self):
        rows = [{"k": 7, "v": i} for i in range(40)]
        ds = _store(rows)
        c = MapReduceEngine(ds).run_job(_job(ds))
        s = c.scaled(100)
        assert s.reduce_max_task_records == c.reduce_max_task_records * 100


class TestSkewCost:
    def test_hot_key_slows_reduce(self):
        """Same volume, one hot key vs uniform keys: the straggler bound
        must make the skewed job slower."""
        uniform = [{"k": i, "v": i} for i in range(200)]
        skewed = [{"k": 1, "v": i} for i in range(200)]
        model = HadoopCostModel(small_cluster(data_scale=10_000))
        times = {}
        for name, rows in (("uniform", uniform), ("skewed", skewed)):
            ds = _store(rows)
            c = MapReduceEngine(ds).run_job(_job(ds))
            times[name] = model.job_timing(c).reduce_s
        assert times["skewed"] > times["uniform"]

    def test_uniform_matches_parallel_bound(self):
        rows = [{"k": i, "v": i} for i in range(400)]
        ds = _store(rows)
        c = MapReduceEngine(ds).run_job(_job(ds))
        # Max task share close to 1/num_reducers: the parallel term wins.
        assert c.reduce_max_task_records / c.reduce_input_records < 0.5
