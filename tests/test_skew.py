"""Tests for reduce-side key-skew measurement and its cost effect."""

import pytest

from repro.catalog import Catalog, Schema
from repro.catalog.types import ColumnType as T
from repro.cmf import CommonReducer
from repro.data import Datastore, Table
from repro.hadoop import HadoopCostModel, small_cluster
from repro.mr import EmitSpec, MRJob, MapInput, MapReduceEngine, OutputSpec
from repro.ops import SPTask, TaskInput


def _job(ds, num_reducers=4, sort=False):
    def emit(record):
        return (record["k"],), {"v": record["v"]}

    task = SPTask("sp", TaskInput.shuffle("in", ["k"]))
    return MRJob(
        job_id="skew", name="skew",
        map_inputs=[MapInput("t", [EmitSpec("in", emit)])],
        reducer=CommonReducer([task]),
        outputs=[OutputSpec("skew.out", "sp", ["k", "v"])],
        num_reducers=num_reducers,
        sort_output=sort, sort_ascending=[True])


def _store(rows):
    ds = Datastore(Catalog())
    ds.load_table(Table("t", Schema.of(("k", T.INT), ("v", T.INT)), rows))
    return ds


class TestSkewMeasurement:
    def test_uniform_keys_balanced(self):
        rows = [{"k": i, "v": i} for i in range(100)]
        c = MapReduceEngine(_store(rows)).run_job(_job(_store(rows)))
        # 100 distinct keys over 4 partitions: no task should dominate.
        assert c.reduce_max_task_records < 50

    def test_single_hot_key_measured(self):
        rows = [{"k": 7, "v": i} for i in range(90)] + \
               [{"k": i, "v": i} for i in range(10)]
        ds = _store(rows)
        c = MapReduceEngine(ds).run_job(_job(ds))
        assert c.reduce_max_task_records >= 90

    def test_sort_job_range_loads(self):
        rows = [{"k": i % 5, "v": i} for i in range(50)]
        ds = _store(rows)
        c = MapReduceEngine(ds).run_job(_job(ds, num_reducers=5, sort=True))
        assert c.reduce_max_task_records >= 10

    def test_scaled_preserves_ratio(self):
        rows = [{"k": 7, "v": i} for i in range(40)]
        ds = _store(rows)
        c = MapReduceEngine(ds).run_job(_job(ds))
        s = c.scaled(100)
        assert s.reduce_max_task_records == c.reduce_max_task_records * 100


class TestSkewCost:
    def test_hot_key_slows_reduce(self):
        """Same volume, one hot key vs uniform keys: the straggler bound
        must make the skewed job slower."""
        uniform = [{"k": i, "v": i} for i in range(200)]
        skewed = [{"k": 1, "v": i} for i in range(200)]
        model = HadoopCostModel(small_cluster(data_scale=10_000))
        times = {}
        for name, rows in (("uniform", uniform), ("skewed", skewed)):
            ds = _store(rows)
            c = MapReduceEngine(ds).run_job(_job(ds))
            times[name] = model.job_timing(c).reduce_s
        assert times["skewed"] > times["uniform"]

    def test_uniform_matches_parallel_bound(self):
        rows = [{"k": i, "v": i} for i in range(400)]
        ds = _store(rows)
        c = MapReduceEngine(ds).run_job(_job(ds))
        # Max task share close to 1/num_reducers: the parallel term wins.
        assert c.reduce_max_task_records / c.reduce_input_records < 0.5


# ---------------------------------------------------------------------------
# Stats-driven skew partition plans on the engine
# ---------------------------------------------------------------------------

class TestSkewPartitionPlanOnEngine:
    """A :class:`repro.stats.SkewPartitionPlan` attached to
    ``MRJob.partitioner`` reroutes the hot key to a dedicated partition:
    the most loaded reduce task shrinks, rows stay byte-identical, and
    the plan survives pickling (attempt-safe for process pools)."""

    def _skewed_rows(self):
        return [{"k": 7, "v": i} for i in range(90)] + \
               [{"k": i, "v": i} for i in range(100, 130)]

    def test_dedicated_partition_shrinks_max_task(self):
        from repro.stats import build_skew_plan
        rows = self._skewed_rows()
        ds = _store(rows)
        static = MapReduceEngine(ds).run_job(_job(ds))

        ds2 = _store(rows)
        job = _job(ds2)
        job.partitioner = build_skew_plan([(7, 90)], job.num_reducers)
        adaptive = MapReduceEngine(ds2).run_job(job)

        assert adaptive.reduce_max_task_records <= \
            static.reduce_max_task_records
        # The hot key's 90 records sit alone on partition 0.
        assert 90 in adaptive.reduce_task_records

    def test_rows_identical_under_partition_plan(self):
        from repro.stats import build_skew_plan
        rows = self._skewed_rows()
        ds_a, ds_b = _store(rows), _store(rows)
        MapReduceEngine(ds_a).run_job(_job(ds_a))
        job = _job(ds_b)
        job.partitioner = build_skew_plan([(7, 90)], job.num_reducers)
        MapReduceEngine(ds_b).run_job(job)
        assert sorted(map(repr, ds_a.intermediate("skew.out").rows)) == \
            sorted(map(repr, ds_b.intermediate("skew.out").rows))

    def test_cost_model_sees_the_relief(self):
        from repro.stats import build_skew_plan
        rows = [{"k": 1, "v": i} for i in range(180)] + \
               [{"k": i, "v": i} for i in range(100, 120)]
        model = HadoopCostModel(small_cluster(data_scale=10_000))

        ds = _store(rows)
        static = MapReduceEngine(ds).run_job(_job(ds))
        ds2 = _store(rows)
        job = _job(ds2)
        job.partitioner = build_skew_plan([(1, 180)], job.num_reducers)
        adaptive = MapReduceEngine(ds2).run_job(job)
        # Here the hot key dominates either way (it IS the straggler),
        # so the bound can't improve -- but it must never get worse.
        assert model.job_timing(adaptive).reduce_s <= \
            model.job_timing(static).reduce_s


class TestEstimatorPinsOnPaperQueries:
    """Hand-checked cardinalities: the SimpleDB-style estimator API
    (``records_output`` / ``distinct_values``) against ground truth on
    the paper workload tables."""

    @pytest.fixture(scope="class")
    def store(self):
        from repro.workloads.runner import build_datastore
        return build_datastore(tpch_scale=0.002, clickstream_users=40,
                               seed=11)

    def _est(self, store):
        from repro.stats import PlanEstimator, StatsCatalog
        return PlanEstimator(store, StatsCatalog())

    def _plan(self, sql, store):
        from repro.plan.planner import plan_query
        from repro.sqlparser.parser import parse_sql
        return plan_query(parse_sql(sql), store.catalog)

    def test_clicks_user_cardinality(self, store):
        est = self._est(store)
        plan = self._plan(
            "SELECT uid, COUNT(*) AS n FROM clicks GROUP BY uid",
            store)
        truth = len({r["uid"]
                     for r in store.resolve("clicks").rows})
        assert est.records_output(plan) == truth

    def test_distinct_values_exact_on_base_column(self, store):
        est = self._est(store)
        plan = self._plan("SELECT l_partkey FROM lineitem", store)
        scan = list(plan.post_order())[0]
        truth = len({r["l_partkey"]
                     for r in store.resolve("lineitem").rows})
        assert est.distinct_values(scan, "l_partkey") == truth

    def test_filter_then_distinct_capped_by_records(self, store):
        est = self._est(store)
        plan = self._plan(
            "SELECT o_orderkey FROM orders WHERE o_orderkey = 5", store)
        scan = list(plan.post_order())[0]
        assert est.distinct_values(scan, "o_orderkey") \
            <= est.records_output(scan)
