"""Tests for SELECT * / alias.* expansion and end-to-end execution."""

import pytest

from repro.core.translator import translate_sql
from repro.data import rows_equal_unordered
from repro.errors import NameResolutionError, PlanError
from repro.mr.engine import run_jobs
from repro.plan.planner import plan_query
from repro.refexec import run_reference
from repro.sqlparser.ast import Star
from repro.sqlparser.parser import parse_sql


class TestParsing:
    def test_bare_star(self):
        stmt = parse_sql("SELECT * FROM nation")
        assert stmt.items[0].expr == Star()

    def test_qualified_star(self):
        stmt = parse_sql("SELECT n.* FROM nation AS n")
        assert stmt.items[0].expr == Star("n")

    def test_star_mixed_with_columns(self):
        stmt = parse_sql("SELECT n.*, s_name FROM nation AS n, supplier")
        assert len(stmt.items) == 2

    def test_count_star_still_works(self):
        stmt = parse_sql("SELECT count(*) FROM nation")
        assert stmt.items[0].expr.star

    def test_star_to_sql(self):
        assert Star().to_sql() == "*"
        assert Star("t").to_sql() == "t.*"


class TestPlanning:
    def test_expands_in_schema_order(self, datastore):
        plan = plan_query(parse_sql("SELECT * FROM nation"),
                          datastore.catalog)
        assert plan.output_names == [
            "n_nationkey", "n_name", "n_regionkey", "n_comment"]

    def test_qualified_star_limits_to_source(self, datastore):
        plan = plan_query(parse_sql(
            "SELECT n.* FROM nation AS n, supplier "
            "WHERE s_nationkey = n_nationkey"), datastore.catalog)
        assert plan.output_names == [
            "n_nationkey", "n_name", "n_regionkey", "n_comment"]

    def test_star_over_derived_table(self, datastore):
        plan = plan_query(parse_sql(
            "SELECT * FROM (SELECT n_name AS nm, n_regionkey AS rk "
            "FROM nation) AS d"), datastore.catalog)
        assert plan.output_names == ["nm", "rk"]

    def test_unknown_alias_star(self, datastore):
        with pytest.raises(NameResolutionError):
            plan_query(parse_sql("SELECT zz.* FROM nation"),
                       datastore.catalog)

    def test_self_join_star_collides(self, datastore):
        with pytest.raises(PlanError, match="duplicate output"):
            plan_query(parse_sql(
                "SELECT * FROM nation AS a, nation AS b "
                "WHERE a.n_nationkey = b.n_nationkey"), datastore.catalog)


class TestExecution:
    def test_star_query_through_translators(self, datastore,
                                            fresh_namespace):
        sql = ("SELECT n.*, s_name FROM nation AS n, supplier "
               "WHERE s_nationkey = n_nationkey AND n_regionkey = 1")
        ref = run_reference(plan_query(parse_sql(sql), datastore.catalog),
                            datastore)
        for mode in ("ysmart", "hive"):
            tr = translate_sql(sql, mode=mode, catalog=datastore.catalog,
                               namespace=f"{fresh_namespace}.{mode}")
            run_jobs(tr.jobs, datastore)
            rows = datastore.intermediate(tr.final_dataset).rows
            assert rows_equal_unordered(rows, ref.rows, tr.output_columns)
