"""Shared fixtures for the test suite.

The session-scoped fixtures generate one small-but-nontrivial workload
that correctness tests share; anything mutating a datastore builds its
own.  Intermediate datasets written by the MR engine are namespaced per
test via the ``fresh_namespace`` fixture, so sharing the session
datastore across engine runs is safe.
"""

from __future__ import annotations

import itertools
import os

import pytest

from repro.catalog import standard_catalog
from repro.data import (
    ClickstreamConfig,
    Datastore,
    TpchConfig,
    generate_clickstream,
    generate_tpch,
)

_ns_counter = itertools.count(1)


@pytest.fixture(scope="session")
def tpch_tables():
    """Small deterministic TPC-H dataset (SF 0.002)."""
    return generate_tpch(TpchConfig(scale_factor=0.002, seed=7))


@pytest.fixture(scope="session")
def clicks_table():
    """Small deterministic click-stream (60 users)."""
    return generate_clickstream(ClickstreamConfig(num_users=60, seed=7))


@pytest.fixture(scope="session")
def datastore(tpch_tables, clicks_table):
    """Datastore with the standard schemas and the small datasets loaded."""
    ds = Datastore(standard_catalog())
    for table in tpch_tables.values():
        ds.load_table(table)
    ds.load_table(clicks_table)
    return ds


@pytest.fixture
def fresh_namespace():
    """A unique job namespace per test, isolating engine intermediates."""
    return f"t{next(_ns_counter)}"


@pytest.fixture
def empty_datastore():
    return Datastore(standard_catalog())


@pytest.fixture(scope="session")
def suite_executor_kind():
    """Executor kind for tests whose jobs are picklable.

    The process-executor CI leg runs the suite with
    ``REPRO_SUITE_EXECUTOR=process`` so those tests exercise real
    multiprocess pools; translator-emitted jobs carry closures and
    always stay on threads regardless of this knob.
    """
    return os.environ.get("REPRO_SUITE_EXECUTOR", "thread")


# -- fault-injection suite leg (REPRO_SUITE_FAULTS=1) ------------------------
#
# The CI leg runs the whole tier-1 suite with low-probability injected
# task kills: every Runtime that did not ask for fault tolerance gets a
# seeded FaultPlan and a generous retry budget.  Because results and
# comparable() counters are byte-identical under injection, the entire
# suite must pass unchanged — the strongest whole-system statement of
# the fault-tolerance invariant.

if os.environ.get("REPRO_SUITE_FAULTS"):
    from repro.mr.faultplan import FaultPlan
    from repro.mr.runtime import Runtime

    _SUITE_FAULT_PLAN = FaultPlan(0.02, seed=11)
    _orig_runtime_init = Runtime.__init__

    def _faulty_runtime_init(self, *args, **kwargs):
        if kwargs.get("fault_plan") is None and "max_attempts" not in kwargs:
            kwargs["fault_plan"] = _SUITE_FAULT_PLAN
            kwargs["max_attempts"] = 20
        _orig_runtime_init(self, *args, **kwargs)

    Runtime.__init__ = _faulty_runtime_init


# -- row-plane suite leg (REPRO_SUITE_BATCH=0) -------------------------------
#
# The batch plane is the default engine, so the ordinary suite run
# exercises it everywhere.  This CI leg runs the whole tier-1 suite
# with the per-row plane forced back in for every Runtime that did not
# explicitly choose a plane: because the planes are byte-identical, the
# entire suite must pass unchanged on the legacy path too.

if os.environ.get("REPRO_SUITE_BATCH") == "0":
    from repro.mr.runtime import Runtime as _Runtime

    _orig_plane_init = _Runtime.__init__

    def _row_plane_init(self, *args, **kwargs):
        if kwargs.get("data_plane") is None:
            kwargs["data_plane"] = "row"
        _orig_plane_init(self, *args, **kwargs)

    _Runtime.__init__ = _row_plane_init


# -- static-optimizer suite leg (REPRO_SUITE_STATS=0) ------------------------
#
# The stats layer is on by default (REPRO_STATS resolves "on"), so the
# ordinary suite run exercises the estimators and decision gates
# everywhere.  This CI leg forces the whole tier-1 suite fully static —
# no sketches, no advisors, no cardinality split sizing — by exporting
# the environment default off before any runner resolves it: because
# stats-driven choices preserve result bytes, the entire suite must pass
# unchanged on the static path too.

if os.environ.get("REPRO_SUITE_STATS") == "0":
    os.environ["REPRO_STATS"] = "off"


# -- interpreted-engine suite leg (REPRO_SUITE_CODEGEN=0) --------------------
#
# Whole-stage codegen is on by default (REPRO_CODEGEN resolves "1"), so
# the ordinary suite run executes compiled kernels everywhere.  This CI
# leg forces the whole tier-1 suite back onto the interpreted closures
# by exporting the environment default off before any Runtime resolves
# it: because generated kernels are byte-identical in rows, partitions,
# and comparable() counters, the entire suite must pass unchanged on
# the interpreted path too.

if os.environ.get("REPRO_SUITE_CODEGEN") == "0":
    os.environ["REPRO_CODEGEN"] = "0"


# -- out-of-core suite leg (REPRO_SUITE_SPILL=<MB>) --------------------------
#
# The spill plane is byte-identical to the in-memory plane by contract,
# so the whole tier-1 suite must pass unchanged when every Runtime that
# did not ask for a budget gets one.  The env value is the budget in MB
# (e.g. ``REPRO_SUITE_SPILL=0.05`` spills aggressively; ``=1`` exercises
# the budget bookkeeping with mostly in-memory execution).  One shared
# MemoryBudget keeps the whole run in a single spill directory.

if os.environ.get("REPRO_SUITE_SPILL"):
    from repro.mr.runtime import Runtime as _SpillRuntime
    from repro.mr.spill import resolve_memory_budget as _resolve_budget

    _SUITE_BUDGET = _resolve_budget(
        float(os.environ["REPRO_SUITE_SPILL"]))
    _orig_budget_init = _SpillRuntime.__init__

    def _budgeted_init(self, *args, **kwargs):
        if kwargs.get("memory_budget_mb") is None:
            kwargs["memory_budget_mb"] = _SUITE_BUDGET
        _orig_budget_init(self, *args, **kwargs)

    _SpillRuntime.__init__ = _budgeted_init
