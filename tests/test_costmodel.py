"""Tests for cluster configs, the cost model, and the contention model."""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.hadoop import (
    ClusterConfig,
    ContentionModel,
    HadoopCostModel,
    ec2_cluster,
    facebook_cluster,
    small_cluster,
)
from repro.mr.counters import JobCounters


def counters(**kwargs):
    base = JobCounters(job_id="j", name="test", num_reducers=8)
    base.input_bytes = {"lineitem": 10_000_000}
    base.input_records = {"lineitem": 100_000}
    base.map_eval_ops = 100_000
    base.pre_combine_records = 50_000
    base.map_output_records = 50_000
    base.map_output_bytes = 2_000_000
    base.reduce_groups = 1_000
    base.reduce_input_records = 50_000
    base.reduce_dispatch_ops = 50_000
    base.reduce_compute_ops = 60_000
    base.output_records = {"out": 10_000}
    base.output_bytes = {"out": 500_000}
    for k, v in kwargs.items():
        setattr(base, k, v)
    return base


class TestClusterConfig:
    def test_presets_have_paper_shapes(self):
        small = small_cluster()
        assert small.worker_nodes == 1 and small.total_map_slots == 4
        ec2 = ec2_cluster(10)
        assert ec2.worker_nodes == 10
        fb = facebook_cluster()
        assert fb.worker_nodes == 747 and fb.contention is not None

    def test_validation(self):
        with pytest.raises(ConfigError):
            small_cluster(data_scale=0)
        with pytest.raises(ConfigError):
            dataclasses.replace(small_cluster(), worker_nodes=0)
        with pytest.raises(ConfigError):
            dataclasses.replace(small_cluster(), compression_ratio=0)

    def test_with_helpers(self):
        c = small_cluster()
        assert c.with_scale(5).data_scale == 5
        assert c.with_compression(True).compress_map_output
        assert c.with_contention(None).contention is None

    def test_shuffle_bandwidth_scales_with_nodes(self):
        assert ec2_cluster(100).shuffle_bandwidth == \
            pytest.approx(10 * ec2_cluster(10).shuffle_bandwidth)


class TestCostModelMonotonicity:
    """DESIGN.md invariant 6: more volume never costs less."""

    def test_more_input_bytes_slower(self):
        model = HadoopCostModel(small_cluster())
        t1 = model.job_timing(counters()).total_s
        t2 = model.job_timing(
            counters(input_bytes={"lineitem": 100_000_000})).total_s
        assert t2 > t1

    def test_more_shuffle_bytes_slower(self):
        model = HadoopCostModel(small_cluster())
        t1 = model.job_timing(counters()).total_s
        t2 = model.job_timing(counters(map_output_bytes=50_000_000)).total_s
        assert t2 > t1

    def test_more_reduce_ops_slower(self):
        model = HadoopCostModel(small_cluster())
        t1 = model.job_timing(counters()).total_s
        t2 = model.job_timing(counters(reduce_compute_ops=10_000_000)).total_s
        assert t2 > t1

    def test_more_jobs_cost_startup(self):
        model = HadoopCostModel(small_cluster())
        one = model.query_timing([_run(counters())]).total_s
        half = counters()
        half.input_bytes = {"lineitem": 5_000_000}
        two = model.query_timing([_run(half), _run(half)]).total_s
        assert two > one - 1e-9  # split work still pays a second startup

    def test_data_scale_projects_volumes(self):
        """Once the slot pool is saturated, work scales linearly with
        data_scale (startup is fixed, so compare work, not totals)."""
        startup = small_cluster().job_startup_s
        t10 = HadoopCostModel(small_cluster(data_scale=100)).job_timing(
            counters()).total_s - startup
        t100 = HadoopCostModel(small_cluster(data_scale=1000)).job_timing(
            counters()).total_s - startup
        assert t100 > 8 * t10


def _run(c):
    from repro.mr.counters import JobRun
    return JobRun(c.job_id, c.name, c)


class TestParallelism:
    def test_more_nodes_faster_at_fixed_data(self):
        big = counters(input_bytes={"lineitem": 10_000_000_000},
                       map_eval_ops=100_000_000,
                       input_records={"lineitem": 100_000_000})
        t10 = HadoopCostModel(ec2_cluster(10)).job_timing(big).total_s
        t100 = HadoopCostModel(ec2_cluster(100)).job_timing(big).total_s
        assert t100 < t10

    def test_near_linear_scaling(self):
        """10x data on 10x nodes costs roughly the same (paper Fig. 11)."""
        c = counters(input_bytes={"lineitem": 10_000_000_000},
                     input_records={"lineitem": 100_000_000},
                     map_eval_ops=100_000_000)
        t_small = HadoopCostModel(
            ec2_cluster(10, data_scale=1)).job_timing(c).total_s
        t_big = HadoopCostModel(
            ec2_cluster(100, data_scale=10)).job_timing(c).total_s
        assert t_big / t_small < 1.6

    def test_reduce_waves(self):
        """More reducers than slots forces extra waves."""
        model = HadoopCostModel(small_cluster())
        few = model.job_timing(counters(num_reducers=4)).reduce_s
        many = model.job_timing(counters(num_reducers=64)).reduce_s
        assert many > few


class TestCompression:
    def test_compression_net_loss_when_cpu_dominates(self):
        """The paper's Fig. 11 finding on an isolated cluster."""
        cfg = ec2_cluster(10, data_scale=1000)
        model_nc = HadoopCostModel(cfg)
        model_c = HadoopCostModel(cfg.with_compression(True))
        c = counters()
        assert model_c.job_timing(c).total_s > model_nc.job_timing(c).total_s

    def test_compression_reduces_wire_bytes(self):
        cfg = small_cluster().with_compression(True)
        t = HadoopCostModel(cfg).job_timing(counters(map_output_bytes=10**9))
        t_nc = HadoopCostModel(small_cluster()).job_timing(
            counters(map_output_bytes=10**9))
        assert t.shuffle_s < t_nc.shuffle_s


class TestContention:
    def test_samples_deterministic(self):
        m = ContentionModel(seed=42)
        assert m.sample(1, 2) == m.sample(1, 2)
        assert m.sample(1, 2) != m.sample(1, 3)

    def test_sample_ranges(self):
        m = ContentionModel()
        for i in range(20):
            s = m.sample(i, 0)
            assert m.gap_min_s <= s.scheduling_gap_s <= m.gap_max_s
            assert m.slowdown_min <= s.map_slowdown <= m.slowdown_max

    def test_busy_day_scales(self):
        m = ContentionModel()
        busy = m.busy_day(2.0)
        s, sb = m.sample(0, 0), busy.sample(0, 0)
        assert sb.scheduling_gap_s == pytest.approx(2 * s.scheduling_gap_s)
        assert sb.map_slowdown == pytest.approx(2 * s.map_slowdown)

    def test_contention_adds_gap_and_slowdown(self):
        fb = facebook_cluster()
        isolated = fb.with_contention(None)
        c = counters()
        t_cont = HadoopCostModel(fb).job_timing(c, instance=0, job_index=1)
        t_iso = HadoopCostModel(isolated).job_timing(c, instance=0,
                                                     job_index=1)
        assert t_cont.scheduling_gap_s > t_iso.scheduling_gap_s
        assert t_cont.total_s > t_iso.total_s

    def test_temp_join_penalty_targets_intermediate_joins(self):
        fb = facebook_cluster()
        model = HadoopCostModel(fb)
        temp = counters(input_bytes={"q.a": 1000, "q.b": 1000})
        base = counters(input_bytes={"lineitem": 1000, "q.b": 1000})
        t_temp = model.job_timing(temp, instance=0, job_index=0)
        t_base = model.job_timing(base, instance=0, job_index=0)
        assert t_temp.reduce_s > t_base.reduce_s + 100


class TestQueryTiming:
    def test_breakdown_structure(self):
        model = HadoopCostModel(small_cluster())
        timing = model.query_timing([_run(counters()), _run(counters())])
        rows = timing.breakdown()
        assert len(rows) == 2
        assert set(rows[0]) == {"job", "startup_s", "map_s", "shuffle_s",
                                "reduce_s", "gap_s", "total_s"}
        assert timing.total_s == pytest.approx(
            sum(r["total_s"] for r in rows), abs=0.5)

    def test_isolated_inter_job_gap(self):
        model = HadoopCostModel(small_cluster())
        timing = model.query_timing([_run(counters()), _run(counters())])
        assert timing.jobs[0].scheduling_gap_s == 0.0
        assert timing.jobs[1].scheduling_gap_s == \
            small_cluster().inter_job_gap_s


# ---------------------------------------------------------------------------
# Pricing estimated counters (the stats optimizer's what-if query)
# ---------------------------------------------------------------------------

class TestEstimateChain:
    def test_chain_price_is_sum_of_jobs_with_gaps(self):
        model = HadoopCostModel(small_cluster())
        a, b = counters(), counters()
        expect = (model.job_timing(a, job_index=0).total_s
                  + model.job_timing(b, job_index=1).total_s)
        assert model.estimate_chain_s([a, b]) == pytest.approx(expect)

    def test_two_jobs_pay_two_startups(self):
        model = HadoopCostModel(small_cluster())
        one = model.estimate_chain_s([counters()])
        two = model.estimate_chain_s([counters(), counters()])
        cfg = small_cluster()
        assert two >= one + cfg.job_startup_s

    def test_deterministic(self):
        model = HadoopCostModel(small_cluster())
        seq = [counters(), counters(reduce_groups=5)]
        assert model.estimate_chain_s(seq) == model.estimate_chain_s(seq)

    def test_skewed_estimate_prices_higher(self):
        # The synthetic counters the stats optimizer builds carry
        # reduce_max_task_records; the model must surface the straggler.
        model = HadoopCostModel(small_cluster(data_scale=10_000))
        fair = counters(reduce_max_task_records=50_000 // 8)
        hot = counters(reduce_max_task_records=40_000)
        assert model.estimate_chain_s([hot]) > \
            model.estimate_chain_s([fair])

    def test_merge_tradeoff_visible(self):
        # A merged common job dedupes the shared scan but dispatches
        # every shuffled record to both reduce-phase consumers -- the
        # exact tension approve_merge weighs.
        model = HadoopCostModel(small_cluster(data_scale=1_000))
        separate = [counters(), counters()]
        merged = counters(reduce_dispatch_ops=100_000,
                          reduce_compute_ops=120_000)
        merged.output_records = {"a": 10_000, "b": 10_000}
        merged.output_bytes = {"a": 500_000, "b": 500_000}
        sep_s = model.estimate_chain_s(separate)
        merged_s = model.estimate_chain_s([merged])
        # One scan + one startup beats two of each at this shape.
        assert merged_s < sep_s
