"""Unit tests for repro.catalog.schema."""

import pytest

from repro.catalog.schema import Column, Schema, merge_disjoint
from repro.catalog.types import ColumnType as T
from repro.errors import CatalogError


@pytest.fixture
def schema():
    return Schema.of(("a", T.INT), ("b", T.STRING), ("c", T.FLOAT))


class TestConstruction:
    def test_of_builds_ordered_columns(self, schema):
        assert schema.names == ["a", "b", "c"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(CatalogError, match="duplicate column"):
            Schema.of(("a", T.INT), ("a", T.FLOAT))

    def test_empty_column_name_rejected(self):
        with pytest.raises(CatalogError):
            Column("", T.INT)

    def test_from_spec(self):
        s = Schema.from_spec({"x": "int", "y": "string"})
        assert s.type_of("x") is T.INT
        assert s.type_of("y") is T.STRING

    def test_len_iter_contains(self, schema):
        assert len(schema) == 3
        assert [c.name for c in schema] == ["a", "b", "c"]
        assert "b" in schema
        assert "z" not in schema

    def test_equality_and_hash(self, schema):
        other = Schema.of(("a", T.INT), ("b", T.STRING), ("c", T.FLOAT))
        assert schema == other
        assert hash(schema) == hash(other)
        assert schema != Schema.of(("a", T.INT))


class TestLookup:
    def test_column(self, schema):
        assert schema.column("b").type is T.STRING

    def test_column_missing(self, schema):
        with pytest.raises(CatalogError, match="no column 'z'"):
            schema.column("z")

    def test_index_of(self, schema):
        assert schema.index_of("c") == 2

    def test_index_of_missing(self, schema):
        with pytest.raises(CatalogError):
            schema.index_of("zz")


class TestTransforms:
    def test_project_orders_and_subsets(self, schema):
        assert schema.project(["c", "a"]).names == ["c", "a"]

    def test_project_unknown_raises(self, schema):
        with pytest.raises(CatalogError):
            schema.project(["a", "nope"])

    def test_rename_partial(self, schema):
        renamed = schema.rename({"a": "x"})
        assert renamed.names == ["x", "b", "c"]
        assert renamed.type_of("x") is T.INT

    def test_prefixed(self, schema):
        assert schema.prefixed("t1").names == ["t1.a", "t1.b", "t1.c"]

    def test_concat(self, schema):
        other = Schema.of(("d", T.INT))
        assert schema.concat(other).names == ["a", "b", "c", "d"]

    def test_concat_duplicate_raises(self, schema):
        with pytest.raises(CatalogError):
            schema.concat(Schema.of(("a", T.INT)))

    def test_merge_disjoint_ok(self, schema):
        merged = merge_disjoint(schema, Schema.of(("d", T.INT)))
        assert merged.names == ["a", "b", "c", "d"]

    def test_merge_disjoint_overlap_raises(self, schema):
        with pytest.raises(CatalogError, match="overlap"):
            merge_disjoint(schema, Schema.of(("b", T.INT)))


class TestRowValidation:
    def test_valid_row(self, schema):
        schema.validate_row({"a": 1, "b": "x", "c": 2.5})

    def test_null_fields_ok(self, schema):
        schema.validate_row({"a": None, "b": None, "c": None})

    def test_missing_column(self, schema):
        with pytest.raises(CatalogError):
            schema.validate_row({"a": 1, "b": "x"})

    def test_extra_column(self, schema):
        with pytest.raises(CatalogError):
            schema.validate_row({"a": 1, "b": "x", "c": 2.5, "d": 9})

    def test_wrong_type(self, schema):
        with pytest.raises(CatalogError):
            schema.validate_row({"a": "not-int", "b": "x", "c": 2.5})
