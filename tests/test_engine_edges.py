"""Engine and CMF edge cases not covered by the main suites."""

import pytest

from repro.catalog import Catalog, Schema
from repro.catalog.types import ColumnType as T
from repro.cmf import CommonReducer
from repro.data import Datastore, Table
from repro.errors import ExecutionError
from repro.mr import (
    EmitSpec,
    MRJob,
    MapAggSpec,
    MapInput,
    MapReduceEngine,
    OutputSpec,
    TagPolicy,
)
from repro.mr.kv import TaggedValue, pair_bytes, rows_bytes
from repro.ops import AggTask, SPTask, TaskInput


def store(rows):
    ds = Datastore(Catalog())
    ds.load_table(Table("t", Schema.of(("k", T.INT), ("v", T.INT)), rows))
    return ds


class TestEmptyInputs:
    def _agg_job(self, global_group):
        def emit(record):
            return (), {"c": record["v"]}

        task = AggTask("a", TaskInput.shuffle("in", []),
                       group_exprs=[],
                       agg_specs=[("c", "count", (lambda r: r.get("c")),
                                   False, False)],
                       global_agg=global_group)
        return MRJob(
            job_id="g", name="g",
            map_inputs=[MapInput("t", [EmitSpec("in", emit)])],
            reducer=CommonReducer([task], global_group=global_group),
            outputs=[OutputSpec("g.out", "a", ["c"])],
            num_reducers=1)

    def test_global_agg_over_empty_input_emits_one_row(self):
        ds = store([])
        MapReduceEngine(ds).run_job(self._agg_job(True))
        assert ds.intermediate("g.out").rows == [{"c": 0}]

    def test_non_global_job_over_empty_input_emits_nothing(self):
        ds = store([])
        MapReduceEngine(ds).run_job(self._agg_job(False))
        assert ds.intermediate("g.out").rows == []

    def test_counters_zeroed_on_empty(self):
        ds = store([])
        c = MapReduceEngine(ds).run_job(self._agg_job(True))
        assert c.map_output_records == 0
        assert c.reduce_max_task_records == 0
        assert c.total_output_bytes > 0  # the NULL-count row still writes


class TestCombinerEdges:
    def test_combiner_with_global_key(self):
        """A grand aggregate with a combiner collapses the whole map
        output to a single pair."""
        def emit(record):
            return (), {"s": record["v"]}

        task = AggTask("a", TaskInput.shuffle("in", []),
                       group_exprs=[],
                       agg_specs=[("s", "sum", (lambda r: r.get("s")),
                                   False, False)],
                       partial=True, global_agg=True)
        job = MRJob(
            job_id="cg", name="cg",
            map_inputs=[MapInput("t", [EmitSpec("in", emit)])],
            reducer=CommonReducer([task], global_group=True),
            outputs=[OutputSpec("cg.out", "a", ["s"])],
            map_agg=MapAggSpec({"s": ("sum", False, False)}),
            num_reducers=1)
        ds = store([{"k": i, "v": i} for i in range(10)])
        c = MapReduceEngine(ds).run_job(job)
        assert c.map_output_records == 1
        assert ds.intermediate("cg.out").rows == [{"s": 45}]


class TestTagAccounting:
    def test_multi_role_pair_bytes_include_tag(self):
        single = pair_bytes((1,), TaggedValue(frozenset(["a"]), {"v": 1}), 1)
        multi = pair_bytes((1,), TaggedValue(frozenset(["a"]), {"v": 1}), 3)
        assert multi > single  # tags only exist with a role universe > 1

    def test_inverted_beats_direct_for_broad_pairs(self):
        roles = frozenset(["a", "b", "c", "d"])
        broad = pair_bytes((1,), TaggedValue(roles, {}), 5, TagPolicy.BEST)
        direct = pair_bytes((1,), TaggedValue(roles, {}), 5, TagPolicy.DIRECT)
        assert broad < direct

    def test_rows_bytes_empty(self):
        assert rows_bytes([]) == 0
        assert rows_bytes([{}]) == 0


class TestPayloadMapErrors:
    def test_missing_mapped_column_raises(self):
        task = SPTask("sp", TaskInput.shuffle(
            "in", ["k"], payload_map=[("want", "absent")]))
        task.start((1,))
        with pytest.raises(KeyError):
            task.consume((1,), frozenset(["in"]), {"other": 1})


class TestSortEdgeCases:
    def _sort_job(self, ascending):
        def emit(record):
            return (record["v"], record["k"]), {}

        task = SPTask("sp", TaskInput.shuffle("in", ["v", "k"]))
        return MRJob(
            job_id="s", name="s",
            map_inputs=[MapInput("t", [EmitSpec("in", emit)])],
            reducer=CommonReducer([task]),
            outputs=[OutputSpec("s.out", "sp", ["v", "k"])],
            sort_output=True, sort_ascending=ascending)

    def test_mixed_direction_composite_sort(self):
        ds = store([{"k": k, "v": v} for v in (1, 2) for k in (3, 1, 2)])
        MapReduceEngine(ds).run_job(self._sort_job([False, True]))
        rows = ds.intermediate("s.out").rows
        assert [(r["v"], r["k"]) for r in rows] == [
            (2, 1), (2, 2), (2, 3), (1, 1), (1, 2), (1, 3)]

    def test_short_ascending_list_defaults_ascending(self):
        ds = store([{"k": 2, "v": 1}, {"k": 1, "v": 1}])
        MapReduceEngine(ds).run_job(self._sort_job([True]))
        rows = ds.intermediate("s.out").rows
        assert [r["k"] for r in rows] == [1, 2]

    def test_null_keys_sort_first(self):
        ds = Datastore(Catalog())
        ds.load_table(Table("t", Schema.of(("k", T.INT), ("v", T.INT)), [
            {"k": 1, "v": 2}, {"k": 2, "v": None}, {"k": 3, "v": 1}]))
        MapReduceEngine(ds).run_job(self._sort_job([True, True]))
        rows = ds.intermediate("s.out").rows
        assert rows[0]["v"] is None
