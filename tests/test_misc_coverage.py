"""Miscellaneous coverage: rich scalar expressions end-to-end through the
MR pipeline, error formatting, and contention/timing helpers."""

import pytest

from repro.core.translator import translate_sql
from repro.data import rows_equal_unordered
from repro.errors import ReproError, SqlSyntaxError
from repro.mr.engine import run_jobs
from repro.plan.planner import plan_query
from repro.refexec import run_reference
from repro.sqlparser.parser import parse_sql


def check(sql, datastore, namespace):
    ref = run_reference(plan_query(parse_sql(sql), datastore.catalog),
                        datastore)
    for mode in ("ysmart", "hive"):
        tr = translate_sql(sql, mode=mode, catalog=datastore.catalog,
                           namespace=f"{namespace}.{mode}")
        run_jobs(tr.jobs, datastore)
        rows = datastore.intermediate(tr.final_dataset).rows
        assert rows_equal_unordered(rows, ref.rows, tr.output_columns,
                                    1e-6), mode
    return ref


class TestRichExpressionsEndToEnd:
    def test_case_when_in_select_and_group(self, datastore,
                                           fresh_namespace):
        check("""
            SELECT CASE WHEN n_regionkey < 2 THEN 'west' ELSE 'east' END
                     AS zone,
                   count(*) AS n
            FROM nation GROUP BY zone
        """, datastore, fresh_namespace)

    def test_between_filter(self, datastore, fresh_namespace):
        ref = check("SELECT n_name FROM nation "
                    "WHERE n_nationkey BETWEEN 3 AND 7",
                    datastore, fresh_namespace)
        assert len(ref.rows) == 5

    def test_in_list_filter(self, datastore, fresh_namespace):
        check("SELECT s_name FROM supplier "
              "WHERE s_nationkey IN (0, 1, 2, 3)",
              datastore, fresh_namespace)

    def test_not_in_with_join(self, datastore, fresh_namespace):
        check("SELECT s_name, n_name FROM supplier, nation "
              "WHERE s_nationkey = n_nationkey "
              "AND n_regionkey NOT IN (0, 1)",
              datastore, fresh_namespace)

    def test_string_concat_output(self, datastore, fresh_namespace):
        check("SELECT n_name || '-' || n_comment AS tag FROM nation "
              "WHERE n_regionkey = 2",
              datastore, fresh_namespace)

    def test_arithmetic_in_agg_args(self, datastore, fresh_namespace):
        check("SELECT l_orderkey, "
              "sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS t "
              "FROM lineitem GROUP BY l_orderkey",
              datastore, fresh_namespace)

    def test_variance_stddev_end_to_end(self, datastore, fresh_namespace):
        check("SELECT l_orderkey, variance(l_quantity) AS v, "
              "stddev(l_quantity) AS s FROM lineitem "
              "GROUP BY l_orderkey",
              datastore, fresh_namespace)

    def test_is_null_after_outer_join(self, datastore, fresh_namespace):
        """Anti-join via LEFT JOIN + IS NULL — 'executed by the job
        itself', per the paper's JOIN-job description."""
        check("""
            SELECT n_name FROM nation
            LEFT OUTER JOIN supplier ON n_nationkey = s_nationkey
            WHERE s_suppkey IS NULL
        """, datastore, fresh_namespace)


class TestErrorFormatting:
    def test_syntax_error_carries_position(self):
        with pytest.raises(SqlSyntaxError) as err:
            parse_sql("SELECT a FROM\nWHERE")
        assert err.value.line == 2
        assert "line 2" in str(err.value)

    def test_all_errors_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            parse_sql("NOT SQL AT ALL")
        from repro.catalog import Catalog
        with pytest.raises(ReproError):
            Catalog().schema("missing")


class TestTimingHelpers:
    def test_query_timing_aggregates(self):
        from repro.hadoop.costmodel import JobTiming, QueryTiming
        timing = QueryTiming(cluster="c", jobs=[
            JobTiming("j1", "a", startup_s=10, map_s=100, shuffle_s=5,
                      reduce_s=20),
            JobTiming("j2", "b", startup_s=10, map_s=50, shuffle_s=2,
                      reduce_s=10, scheduling_gap_s=3),
        ])
        assert timing.total_map_s == 150
        assert timing.total_reduce_s == 37
        assert timing.total_s == pytest.approx(210)

    def test_job_timing_total(self):
        from repro.hadoop.costmodel import JobTiming
        t = JobTiming("j", "x", 1, 2, 3, 4, scheduling_gap_s=5)
        assert t.total_s == 15
