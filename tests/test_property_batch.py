"""Property-based tests for batch translation: random query batches are
always correct, and sharing never runs more jobs than per-query mode."""

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.catalog import Catalog, Schema
from repro.catalog.types import ColumnType as T
from repro.core.batch import run_batch, translate_batch
from repro.data import Datastore, Table, rows_equal_unordered
from repro.plan.planner import plan_query
from repro.refexec import run_reference
from repro.sqlparser.parser import parse_sql

_ns = itertools.count(1)

fact_rows = st.lists(
    st.fixed_dictionaries({
        "k": st.integers(0, 5),
        "g": st.integers(0, 3),
        "v": st.one_of(st.none(), st.integers(-30, 30)),
    }), min_size=0, max_size=20)

#: Query templates over the shared fact table; some partition on k (and
#: can share jobs), some on g, some filter.
TEMPLATES = [
    "SELECT f.k, count(*) AS n FROM fact AS f GROUP BY f.k",
    "SELECT f.k, sum(f.v) AS s FROM fact AS f GROUP BY f.k",
    "SELECT f.g, max(f.v) AS m FROM fact AS f GROUP BY f.g",
    "SELECT f.k, min(f.v) AS mn FROM fact AS f WHERE f.v > 0 GROUP BY f.k",
    "SELECT a.k, count(*) AS n FROM fact AS a, fact AS b "
    "WHERE a.k = b.k AND a.v < b.v GROUP BY a.k",
]

batches = st.lists(st.sampled_from(TEMPLATES), min_size=1, max_size=4,
                   unique=True)


def make_ds(rows):
    ds = Datastore(Catalog())
    ds.load_table(Table("fact", Schema.of(
        ("k", T.INT), ("g", T.INT), ("v", T.INT)), rows))
    return ds


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=fact_rows, templates=batches)
def test_batch_correct_and_never_worse(rows, templates):
    ds = make_ds(rows)
    queries = {f"q{i}": sql for i, sql in enumerate(templates)}
    n = next(_ns)

    shared = translate_batch(queries, catalog=ds.catalog,
                             namespace=f"pb{n}s")
    separate = translate_batch(queries, catalog=ds.catalog,
                               namespace=f"pb{n}n",
                               share_across_queries=False)
    assert shared.job_count <= separate.job_count

    result = run_batch(shared, ds)
    for qid, sql in queries.items():
        ref = run_reference(plan_query(parse_sql(sql), ds.catalog), ds)
        cols = [bare for _, bare in shared.output_columns[qid]]
        assert rows_equal_unordered(result.rows[qid], ref.rows, cols,
                                    1e-6), qid
