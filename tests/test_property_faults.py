"""Property-based tests for the fault-tolerant runtime: for ANY fault
seed, ANY failure probability in [0, 0.3], ANY executor/scheduler, and
ANY supported query, a run with injected task kills is byte-identical —
rows, ``comparable()`` counters, and intermediate datasets — to the
fault-free run, and the scheduler never starts more attempts than
``tasks * max_attempts``.

This generalizes the retry-identity examples in
``tests/test_runtime_faults.py`` the same way
``tests/test_property_runtime.py`` generalizes the executor-identity
examples: the invariant must hold for *every* plan, not the seeds we
happened to pick.
"""

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.catalog import Catalog, Schema
from repro.catalog.types import ColumnType as T
from repro.cmf import CommonReducer
from repro.core.translator import translate_sql
from repro.data import Datastore, Table
from repro.mr import (
    EmitSpec,
    FAULT_KINDS,
    FaultPlan,
    MapInput,
    MRJob,
    OutputSpec,
    ParallelExecutor,
    Runtime,
    make_executor,
)
from repro.ops import SPTask, TaskInput
from repro.workloads.queries import paper_queries
from repro.workloads.runner import build_datastore

_ns = itertools.count(1)

MAX_ATTEMPTS = 20

fact_rows = st.lists(
    st.fixed_dictionaries({
        "k": st.integers(0, 6),
        "g": st.integers(0, 3),
        "v": st.one_of(st.none(), st.integers(-50, 50)),
    }), min_size=0, max_size=25)

seeds = st.integers(0, 2 ** 16)
probabilities = st.floats(0.0, 0.3, allow_nan=False)
worker_choices = st.integers(1, 5)  # 1 selects the serial executor
scheduler_choices = st.sampled_from(["dataflow", "wave"])
split_choices = st.one_of(st.none(), st.integers(1, 8))

QUERY_SHAPES = [
    "SELECT f.g, sum(f.v) AS a FROM fact AS f GROUP BY f.g",
    "SELECT f.g, count(DISTINCT f.v) AS a FROM fact AS f "
    "WHERE f.v > 0 GROUP BY f.g",
    "SELECT f.k, f.v FROM fact AS f, "
    "(SELECT g, avg(v) AS a FROM fact GROUP BY g) AS m "
    "WHERE f.g = m.g AND f.v < m.a",
    "SELECT count(*) AS n, max(f.v) AS m FROM fact AS f",
]


def make_datastore(fact):
    ds = Datastore(Catalog())
    ds.load_table(Table("fact", Schema.of(
        ("k", T.INT), ("g", T.INT), ("v", T.INT)), fact))
    return ds


def snapshot(datastore, jobs):
    return {name: list(datastore.intermediate(name).rows)
            for job in jobs for name in job.output_datasets}


def assert_attempt_budget_respected(trace, max_attempts):
    """Started attempts never exceed the per-task retry budget."""
    planned = sum(1 for t in trace.tasks.values()
                  if t.kind in FAULT_KINDS and "@a" not in t.task_id)
    extra = sum(1 for t in trace.tasks.values() if "@a" in t.task_id)
    assert planned + extra <= planned * max_attempts


def check_faults_invisible(jobs, dependencies, datastore, plan,
                           workers=1, scheduler="dataflow",
                           split_rows=None, speculate=False):
    base = Runtime(datastore, split_rows=split_rows)
    runs_base = base.run_jobs(jobs, dependencies=dependencies)
    mid_base = snapshot(datastore, jobs)

    faulty = Runtime(datastore, executor=make_executor(workers),
                     scheduler=scheduler, split_rows=split_rows,
                     fault_plan=plan, max_attempts=MAX_ATTEMPTS,
                     speculate=speculate, keep_trace=True)
    runs = faulty.run_jobs(jobs, dependencies=dependencies)

    assert [r.counters.comparable() for r in runs] == \
        [r.counters.comparable() for r in runs_base]
    assert snapshot(datastore, jobs) == mid_base
    assert sum(r.counters.task_retries for r in runs) \
        == faulty.trace.task_retries
    assert_attempt_budget_respected(faulty.trace, MAX_ATTEMPTS)


common = settings(max_examples=15, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])


@common
@given(fact=fact_rows, shape=st.sampled_from(QUERY_SHAPES),
       seed=seeds, probability=probabilities,
       workers=worker_choices, scheduler=scheduler_choices,
       split_rows=split_choices)
def test_random_faults_invisible_on_random_plans(fact, shape, seed,
                                                 probability, workers,
                                                 scheduler, split_rows):
    ds = make_datastore(fact)
    tr = translate_sql(shape, catalog=ds.catalog,
                       namespace=f"pf{next(_ns)}")
    check_faults_invisible(tr.jobs, tr.dependencies(), ds,
                           FaultPlan(probability, seed=seed),
                           workers=workers, scheduler=scheduler,
                           split_rows=split_rows)


_paper_store = None


def paper_store():
    global _paper_store
    if _paper_store is None:
        _paper_store = build_datastore(tpch_scale=0.002,
                                       clickstream_users=40, seed=11)
    return _paper_store


# The cheap end of the paper workload; the full set runs in the
# fault-injection suite leg (REPRO_SUITE_FAULTS=1) and the benchmark.
PAPER_SAMPLE = ["q_agg", "q_csa", "q17"]


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(name=st.sampled_from(PAPER_SAMPLE), seed=seeds,
       probability=probabilities, workers=worker_choices,
       scheduler=scheduler_choices, speculate=st.booleans())
def test_random_faults_invisible_on_paper_queries(name, seed, probability,
                                                  workers, scheduler,
                                                  speculate):
    ds = paper_store()
    tr = translate_sql(paper_queries()[name], catalog=ds.catalog,
                       namespace=f"pfq{next(_ns)}.{name}")
    check_faults_invisible(tr.jobs, tr.dependencies(), ds,
                           FaultPlan(probability, seed=seed),
                           workers=workers, scheduler=scheduler,
                           split_rows="auto", speculate=speculate)


# -- process pools: hand-built picklable jobs (translator jobs carry
# closures and cannot cross a process boundary) ------------------------------

def _emit_kv(record):
    return (record["k"],), {"v": record["v"]}


def picklable_chain(ns):
    def job(job_id, dataset, out):
        task = SPTask("sp", TaskInput.shuffle("in", ["k"]))
        return MRJob(
            job_id=job_id, name="pass",
            map_inputs=[MapInput(dataset, [EmitSpec("in", _emit_kv)])],
            reducer=CommonReducer([task]),
            outputs=[OutputSpec(out, "sp", ["k", "v"])])
    return [job(f"{ns}.a", "fact", f"{ns}.a.out"),
            job(f"{ns}.b", f"{ns}.a.out", f"{ns}.b.out")]


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(fact=fact_rows, seed=seeds, probability=probabilities,
       scheduler=scheduler_choices)
def test_random_faults_invisible_on_process_pools(fact, seed, probability,
                                                  scheduler):
    ds = make_datastore(fact)
    ns = f"pp{next(_ns)}"
    jobs = picklable_chain(ns)
    base = Runtime(ds, split_rows=8).run_jobs(picklable_chain(ns))
    mid_base = snapshot(ds, jobs)
    faulty = Runtime(ds, executor=ParallelExecutor(max_workers=2,
                                                   kind="process"),
                     scheduler=scheduler, split_rows=8,
                     fault_plan=FaultPlan(probability, seed=seed),
                     max_attempts=MAX_ATTEMPTS, keep_trace=True)
    runs = faulty.run_jobs(jobs)
    assert snapshot(ds, jobs) == mid_base
    assert [r.counters.comparable() for r in runs] == \
        [r.counters.comparable() for r in base]
    assert_attempt_budget_respected(faulty.trace, MAX_ATTEMPTS)
