"""Tests for the multi-tenant query service: cache thread safety,
fair-share scheduling, tenant isolation, cross-tenant reuse, and the
newline-delimited-JSON wire layer."""

import itertools
import threading

import pytest

from repro.errors import ExecutionError
from repro.reuse.cache import CachedOutput, CacheEntry, ResultCache
from repro.service import (FairShareAdmission, FairShareExecutor,
                           QueryService, ServiceClient, ServiceDaemon)
from repro.service.client import ServiceError
from repro.workloads import WorkloadSession, paper_queries

_ns = itertools.count(1)

AGG_SQL = ("SELECT l_orderkey, sum(l_quantity) AS qty FROM lineitem "
           "GROUP BY l_orderkey")


def _entry(key: str, size: int, owner: str = "") -> CacheEntry:
    return CacheEntry(key=key, outputs=[CachedOutput(columns=["c"],
                                                     rows=[{"c": 1}])],
                      counters=None, size_bytes=size, owner=owner)


class TestResultCacheThreadSafety:
    def test_concurrent_hammer_keeps_accounting_consistent(self):
        """Many threads admitting, looking up, and clearing at once must
        never corrupt the byte accounting or raise — the original
        unguarded OrderedDict mutations did both."""
        cache = ResultCache(budget_bytes=50_000)
        barrier = threading.Barrier(8)
        errors = []

        def hammer(worker: int):
            try:
                barrier.wait()
                for i in range(300):
                    key = f"k{worker}-{i % 40}"
                    cache.admit(_entry(key, size=100 + (i % 7) * 50,
                                       owner=f"t{worker}"))
                    cache.lookup(key, tenant=f"t{(worker + 1) % 8}")
                    cache.lookup(f"k{(worker + 3) % 8}-{i % 40}",
                                 tenant=f"t{worker}")
                    if i % 97 == 0:
                        cache.clear()
            except Exception as exc:  # pragma: no cover - the failure
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(w,))
                   for w in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        # the running total must equal a fresh O(n) sweep, and respect
        # the budget
        assert cache.total_bytes == sum(
            e.size_bytes for e in cache._entries.values())
        assert cache.total_bytes <= cache.budget_bytes
        stats = cache.stats
        assert stats.hits + stats.misses == 2 * 8 * 300

    def test_running_total_tracks_replace_and_evict(self):
        cache = ResultCache(budget_bytes=1000)
        cache.admit(_entry("a", 400))
        cache.admit(_entry("b", 400))
        assert cache.total_bytes == 800
        cache.admit(_entry("a", 100))          # replace shrinks
        assert cache.total_bytes == 500
        cache.admit(_entry("c", 600))          # evicts LRU victim b
        assert cache.total_bytes == 700
        assert "b" not in cache
        assert cache.stats.evictions == 1

    def test_cross_tenant_hits_attributed(self):
        cache = ResultCache(budget_bytes=1000)
        cache.admit(_entry("a", 100, owner="alice"))
        cache.lookup("a", tenant="alice")
        assert cache.stats.cross_tenant_hits == 0
        cache.lookup("a", tenant="bob")
        assert cache.stats.cross_tenant_hits == 1
        cache.lookup("a")                      # anonymous: not counted
        assert cache.stats.cross_tenant_hits == 1


class TestFairShare:
    def test_weighted_dispatch_rate(self):
        """With both tenants saturating a 1-worker pool, stride
        scheduling dispatches weight-proportionally (2:1)."""
        executor = FairShareExecutor(workers=1)
        heavy = executor.register("heavy", weight=2.0)
        light = executor.register("light", weight=1.0)
        release = threading.Event()
        done_count = threading.Semaphore(0)

        def task():
            release.wait()

        def done(result, exc):
            done_count.release()

        # one task occupies the single worker; the rest queue up
        for _ in range(30):
            heavy.session().submit(task, done)
            light.session().submit(task, done)
        release.set()
        for _ in range(60):
            assert done_count.acquire(timeout=10)
        executor.shutdown()
        dispatched = executor.dispatched
        assert dispatched["heavy"] == dispatched["light"] == 30
        # weighted alternation shows up in the pass counters: heavy's
        # final pass is half light's (same task count, double weight)
        assert executor._pass["heavy"] < executor._pass["light"]

    def test_admission_divides_slots_among_active_tenants(self):
        executor = FairShareExecutor(workers=8)
        executor.register("a", weight=3.0)
        executor.register("b", weight=1.0)
        adm_a = FairShareAdmission(executor, "a")
        adm_b = FairShareAdmission(executor, "b")
        # nobody active: each asker gets the whole cap
        assert adm_a.task_slots(8) == 8
        # both active: weighted split (ceil of 8*3/4 and 8*1/4)
        adm_a.task_started("map")
        adm_b.task_started("map")
        assert adm_a.task_slots(8) == 6
        assert adm_b.task_slots(8) == 2
        # b goes idle: a reclaims everything
        adm_b.task_finished("map")
        assert adm_a.task_slots(8) == 8
        executor.shutdown()

    def test_rejects_bad_weights_and_worker_counts(self):
        with pytest.raises(ExecutionError):
            FairShareExecutor(workers=0)
        executor = FairShareExecutor(workers=1)
        with pytest.raises(ExecutionError):
            executor.register("t", weight=0)
        executor.shutdown()


class TestQueryService:
    QUERIES = ["q17", "q18", "q21"]

    def _sequential_rows(self, datastore, tenant):
        session = WorkloadSession(
            datastore, cache_mb=None, stats="off",
            namespace_prefix=f"seq{next(_ns)}.{tenant}")
        return [session.run(paper_queries()[name], name=name).rows
                for name in self.QUERIES]

    def test_concurrent_tenants_match_sequential(self, datastore):
        """Two tenants hammering the service concurrently produce rows
        byte-identical to isolated sequential sessions, and the shared
        cache records cross-tenant hits."""
        reference = {t: self._sequential_rows(datastore, t)
                     for t in ("alice", "bob")}
        with QueryService(datastore, workers=4, cache_mb=64.0,
                          stats="off") as service:
            service.open_session("alice", weight=2.0)
            service.open_session("bob", weight=1.0)
            observed = {}

            def drive(tenant):
                observed[tenant] = [
                    service.run(tenant, paper_queries()[name],
                                name=name).rows
                    for name in self.QUERIES]

            threads = [threading.Thread(target=drive, args=(t,))
                       for t in ("alice", "bob")]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert observed["alice"] == reference["alice"]
            assert observed["bob"] == reference["bob"]
            cache_stats = service.service_stats()["cache"]
            assert cache_stats["cross_tenant_hits"] >= 1
            for tenant in ("alice", "bob"):
                counters = service.tenant_stats(tenant)
                assert counters["queries"] == len(self.QUERIES)
                assert counters["jobs"] > 0
                assert counters["wall_s"] > 0

    def test_private_cache_policy_isolates_fingerprints(self, datastore):
        with QueryService(datastore, workers=2, cache_mb=64.0,
                          stats="off") as service:
            service.open_session("p1", cache_policy="private")
            service.open_session("p2", cache_policy="private")
            first = service.run("p1", AGG_SQL)
            second = service.run("p2", AGG_SQL)
            assert first.rows == second.rows
            stats = service.service_stats()["cache"]
            # same plan, same inputs — but private keys never collide
            assert stats["cross_tenant_hits"] == 0
            assert service.tenant_stats("p2")["cache_hits"] == 0
            # self-reuse still works within the private namespace
            service.run("p2", AGG_SQL)
            assert service.tenant_stats("p2")["cache_hits"] > 0

    def test_shared_policy_serves_other_tenants(self, datastore):
        with QueryService(datastore, workers=2, cache_mb=64.0,
                          stats="off") as service:
            service.open_session("s1")
            service.open_session("s2")
            service.run("s1", AGG_SQL)
            result = service.run("s2", AGG_SQL)
            assert service.tenant_stats("s2")["cache_hits"] == \
                len(result.runs)
            assert (service.service_stats()["cache"]
                    ["cross_tenant_hits"]) >= len(result.runs)

    def test_unknown_tenant_is_an_error(self, datastore):
        with QueryService(datastore, workers=1) as service:
            with pytest.raises(ExecutionError, match="unknown tenant"):
                service.run("ghost", AGG_SQL)
            with pytest.raises(ExecutionError, match="whitespace-free"):
                service.open_session("bad tenant")

    def test_reconnect_preserves_counters(self, datastore):
        with QueryService(datastore, workers=1, cache_mb=16.0,
                          stats="off") as service:
            service.open_session("t", weight=1.0)
            service.run("t", AGG_SQL)
            service.open_session("t", weight=3.0)   # reconnect re-weights
            assert service.tenant_stats("t")["queries"] == 1
            assert service.tenant_stats("t")["weight"] == 3.0
            assert service.executor.weight_of("t") == 3.0


class TestServiceWire:
    def test_socket_round_trip(self, datastore):
        service = QueryService(datastore, workers=2, cache_mb=16.0,
                               stats="off")
        daemon = ServiceDaemon(service, port=0).start()
        try:
            with ServiceClient(port=daemon.port) as client:
                client.hello("wire", weight=1.0)
                response = client.query(AGG_SQL, name="agg")
                session = WorkloadSession(
                    datastore, cache_mb=None, stats="off",
                    namespace_prefix=f"seq{next(_ns)}.wire")
                expected = session.run(AGG_SQL).rows
                assert response["rows"] == expected
                assert response["columns"] == ["l_orderkey", "qty"]
                assert response["jobs"] >= 1
                stats = client.stats()
                assert stats["tenant"]["queries"] == 1
                assert stats["service"]["workers"] == 2
                client.shutdown()
            daemon.join(10)
        finally:
            service.close()

    def test_bad_sql_does_not_kill_the_daemon(self, datastore):
        service = QueryService(datastore, workers=1, stats="off")
        daemon = ServiceDaemon(service, port=0).start()
        try:
            with ServiceClient(port=daemon.port) as client:
                client.hello("errs")
                with pytest.raises(ServiceError):
                    client.query("SELECT FROM nothing")
                # the connection (and daemon) survive the failure
                assert client.query(AGG_SQL)["rows"]
                with pytest.raises(ServiceError, match="hello"):
                    ServiceClient(port=daemon.port).query(AGG_SQL)
                client.shutdown()
            daemon.join(10)
        finally:
            service.close()


class TestSessionStatsRename:
    def test_stats_alias_warns_and_matches(self, datastore):
        session = WorkloadSession(datastore, cache_mb=16,
                                  namespace_prefix=f"dep{next(_ns)}")
        session.run(AGG_SQL)
        with pytest.warns(DeprecationWarning, match="cache_stats"):
            legacy = session.stats
        assert legacy is session.cache_stats
