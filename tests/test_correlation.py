"""Tests for partition keys and intra-query correlation detection."""

import pytest

from repro.catalog import Catalog, Schema, standard_catalog
from repro.catalog.types import ColumnType as T
from repro.core.correlation import CorrelationAnalysis, UnionFind
from repro.plan.nodes import AggNode, JoinNode, SortNode
from repro.plan.planner import plan_query
from repro.sqlparser.parser import parse_sql
from repro.workloads.queries import paper_queries


def analyze(sql, catalog=None):
    plan = plan_query(parse_sql(sql), catalog or standard_catalog())
    return plan, CorrelationAnalysis(plan)


def node(plan, label):
    for n in plan.post_order():
        if n.label == label:
            return n
    raise AssertionError(f"no node {label}")


class TestUnionFind:
    def test_basics(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.same("a", "c")
        assert not uf.same("a", "d")

    def test_find_is_idempotent(self):
        uf = UnionFind()
        assert uf.find("x") == "x"
        uf.union("x", "y")
        assert uf.find("x") == uf.find("y")


class TestPartitionKeys:
    def test_join_pk_is_key_class(self):
        plan, ca = analyze(
            "SELECT l_orderkey FROM lineitem, orders "
            "WHERE l_orderkey = o_orderkey")
        join = node(plan, "JOIN1")
        pk = ca.pk(join)
        assert pk is not None and len(pk) == 1
        # Both join columns are in the same class.
        assert ca.class_of("lineitem.l_orderkey") == \
            ca.class_of("orders.o_orderkey")

    def test_equijoin_columns_are_aliases(self):
        """Paper footnote 3: the two sides of an equi-join predicate are
        aliases of the same partition key."""
        _, ca = analyze(
            "SELECT l_partkey FROM lineitem, part WHERE p_partkey = l_partkey")
        assert ca.class_of("lineitem.l_partkey") == \
            ca.class_of("part.p_partkey")

    def test_scans_of_same_table_share_base_classes(self):
        """Columns of two scans of the same base table compare equal."""
        sql = """
        SELECT a.l_orderkey FROM
          (SELECT l_orderkey FROM lineitem GROUP BY l_orderkey) AS a,
          (SELECT l_orderkey FROM lineitem GROUP BY l_orderkey) AS b
        WHERE a.l_orderkey = b.l_orderkey
        """
        plan, ca = analyze(sql)
        aggs = [n for n in plan.post_order() if isinstance(n, AggNode)]
        assert ca.pk(aggs[0]) == ca.pk(aggs[1])

    def test_global_agg_has_no_pk(self):
        plan, ca = analyze("SELECT sum(l_quantity) AS s FROM lineitem")
        assert ca.pk(plan) is None

    def test_sort_has_no_pk(self):
        plan, ca = analyze("SELECT l_orderkey FROM lineitem ORDER BY l_orderkey")
        assert isinstance(plan, SortNode)
        assert ca.pk(plan) is None

    def test_agg_pk_candidates_subset_of_groups(self):
        plan, ca = analyze(
            "SELECT l_orderkey, l_partkey, count(*) AS n FROM lineitem "
            "GROUP BY l_orderkey, l_partkey")
        pk = ca.pk(plan.children[0] if isinstance(plan, SortNode) else plan)
        group_classes = {ca.class_of("lineitem.l_orderkey"),
                         ca.class_of("lineitem.l_partkey")}
        assert pk is not None and pk <= group_classes

    def test_agg_pk_heuristic_follows_child_join(self):
        """The PK candidate connecting the child join wins (paper's
        max-connections heuristic)."""
        sql = """
        SELECT o_custkey, l_partkey, count(*) AS n
        FROM lineitem, orders WHERE l_orderkey = o_orderkey
        GROUP BY o_custkey, l_partkey, l_orderkey
        """
        # group includes l_orderkey == join PK; heuristic must pick it.
        plan, ca = analyze(sql.replace("GROUP BY o_custkey, l_partkey, l_orderkey",
                                       "GROUP BY o_custkey, l_partkey, l_orderkey"))
        # find the agg
        agg = next(n for n in plan.post_order() if isinstance(n, AggNode))
        join = next(n for n in plan.post_order() if isinstance(n, JoinNode))
        assert ca.pk(agg) == ca.pk(join)
        assert ca.job_flow_correlated(agg, join)


class TestCorrelationsOnPaperQueries:
    @pytest.fixture(scope="class")
    def qcsa(self):
        plan = plan_query(parse_sql(paper_queries()["q_csa"]),
                          standard_catalog())
        return plan, CorrelationAnalysis(plan)

    def test_qcsa_all_five_share_pk(self, qcsa):
        plan, ca = qcsa
        pks = {label: ca.pk(node(plan, label))
               for label in ["JOIN1", "AGG1", "AGG2", "JOIN2", "AGG3"]}
        assert len(set(pks.values())) == 1
        assert ca.pk(node(plan, "AGG4")) is None

    def test_qcsa_jfc_chain(self, qcsa):
        plan, ca = qcsa
        assert ca.job_flow_correlated(node(plan, "AGG1"), node(plan, "JOIN1"))
        assert ca.job_flow_correlated(node(plan, "AGG2"), node(plan, "AGG1"))
        assert ca.job_flow_correlated(node(plan, "JOIN2"), node(plan, "AGG2"))
        assert ca.job_flow_correlated(node(plan, "AGG3"), node(plan, "JOIN2"))

    def test_qcsa_ic_between_joins(self, qcsa):
        plan, ca = qcsa
        # JOIN1 (self-join of clicks) and JOIN2 (clicks + mp) share input.
        assert ca.input_correlated(node(plan, "JOIN1"), node(plan, "JOIN2"))

    def test_q17_correlations(self):
        plan = plan_query(parse_sql(paper_queries()["q17"]),
                          standard_catalog())
        ca = CorrelationAnalysis(plan)
        agg1, join1, join2 = (node(plan, l) for l in ["AGG1", "JOIN1", "JOIN2"])
        assert ca.transit_correlated(agg1, join1)
        assert ca.job_flow_correlated(join2, agg1)
        assert ca.job_flow_correlated(join2, join1)

    def test_q21_subtree_tc_triple(self):
        plan = plan_query(parse_sql(paper_queries()["q21_subtree"]),
                          standard_catalog())
        ca = CorrelationAnalysis(plan)
        join1, agg1, agg2 = (node(plan, l) for l in ["JOIN1", "AGG1", "AGG2"])
        assert ca.transit_correlated(join1, agg1)
        assert ca.transit_correlated(join1, agg2)
        assert ca.transit_correlated(agg1, agg2)

    def test_q18_two_pk_groups(self):
        plan = plan_query(parse_sql(paper_queries()["q18"]),
                          standard_catalog())
        ca = CorrelationAnalysis(plan)
        orderkey_group = {ca.pk(node(plan, l))
                          for l in ["JOIN1", "AGG1", "JOIN2"]}
        custkey_group = {ca.pk(node(plan, l)) for l in ["JOIN3", "AGG2"]}
        assert len(orderkey_group) == 1
        assert len(custkey_group) == 1
        assert orderkey_group != custkey_group


class TestDefinitionProperties:
    def test_tc_implies_ic(self):
        """Transit correlation is IC plus PK equality by definition."""
        for name in ["q17", "q18", "q21", "q_csa"]:
            plan = plan_query(parse_sql(paper_queries()[name]),
                              standard_catalog())
            ca = CorrelationAnalysis(plan)
            nodes = ca.operator_nodes
            for i, a in enumerate(nodes):
                for b in nodes[i + 1:]:
                    if ca.transit_correlated(a, b):
                        assert ca.input_correlated(a, b)
                        assert ca.pk(a) == ca.pk(b)

    def test_jfc_requires_child_relation(self):
        plan = plan_query(parse_sql(paper_queries()["q17"]),
                          standard_catalog())
        ca = CorrelationAnalysis(plan)
        agg1, join1 = node(plan, "AGG1"), node(plan, "JOIN1")
        # Same PK but JOIN1 is not a child of AGG1.
        assert not ca.job_flow_correlated(agg1, join1)

    def test_summary_lists_pairs(self):
        plan = plan_query(parse_sql(paper_queries()["q17"]),
                          standard_catalog())
        ca = CorrelationAnalysis(plan)
        summary = ca.correlation_summary()
        kinds = {k for _, _, k in summary}
        assert "TC" in kinds and "JFC" in kinds
