"""Property-based tests for the columnar batch data plane: for ANY
random query in the supported subset, ANY split size (1-record
batches, tiny, default one-split, huge), ANY executor/scheduler
combination, and with random fault injection layered on top, the batch
plane is byte-identical to the per-row plane — rows, ``comparable()``
counters, and every intermediate dataset — and both match the
reference executor.

This is the batch plane's load-bearing contract (no byte may move when
operators exchange column batches instead of rows), generalized the
same way ``tests/test_property_faults.py`` generalizes the
fault-injection examples: the invariant must hold for *every* plan,
not just the seeds we picked.
"""

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.catalog import Catalog, Schema
from repro.catalog.types import ColumnType as T
from repro.cmf import CommonReducer
from repro.core.translator import translate_sql
from repro.data import Datastore, Table, rows_equal_unordered
from repro.mr import (
    EmitSpec,
    FaultPlan,
    MapInput,
    MRJob,
    OutputSpec,
    ParallelExecutor,
    Runtime,
    make_executor,
)
from repro.ops import SPTask, TaskInput
from repro.plan.planner import plan_query
from repro.refexec import run_reference
from repro.sqlparser.parser import parse_sql
from repro.workloads.queries import paper_queries
from repro.workloads.runner import build_datastore

_ns = itertools.count(1)

MAX_ATTEMPTS = 20

fact_rows = st.lists(
    st.fixed_dictionaries({
        "k": st.integers(0, 6),
        "g": st.integers(0, 3),
        "v": st.one_of(st.none(), st.integers(-50, 50)),
    }), min_size=0, max_size=25)

dim_rows = st.lists(
    st.fixed_dictionaries({
        "k": st.integers(0, 6),
        "w": st.integers(0, 9),
    }), min_size=0, max_size=10)

#: 1-record batches, tiny batches, one split per input, and a split cap
#: far above any table (same partitioning as None, different plumbing).
split_choices = st.sampled_from([1, 7, None, 10_000])
worker_choices = st.integers(1, 5)  # 1 selects the serial executor
scheduler_choices = st.sampled_from(["dataflow", "wave"])
seeds = st.integers(0, 2 ** 16)
probabilities = st.floats(0.0, 0.3, allow_nan=False)

QUERY_SHAPES = [
    "SELECT f.g, sum(f.v) AS a FROM fact AS f GROUP BY f.g",
    "SELECT f.g, count(DISTINCT f.v) AS a FROM fact AS f "
    "WHERE f.v > 0 GROUP BY f.g",
    "SELECT f.g, d.w FROM fact AS f, dim AS d WHERE f.k = d.k",
    "SELECT d.w, avg(f.v) AS a FROM fact AS f, dim AS d "
    "WHERE f.k = d.k GROUP BY d.w",
    "SELECT f.k, f.v FROM fact AS f, "
    "(SELECT g, avg(v) AS a FROM fact GROUP BY g) AS m "
    "WHERE f.g = m.g AND f.v < m.a",
    "SELECT count(*) AS n, max(f.v) AS m FROM fact AS f",
]


def make_datastore(fact, dim):
    ds = Datastore(Catalog())
    ds.load_table(Table("fact", Schema.of(
        ("k", T.INT), ("g", T.INT), ("v", T.INT)), fact))
    ds.load_table(Table("dim", Schema.of(("k", T.INT), ("w", T.INT)), dim))
    return ds


def snapshot(datastore, jobs):
    return {name: list(datastore.intermediate(name).rows)
            for job in jobs for name in job.output_datasets}


def check_planes_identical(jobs, dependencies, datastore,
                           workers=1, scheduler="dataflow",
                           split_rows=None, fault_plan=None):
    """Row plane (serial, fault-free) vs batch plane (full config)."""
    row_rt = Runtime(datastore, split_rows=split_rows, data_plane="row")
    runs_row = row_rt.run_jobs(jobs, dependencies=dependencies)
    mid_row = snapshot(datastore, jobs)

    kwargs = {}
    if fault_plan is not None:
        kwargs = {"fault_plan": fault_plan, "max_attempts": MAX_ATTEMPTS}
    batch_rt = Runtime(datastore, executor=make_executor(workers),
                       scheduler=scheduler, split_rows=split_rows,
                       data_plane="batch", **kwargs)
    runs_batch = batch_rt.run_jobs(jobs, dependencies=dependencies)

    assert [r.counters.comparable() for r in runs_batch] == \
        [r.counters.comparable() for r in runs_row]
    assert snapshot(datastore, jobs) == mid_row


common = settings(max_examples=15, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])


@common
@given(fact=fact_rows, dim=dim_rows, shape=st.sampled_from(QUERY_SHAPES),
       workers=worker_choices, scheduler=scheduler_choices,
       split_rows=split_choices)
def test_batch_plane_identical_on_random_plans(fact, dim, shape, workers,
                                               scheduler, split_rows):
    ds = make_datastore(fact, dim)
    tr = translate_sql(shape, catalog=ds.catalog,
                       namespace=f"bp{next(_ns)}")
    check_planes_identical(tr.jobs, tr.dependencies(), ds,
                           workers=workers, scheduler=scheduler,
                           split_rows=split_rows)
    # Both planes must also compute the reference relation.
    ref = run_reference(plan_query(parse_sql(shape), ds.catalog), ds)
    rows = ds.intermediate(tr.final_dataset).rows
    assert rows_equal_unordered(rows, ref.rows, tr.output_columns,
                                float_tol=1e-6), shape


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(fact=fact_rows, dim=dim_rows, shape=st.sampled_from(QUERY_SHAPES),
       seed=seeds, probability=probabilities,
       workers=worker_choices, scheduler=scheduler_choices,
       split_rows=split_choices)
def test_batch_plane_identical_under_faults(fact, dim, shape, seed,
                                            probability, workers,
                                            scheduler, split_rows):
    ds = make_datastore(fact, dim)
    tr = translate_sql(shape, catalog=ds.catalog,
                       namespace=f"bpf{next(_ns)}")
    check_planes_identical(tr.jobs, tr.dependencies(), ds,
                           workers=workers, scheduler=scheduler,
                           split_rows=split_rows,
                           fault_plan=FaultPlan(probability, seed=seed))


_paper_store = None


def paper_store():
    global _paper_store
    if _paper_store is None:
        _paper_store = build_datastore(tpch_scale=0.002,
                                       clickstream_users=40, seed=11)
    return _paper_store


# The cheap end of the paper workload; the whole suite runs on the row
# plane in the REPRO_SUITE_BATCH=0 CI leg, and the benchmark pins all
# six queries across three arms.
PAPER_SAMPLE = ["q_agg", "q_csa", "q17"]


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(name=st.sampled_from(PAPER_SAMPLE), workers=worker_choices,
       scheduler=scheduler_choices, split_rows=split_choices)
def test_batch_plane_identical_on_paper_queries(name, workers, scheduler,
                                                split_rows):
    ds = paper_store()
    tr = translate_sql(paper_queries()[name], catalog=ds.catalog,
                       namespace=f"bpq{next(_ns)}.{name}")
    check_planes_identical(tr.jobs, tr.dependencies(), ds,
                           workers=workers, scheduler=scheduler,
                           split_rows=split_rows)


# -- process pools: hand-built picklable jobs (translator jobs carry
# closures and cannot cross a process boundary) ------------------------------

def _emit_kv(record):
    return (record["k"],), {"v": record["v"]}


def picklable_chain(ns):
    def job(job_id, dataset, out):
        task = SPTask("sp", TaskInput.shuffle("in", ["k"]))
        return MRJob(
            job_id=job_id, name="pass",
            map_inputs=[MapInput(dataset, [EmitSpec("in", _emit_kv)])],
            reducer=CommonReducer([task]),
            outputs=[OutputSpec(out, "sp", ["k", "v"])])
    return [job(f"{ns}.a", "fact", f"{ns}.a.out"),
            job(f"{ns}.b", f"{ns}.a.out", f"{ns}.b.out")]


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(fact=fact_rows, scheduler=scheduler_choices,
       split_rows=st.sampled_from([1, 7, 8, 10_000]))
def test_batch_plane_identical_on_process_pools(fact, scheduler,
                                                split_rows):
    ds = make_datastore(fact, [])
    ns = f"bpp{next(_ns)}"
    jobs = picklable_chain(ns)
    row_rt = Runtime(ds, split_rows=split_rows, data_plane="row")
    runs_row = row_rt.run_jobs(picklable_chain(ns))
    mid_row = snapshot(ds, jobs)
    batch_rt = Runtime(ds, executor=ParallelExecutor(max_workers=2,
                                                     kind="process"),
                       scheduler=scheduler, split_rows=split_rows,
                       data_plane="batch")
    runs_batch = batch_rt.run_jobs(jobs)
    assert snapshot(ds, jobs) == mid_row
    assert [r.counters.comparable() for r in runs_batch] == \
        [r.counters.comparable() for r in runs_row]
