"""Property-based end-to-end tests: random data + randomized queries,
every translator compared against the reference executor.

This is the load-bearing correctness property of the whole system: for
any query in the supported subset, the merged YSmart jobs, the staged
translations, and the one-op-one-job baselines all compute the same
relation the pipelined reference engine computes.
"""

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.catalog import Catalog, Schema
from repro.catalog.types import ColumnType as T
from repro.core.translator import translate_sql
from repro.data import Datastore, Table, rows_equal_unordered
from repro.mr.engine import run_jobs
from repro.plan.planner import plan_query
from repro.refexec import run_reference
from repro.sqlparser.parser import parse_sql

_ns = itertools.count(1)

fact_rows = st.lists(
    st.fixed_dictionaries({
        "k": st.integers(0, 6),
        "g": st.integers(0, 3),
        "v": st.one_of(st.none(), st.integers(-50, 50)),
    }), min_size=0, max_size=25)

dim_rows = st.lists(
    st.fixed_dictionaries({
        "k": st.integers(0, 6),
        "w": st.integers(0, 9),
    }), min_size=0, max_size=10)

agg_funcs = st.sampled_from(
    ["sum(f.v)", "count(*)", "count(f.v)", "min(f.v)", "max(f.v)",
     "avg(f.v)", "count(DISTINCT f.v)"])
comparisons = st.sampled_from(["<", "<=", ">", ">=", "=", "<>"])
constants = st.integers(-20, 20)


def make_datastore(fact, dim):
    ds = Datastore(Catalog())
    ds.load_table(Table("fact", Schema.of(
        ("k", T.INT), ("g", T.INT), ("v", T.INT)), fact))
    ds.load_table(Table("dim", Schema.of(("k", T.INT), ("w", T.INT)), dim))
    return ds


def check_all_modes(sql, ds):
    plan = plan_query(parse_sql(sql), ds.catalog)
    ref = run_reference(plan, ds)
    for mode in ("ysmart", "ysmart_ic_tc", "one_to_one", "hive", "pig"):
        tr = translate_sql(sql, mode=mode, catalog=ds.catalog,
                           namespace=f"prop{next(_ns)}")
        run_jobs(tr.jobs, ds)
        rows = ds.intermediate(tr.final_dataset).rows
        assert rows_equal_unordered(rows, ref.rows, tr.output_columns,
                                    float_tol=1e-6), (mode, sql)


common = settings(max_examples=20, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])


@common
@given(fact=fact_rows, func=agg_funcs, op=comparisons, c=constants)
def test_single_table_aggregation(fact, func, op, c):
    sql = (f"SELECT f.g, {func} AS a FROM fact AS f "
           f"WHERE f.v {op} {c} GROUP BY f.g")
    check_all_modes(sql, make_datastore(fact, []))


@common
@given(fact=fact_rows, dim=dim_rows, op=comparisons, c=constants)
def test_inner_join_with_filters(fact, dim, op, c):
    sql = (f"SELECT f.g, d.w FROM fact AS f, dim AS d "
           f"WHERE f.k = d.k AND f.v {op} {c}")
    check_all_modes(sql, make_datastore(fact, dim))


@common
@given(fact=fact_rows, dim=dim_rows, func=agg_funcs)
def test_join_then_aggregate(fact, dim, func):
    sql = (f"SELECT d.w, {func} AS a FROM fact AS f, dim AS d "
           f"WHERE f.k = d.k GROUP BY d.w")
    check_all_modes(sql, make_datastore(fact, dim))


@common
@given(fact=fact_rows, dim=dim_rows)
def test_left_outer_join(fact, dim):
    sql = ("SELECT f.k, f.g, d.w FROM fact AS f "
           "LEFT OUTER JOIN dim AS d ON f.k = d.k")
    check_all_modes(sql, make_datastore(fact, dim))


@common
@given(fact=fact_rows, op=comparisons)
def test_correlated_derived_aggregate(fact, op):
    """The Q17 pattern: join a table with an aggregate of itself."""
    sql = (f"SELECT f.k, f.v FROM fact AS f, "
           f"(SELECT g, avg(v) AS a FROM fact GROUP BY g) AS m "
           f"WHERE f.g = m.g AND f.v {op} m.a")
    check_all_modes(sql, make_datastore(fact, []))


@common
@given(fact=fact_rows)
def test_self_join(fact):
    """The Q-CSA pattern: self-join with a residual predicate."""
    sql = ("SELECT a.g, count(*) AS n FROM fact AS a, fact AS b "
           "WHERE a.k = b.k AND a.v < b.v GROUP BY a.g")
    check_all_modes(sql, make_datastore(fact, []))


@common
@given(fact=fact_rows, c=st.integers(0, 5))
def test_having_and_order(fact, c):
    sql = (f"SELECT f.g, count(*) AS n FROM fact AS f GROUP BY f.g "
           f"HAVING count(*) > {c} ORDER BY n DESC, g LIMIT 3")
    check_all_modes(sql, make_datastore(fact, []))


@common
@given(fact=fact_rows)
def test_distinct(fact):
    sql = "SELECT DISTINCT f.g, f.k FROM fact AS f"
    check_all_modes(sql, make_datastore(fact, []))
