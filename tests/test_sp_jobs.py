"""Tests for SELECTION-PROJECTION jobs (the paper's fourth job type)."""

import pytest

from repro.core.translator import TRANSLATOR_MODES, translate_sql
from repro.data import rows_equal_unordered
from repro.mr.engine import run_jobs
from repro.plan.nodes import ScanNode
from repro.plan.planner import plan_query
from repro.refexec import run_reference
from repro.sqlparser.parser import parse_sql

SP_SQL = ("SELECT n_name AS name, n_regionkey * 10 AS rk FROM nation "
          "WHERE n_nationkey BETWEEN 2 AND 9 AND n_regionkey <> 1")


class TestSpJobs:
    def test_plan_is_bare_scan(self, datastore):
        plan = plan_query(parse_sql(SP_SQL), datastore.catalog)
        assert isinstance(plan, ScanNode)

    @pytest.mark.parametrize("mode", TRANSLATOR_MODES)
    def test_single_sp_job_all_modes(self, mode, datastore, fresh_namespace):
        ref = run_reference(plan_query(parse_sql(SP_SQL), datastore.catalog),
                            datastore)
        tr = translate_sql(SP_SQL, mode=mode, catalog=datastore.catalog,
                           namespace=f"{fresh_namespace}.{mode}")
        assert tr.job_count == 1
        run_jobs(tr.jobs, datastore)
        rows = datastore.intermediate(tr.final_dataset).rows
        assert rows_equal_unordered(rows, ref.rows, tr.output_columns, 1e-6)

    def test_selection_applied_map_side(self, datastore, fresh_namespace):
        """The SP job's map phase filters; only surviving rows shuffle."""
        tr = translate_sql(SP_SQL, mode="ysmart", catalog=datastore.catalog,
                           namespace=fresh_namespace)
        runs = run_jobs(tr.jobs, datastore)
        total = len(datastore.table("nation"))
        kept = runs[0].counters.map_output_records
        assert 0 < kept < total

    def test_sp_then_sort(self, datastore, fresh_namespace):
        sql = SP_SQL + " ORDER BY rk DESC, name"
        ref = run_reference(plan_query(parse_sql(sql), datastore.catalog),
                            datastore)
        tr = translate_sql(sql, mode="ysmart", catalog=datastore.catalog,
                           namespace=fresh_namespace)
        run_jobs(tr.jobs, datastore)
        rows = datastore.intermediate(tr.final_dataset).rows
        assert [(r["rk"], r["name"]) for r in rows] == \
            [(r["rk"], r["name"]) for r in ref.rows]

    def test_sp_over_derived_table(self, datastore, fresh_namespace):
        sql = ("SELECT d.name FROM (SELECT n_name AS name, n_regionkey AS r "
               "FROM nation) AS d WHERE d.r = 0")
        ref = run_reference(plan_query(parse_sql(sql), datastore.catalog),
                            datastore)
        tr = translate_sql(sql, mode="ysmart", catalog=datastore.catalog,
                           namespace=fresh_namespace)
        assert tr.job_count == 1
        run_jobs(tr.jobs, datastore)
        rows = datastore.intermediate(tr.final_dataset).rows
        assert rows_equal_unordered(rows, ref.rows, tr.output_columns)

    def test_sp_job_in_batch(self, datastore, fresh_namespace):
        from repro.core.batch import run_batch, translate_batch
        batch = {"names": SP_SQL,
                 "counts": "SELECT cid, count(*) AS n FROM clicks "
                           "GROUP BY cid"}
        tr = translate_batch(batch, catalog=datastore.catalog,
                             namespace=fresh_namespace)
        res = run_batch(tr, datastore)
        assert res.rows["names"] and res.rows["counts"]
