"""Tests for the hand-coded programs and the DBMS baseline."""

import pytest

from repro.baselines import (
    run_dbms_sql,
    translate_handcoded,
    translate_hive,
    translate_pig,
)
from repro.baselines.dbms import DbmsConfig
from repro.core.translator import translate_sql
from repro.data import rows_equal_unordered
from repro.errors import TranslationError
from repro.mr.engine import run_jobs
from repro.plan.planner import plan_query
from repro.refexec import run_reference
from repro.sqlparser.parser import parse_sql
from repro.workloads.queries import paper_queries


class TestHandcodedCorrectness:
    @pytest.mark.parametrize("query", ["q21_subtree", "q_csa", "q_agg"])
    def test_matches_reference(self, query, datastore, fresh_namespace):
        sql = paper_queries()[query]
        ref = run_reference(plan_query(parse_sql(sql), datastore.catalog),
                            datastore)
        tr = translate_handcoded(query, namespace=fresh_namespace,
                                 catalog=datastore.catalog)
        run_jobs(tr.jobs, datastore)
        rows = datastore.intermediate(tr.final_dataset).rows
        assert rows_equal_unordered(rows, ref.rows, tr.output_columns, 1e-6)

    def test_unknown_query_rejected(self):
        with pytest.raises(TranslationError, match="no hand-coded program"):
            translate_handcoded("q99")

    def test_q21_single_job_q_csa_two(self):
        assert translate_handcoded("q21_subtree", namespace="h1").job_count == 1
        assert translate_handcoded("q_csa", namespace="h2").job_count == 2


class TestHandcodedShortCircuit:
    def test_fewer_reduce_ops_than_ysmart(self, datastore, fresh_namespace):
        """The paper's Fig. 9 point: hand-coded short-paths make its
        reduce phase cheaper than YSmart's faithful merged reducers."""
        sql = paper_queries()["q21_subtree"]
        ys = translate_sql(sql, mode="ysmart", catalog=datastore.catalog,
                           namespace=f"{fresh_namespace}.ys")
        ys_runs = run_jobs(ys.jobs, datastore)
        hc = translate_handcoded("q21_subtree",
                                 namespace=f"{fresh_namespace}.hc")
        hc_runs = run_jobs(hc.jobs, datastore)
        ys_ops = sum(r.counters.reduce_dispatch_ops
                     + r.counters.reduce_compute_ops for r in ys_runs)
        hc_ops = sum(r.counters.reduce_dispatch_ops
                     + r.counters.reduce_compute_ops for r in hc_runs)
        assert hc_ops < ys_ops

    def test_qcsa_single_scan(self, datastore, fresh_namespace):
        tr = translate_handcoded("q_csa", namespace=fresh_namespace)
        runs = run_jobs(tr.jobs, datastore)
        clicks_bytes = datastore.table("clicks").estimated_bytes()
        assert runs[0].counters.input_bytes["clicks"] == clicks_bytes


class TestHiveAndPigWrappers:
    def test_hive_uses_map_side_agg(self, datastore, fresh_namespace):
        tr = translate_hive(paper_queries()["q_agg"],
                            catalog=datastore.catalog,
                            namespace=fresh_namespace)
        assert tr.jobs[0].map_agg is not None

    def test_pig_has_no_map_side_agg_and_inflated_bytes(self, datastore,
                                                        fresh_namespace):
        tr = translate_pig(paper_queries()["q_agg"],
                           catalog=datastore.catalog,
                           namespace=fresh_namespace)
        assert tr.jobs[0].map_agg is None
        assert tr.intermediate_inflation > 1.0

    def test_pig_shuffles_more_than_hive(self, datastore, fresh_namespace):
        """Without the combiner, Pig's Q-AGG shuffles every record."""
        sql = paper_queries()["q_agg"]
        hive = translate_hive(sql, catalog=datastore.catalog,
                              namespace=f"{fresh_namespace}.h")
        pig = translate_pig(sql, catalog=datastore.catalog,
                            namespace=f"{fresh_namespace}.p")
        h_runs = run_jobs(hive.jobs, datastore)
        p_runs = run_jobs(pig.jobs, datastore)
        assert (p_runs[0].counters.map_output_records
                > h_runs[0].counters.map_output_records)


class TestDbms:
    def test_rows_match_reference_by_construction(self, datastore):
        sql = paper_queries()["q_agg"]
        res = run_dbms_sql(sql, datastore)
        ref = run_reference(plan_query(parse_sql(sql), datastore.catalog),
                            datastore)
        assert res.rows == ref.rows

    def test_time_positive_and_scales(self, datastore):
        sql = paper_queries()["q17"]
        t1 = run_dbms_sql(sql, datastore, DbmsConfig(data_scale=1)).total_s
        t10 = run_dbms_sql(sql, datastore, DbmsConfig(data_scale=10)).total_s
        assert 0 < t1 < t10
        assert t10 == pytest.approx(t1 * 10, rel=1e-6)

    def test_parallel_speedup_divides(self, datastore):
        sql = paper_queries()["q_agg"]
        t4 = run_dbms_sql(sql, datastore,
                          DbmsConfig(parallel_speedup=4)).total_s
        t1 = run_dbms_sql(sql, datastore,
                          DbmsConfig(parallel_speedup=1)).total_s
        assert t1 == pytest.approx(4 * t4, rel=1e-6)

    def test_scan_and_cpu_components(self, datastore):
        res = run_dbms_sql(paper_queries()["q17"], datastore)
        assert res.scan_s > 0 and res.cpu_s > 0
