"""Tests for the job-level EXPLAIN rendering."""

import pytest

from repro.baselines import translate_handcoded
from repro.core.explain_jobs import explain_job, explain_jobs
from repro.core.translator import translate_sql
from repro.workloads.queries import paper_queries


@pytest.fixture(scope="module")
def q17(datastore):
    return translate_sql(paper_queries()["q17"], mode="ysmart",
                         catalog=datastore.catalog, namespace="ej17")


class TestExplainJobs:
    def test_shows_shared_scan(self, q17):
        text = q17.explain_jobs()
        assert "(shared scan)" in text
        assert "scan lineitem" in text

    def test_shows_post_job_tasks(self, q17):
        """JOIN2's inputs are the sibling tasks, not shuffle roles —
        the paper's post-job computation made visible."""
        text = q17.explain_jobs()
        assert "left  <- task AGG1" in text
        assert "right <- task JOIN1" in text

    def test_shows_combiner_and_global_agg(self, q17):
        text = q17.explain_jobs()
        assert "map-side hash aggregation" in text
        assert "GLOBAL AGG" in text

    def test_shows_outputs(self, q17):
        text = q17.explain_jobs()
        assert ".result" in text

    def test_sort_job_flags_rendered(self, datastore):
        tr = translate_sql(paper_queries()["q18"], mode="ysmart",
                           catalog=datastore.catalog, namespace="ej18")
        text = tr.explain_jobs()
        assert "total-order output" in text
        assert "LIMIT 100" in text

    def test_outer_join_rendered(self, datastore):
        tr = translate_sql(paper_queries()["q21_subtree"], mode="ysmart",
                           catalog=datastore.catalog, namespace="ej21")
        text = tr.explain_jobs()
        assert "LEFT JOIN" in text

    def test_on_residual_rendered(self, datastore):
        tr = translate_sql(
            "SELECT l_orderkey FROM lineitem JOIN orders "
            "ON l_orderkey = o_orderkey AND l_shipdate < o_orderdate",
            mode="ysmart", catalog=datastore.catalog, namespace="ejres")
        assert "residual predicate" in tr.explain_jobs()

    def test_every_job_rendered(self, datastore):
        tr = translate_sql(paper_queries()["q21"], mode="hive",
                           catalog=datastore.catalog, namespace="ejh")
        text = explain_jobs(tr.jobs)
        assert text.count("JOB ") == tr.job_count

    def test_handcoded_tasks_fall_back_to_class_name(self):
        tr = translate_handcoded("q21_subtree", namespace="ejhc")
        text = explain_job(tr.jobs[0])
        assert "FusedQ21Task" in text
