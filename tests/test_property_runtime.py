"""Property-based tests for the execution runtime: for ANY query in the
supported subset, ANY split decomposition, and ANY worker count, the
parallel executor produces byte-identical rows, counters, and
intermediate datasets to the serial executor.

This is the refactor's load-bearing invariant — decomposition is a
function of (job, split_rows) only, never of the executor — exercised
over randomized data, randomized plans, and the paper queries.
"""

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.catalog import Catalog, Schema
from repro.catalog.types import ColumnType as T
from repro.core.translator import translate_sql
from repro.data import Datastore, Table
from repro.mr.runtime import Runtime, make_executor
from repro.workloads.queries import paper_queries
from repro.workloads.runner import build_datastore, run_translation

_ns = itertools.count(1)

fact_rows = st.lists(
    st.fixed_dictionaries({
        "k": st.integers(0, 6),
        "g": st.integers(0, 3),
        "v": st.one_of(st.none(), st.integers(-50, 50)),
    }), min_size=0, max_size=25)

dim_rows = st.lists(
    st.fixed_dictionaries({
        "k": st.integers(0, 6),
        "w": st.integers(0, 9),
    }), min_size=0, max_size=10)

split_choices = st.one_of(st.none(), st.integers(1, 8))
worker_choices = st.integers(2, 6)

QUERY_SHAPES = [
    "SELECT f.g, sum(f.v) AS a FROM fact AS f GROUP BY f.g",
    "SELECT f.g, count(DISTINCT f.v) AS a FROM fact AS f "
    "WHERE f.v > 0 GROUP BY f.g",
    "SELECT f.g, d.w FROM fact AS f, dim AS d WHERE f.k = d.k",
    "SELECT d.w, avg(f.v) AS a FROM fact AS f, dim AS d "
    "WHERE f.k = d.k GROUP BY d.w",
    "SELECT f.k, f.v FROM fact AS f, "
    "(SELECT g, avg(v) AS a FROM fact GROUP BY g) AS m "
    "WHERE f.g = m.g AND f.v < m.a",
    "SELECT a.g, count(*) AS n FROM fact AS a, fact AS b "
    "WHERE a.k = b.k AND a.v < b.v GROUP BY a.g",
    "SELECT f.g, count(*) AS n FROM fact AS f GROUP BY f.g "
    "ORDER BY n DESC, g LIMIT 3",
    "SELECT count(*) AS n, max(f.v) AS m FROM fact AS f",
]


def make_datastore(fact, dim):
    ds = Datastore(Catalog())
    ds.load_table(Table("fact", Schema.of(
        ("k", T.INT), ("g", T.INT), ("v", T.INT)), fact))
    ds.load_table(Table("dim", Schema.of(("k", T.INT), ("w", T.INT)), dim))
    return ds


def snapshot(datastore, translation):
    """All intermediate datasets a translation wrote, rows by name."""
    return {name: list(datastore.intermediate(name).rows)
            for job in translation.jobs for name in job.output_datasets}


def check_serial_equals_parallel(translation, datastore,
                                 workers=4, split_rows=None):
    serial = Runtime(datastore, executor=make_executor(1),
                     split_rows=split_rows)
    runs_s = serial.run_jobs(translation.jobs,
                             dependencies=translation.dependencies())
    mid_s = snapshot(datastore, translation)

    parallel = Runtime(datastore, executor=make_executor(workers),
                       split_rows=split_rows)
    runs_p = parallel.run_jobs(translation.jobs,
                               dependencies=translation.dependencies())
    mid_p = snapshot(datastore, translation)

    assert [r.counters.comparable() for r in runs_p] == \
        [r.counters.comparable() for r in runs_s]
    assert mid_p == mid_s


common = settings(max_examples=15, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])


@common
@given(fact=fact_rows, dim=dim_rows,
       shape=st.sampled_from(QUERY_SHAPES),
       workers=worker_choices, split_rows=split_choices)
def test_random_plans_identical_under_any_executor(fact, dim, shape,
                                                   workers, split_rows):
    ds = make_datastore(fact, dim)
    tr = translate_sql(shape, catalog=ds.catalog,
                       namespace=f"pr{next(_ns)}")
    check_serial_equals_parallel(tr, ds, workers=workers,
                                 split_rows=split_rows)


@common
@given(fact=fact_rows, dim=dim_rows,
       shape=st.sampled_from(QUERY_SHAPES),
       mode=st.sampled_from(["one_to_one", "hive", "pig"]),
       workers=worker_choices)
def test_baseline_modes_identical_under_any_executor(fact, dim, shape,
                                                     mode, workers):
    ds = make_datastore(fact, dim)
    tr = translate_sql(shape, mode=mode, catalog=ds.catalog,
                       namespace=f"pr{next(_ns)}")
    check_serial_equals_parallel(tr, ds, workers=workers)


_paper_store = None


def paper_store():
    global _paper_store
    if _paper_store is None:
        _paper_store = build_datastore(tpch_scale=0.002,
                                       clickstream_users=40, seed=11)
    return _paper_store


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(name=st.sampled_from(sorted(paper_queries())),
       workers=worker_choices, split_rows=split_choices)
def test_paper_queries_identical_under_any_executor(name, workers,
                                                    split_rows):
    ds = paper_store()
    tr = translate_sql(paper_queries()[name], catalog=ds.catalog,
                       namespace=f"pq.{name}")
    check_serial_equals_parallel(tr, ds, workers=workers,
                                 split_rows=split_rows)
    result = run_translation(tr, ds, parallelism=workers)
    assert result.rows == run_translation(tr, ds).rows
