"""Corner cases around derived-table scans (ScanNode with Project
stages) feeding other operators — the paths where a scan is more than a
raw table read."""

import pytest

from repro.core.translator import translate_sql
from repro.data import rows_equal_unordered
from repro.mr.engine import run_jobs
from repro.plan.planner import plan_query
from repro.refexec import run_reference
from repro.sqlparser.parser import parse_sql

CASES = {
    "agg_over_derived_scan":
        "SELECT d.s, count(*) AS n FROM "
        "(SELECT n_regionkey AS s FROM nation WHERE n_nationkey > 2) AS d "
        "GROUP BY d.s",
    "agg_over_computed_column":
        "SELECT d.z, sum(d.z) AS t FROM "
        "(SELECT n_regionkey * 2 AS z FROM nation) AS d GROUP BY d.z",
    "join_side_is_derived_scan":
        "SELECT d.nm, s_name FROM "
        "(SELECT n_nationkey AS k, n_name AS nm FROM nation) AS d, supplier "
        "WHERE s_nationkey = d.k",
    "three_level_nesting":
        "SELECT o.v FROM (SELECT m.v AS v FROM "
        "(SELECT n_regionkey AS v FROM nation WHERE n_nationkey < 20) AS m "
        "WHERE m.v > 0) AS o WHERE o.v < 4",
    "derived_scan_in_self_join":
        "SELECT a.k FROM "
        "(SELECT n_nationkey AS k, n_regionkey AS r FROM nation) AS a, "
        "(SELECT n_nationkey AS k, n_regionkey AS r FROM nation) AS b "
        "WHERE a.r = b.r AND a.k < b.k",
}


@pytest.mark.parametrize("name", sorted(CASES))
@pytest.mark.parametrize("mode", ["ysmart", "hive"])
def test_derived_scan_corner(name, mode, datastore, fresh_namespace):
    sql = CASES[name]
    ref = run_reference(plan_query(parse_sql(sql), datastore.catalog),
                        datastore)
    tr = translate_sql(sql, mode=mode, catalog=datastore.catalog,
                       namespace=f"{fresh_namespace}.{mode}")
    run_jobs(tr.jobs, datastore)
    rows = datastore.intermediate(tr.final_dataset).rows
    assert rows_equal_unordered(rows, ref.rows, tr.output_columns, 1e-6)


def test_derived_scan_selection_stays_map_side(datastore, fresh_namespace):
    """The derived table's WHERE runs in the scan's mapper pipeline: map
    output only carries surviving records."""
    sql = CASES["agg_over_derived_scan"]
    tr = translate_sql(sql, mode="pig",  # no combiner: raw emission count
                       catalog=datastore.catalog, namespace=fresh_namespace)
    runs = run_jobs(tr.jobs, datastore)
    survivors = len([r for r in datastore.table("nation").rows
                     if r["n_nationkey"] > 2])
    assert runs[0].counters.map_output_records == survivors
