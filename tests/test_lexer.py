"""Unit tests for the SQL lexer."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sqlparser.lexer import Token, TokenType, tokenize


def kinds(text):
    return [(t.type, t.value) for t in tokenize(text)[:-1]]


class TestBasics:
    def test_empty_input_yields_eof(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].type is TokenType.EOF

    def test_keywords_uppercased(self):
        assert kinds("select FROM Where") == [
            (TokenType.KEYWORD, "SELECT"),
            (TokenType.KEYWORD, "FROM"),
            (TokenType.KEYWORD, "WHERE"),
        ]

    def test_identifiers_lowercased(self):
        assert kinds("LineItem l_OrderKey") == [
            (TokenType.IDENT, "lineitem"),
            (TokenType.IDENT, "l_orderkey"),
        ]

    def test_identifier_with_underscore_and_digits(self):
        assert kinds("tbl_2x") == [(TokenType.IDENT, "tbl_2x")]


class TestNumbers:
    def test_integer(self):
        assert kinds("42") == [(TokenType.NUMBER, "42")]

    def test_decimal(self):
        assert kinds("0.25") == [(TokenType.NUMBER, "0.25")]

    def test_leading_dot_decimal(self):
        assert kinds(".5") == [(TokenType.NUMBER, ".5")]

    def test_qualified_name_not_decimal(self):
        assert kinds("t1.x") == [
            (TokenType.IDENT, "t1"),
            (TokenType.PUNCT, "."),
            (TokenType.IDENT, "x"),
        ]


class TestStrings:
    def test_simple(self):
        assert kinds("'hello'") == [(TokenType.STRING, "hello")]

    def test_escaped_quote(self):
        assert kinds("'don''t'") == [(TokenType.STRING, "don't")]

    def test_case_preserved(self):
        assert kinds("'SAUDI ARABIA'") == [(TokenType.STRING, "SAUDI ARABIA")]

    def test_unterminated(self):
        with pytest.raises(SqlSyntaxError, match="unterminated string"):
            tokenize("'oops")


class TestOperators:
    @pytest.mark.parametrize("op", ["=", "<", ">", "+", "-", "*", "/", "%"])
    def test_single_char(self, op):
        assert kinds(op) == [(TokenType.OPERATOR, op)]

    @pytest.mark.parametrize("text,norm", [
        ("<>", "<>"), ("!=", "<>"), ("<=", "<="), (">=", ">="), ("||", "||"),
    ])
    def test_two_char(self, text, norm):
        assert kinds(text) == [(TokenType.OPERATOR, norm)]

    def test_no_space_needed(self):
        assert kinds("a<=b") == [
            (TokenType.IDENT, "a"),
            (TokenType.OPERATOR, "<="),
            (TokenType.IDENT, "b"),
        ]


class TestComments:
    def test_line_comment(self):
        assert kinds("a -- comment here\n b") == [
            (TokenType.IDENT, "a"), (TokenType.IDENT, "b")]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [
            (TokenType.IDENT, "a"), (TokenType.IDENT, "b")]

    def test_unterminated_block(self):
        with pytest.raises(SqlSyntaxError, match="unterminated block"):
            tokenize("a /* never ends")


class TestPositions:
    def test_line_and_column(self):
        toks = tokenize("SELECT\n  foo")
        assert toks[0].line == 1 and toks[0].column == 1
        assert toks[1].line == 2 and toks[1].column == 3

    def test_error_position(self):
        with pytest.raises(SqlSyntaxError) as err:
            tokenize("a\nb ?")
        assert err.value.line == 2
        assert err.value.column == 3

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError, match="unexpected character"):
            tokenize("a @ b")


class TestIsKeywordHelper:
    def test_is_keyword(self):
        tok = tokenize("SELECT")[0]
        assert tok.is_keyword("SELECT")
        assert tok.is_keyword("SELECT", "FROM")
        assert not tok.is_keyword("FROM")

    def test_ident_is_not_keyword(self):
        tok = tokenize("foo")[0]
        assert not tok.is_keyword("FOO")
