"""Tests for :class:`WorkloadSession` and its CLI surfaces
(``repro workload`` and ``repro run --cache-mb``)."""

import itertools

from repro.cli import main
from repro.workloads import WorkloadSession, paper_queries

_ns = itertools.count(1)

AGG_SQL = ("SELECT l_orderkey, sum(l_quantity) AS qty FROM lineitem "
           "GROUP BY l_orderkey")


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr()
    return code, out.out, out.err


TINY = ("--tpch-scale", "0.001", "--clickstream-users", "20")


class TestWorkloadSession:
    def test_stream_shares_one_cache(self, datastore):
        session = WorkloadSession(datastore, cache_mb=16,
                                  namespace_prefix=f"ts{next(_ns)}")
        stream = [("agg", AGG_SQL)] * 3
        results = session.run_stream(stream)
        assert len(results) == len(session.runs) == 3
        assert [r.name for r in session.runs] == ["agg"] * 3
        assert not session.runs[0].fully_cached
        assert session.runs[1].fully_cached
        assert session.runs[2].fully_cached
        assert session.cache_stats.hits == 2
        assert results[0].rows == results[1].rows == results[2].rows

    def test_namespaces_are_deterministic(self, datastore):
        prefix = f"ts{next(_ns)}"
        session = WorkloadSession(datastore, cache_mb=None,
                                  namespace_prefix=prefix)
        session.run(AGG_SQL)
        session.run(AGG_SQL, name="again")
        assert [r.namespace for r in session.runs] == \
            [f"{prefix}.q1", f"{prefix}.q2"]
        assert session.runs[0].name == f"{prefix}.q1"  # default = namespace
        assert session.runs[1].name == "again"

    def test_disabled_cache_runs_cold(self, datastore):
        session = WorkloadSession(datastore, cache_mb=0,
                                  namespace_prefix=f"ts{next(_ns)}")
        session.run(AGG_SQL)
        session.run(AGG_SQL)
        assert session.cache is None
        assert session.cache_stats.hits == session.cache_stats.misses == 0
        assert all(r.cache_hits == 0 for r in session.runs)

    def test_summary_aggregates(self, datastore):
        session = WorkloadSession(datastore, cache_mb=16,
                                  namespace_prefix=f"ts{next(_ns)}")
        session.run(paper_queries()["q17"])
        session.run(paper_queries()["q17"])
        summary = session.summary()
        jobs_per_query = len(session.runs[0].result.runs)
        assert summary["queries"] == 2
        assert summary["jobs"] == 2 * jobs_per_query
        assert summary["cache_hits"] == jobs_per_query
        assert summary["cache_misses"] == jobs_per_query
        assert summary["cached_bytes_saved"] > 0
        assert summary["wall_s"] == session.total_wall_s > 0
        assert summary["cache_bytes"] > 0
        assert summary["cache_budget_bytes"] == 16 * 1024 * 1024

    def test_cost_model_credits_cached_queries(self, datastore):
        from repro.hadoop import small_cluster
        session = WorkloadSession(datastore, cache_mb=16,
                                  cluster=small_cluster(data_scale=100.0),
                                  namespace_prefix=f"ts{next(_ns)}")
        first = session.run(AGG_SQL)
        second = session.run(AGG_SQL)
        assert first.timing.total_s > 0
        assert second.timing.total_s < first.timing.total_s


class TestWorkloadCli:
    def test_warm_session_reports_hits(self, capsys):
        code, out, _ = run_cli(capsys, "workload", "q_agg",
                               "--repeat", "2", *TINY)
        assert code == 0
        assert "workload: 2 queries" in out
        assert "hits=1" in out          # second pass served from cache
        assert "cache: hits=1 misses=1" in out

    def test_cache_off_suppresses_cache_report(self, capsys):
        code, out, _ = run_cli(capsys, "workload", "q_agg",
                               "--repeat", "2", "--cache-mb", "0", *TINY)
        assert code == 0
        assert "cache=off" in out
        assert "cache:" not in out

    def test_cluster_adds_simulated_times(self, capsys):
        code, out, _ = run_cli(capsys, "workload", "q_agg", "--repeat", "2",
                               "--cluster", "small", *TINY)
        assert code == 0
        assert "simulated=" in out

    def test_unknown_query_name(self, capsys):
        code, _, err = run_cli(capsys, "workload", "q_bogus", *TINY)
        assert code == 2
        assert "unknown query name" in err
        assert "q_agg" in err  # lists what IS available

    def test_run_cache_flag_prints_stats(self, capsys):
        code, out, _ = run_cli(capsys, "run",
                               "SELECT count(*) AS n FROM lineitem",
                               "--timings", "--cache-mb", "16", *TINY)
        assert code == 0
        assert "result cache: hits=0 misses=1" in out

    def test_run_without_cache_flag_silent(self, capsys):
        code, out, _ = run_cli(capsys, "run",
                               "SELECT count(*) AS n FROM lineitem",
                               "--timings", *TINY)
        assert code == 0
        assert "result cache" not in out
