"""Tests for the plan validator, table I/O, and the fault model."""

import math
import os

import pytest

from repro.catalog import Catalog, Schema, standard_catalog
from repro.catalog.types import ColumnType as T
from repro.data import (
    Datastore,
    Table,
    generate_tpch,
    load_datastore,
    read_table,
    save_datastore,
    write_table,
)
from repro.data.tpch import TpchConfig
from repro.errors import CatalogError, ConfigError, DataGenError, PlanError
from repro.hadoop import (
    FaultModel,
    HadoopCostModel,
    expected_pipelined_time,
    materialization_advantage,
    materialized_phase_time,
    small_cluster,
)
from repro.plan import plan_query, validate_plan
from repro.plan.nodes import Filter, JoinNode, OutputCol, Project, ScanNode
from repro.sqlparser.ast import BinaryOp, ColumnRef, Literal
from repro.sqlparser.parser import parse_sql
from repro.workloads.queries import paper_queries


class TestValidator:
    @pytest.mark.parametrize("name", ["q17", "q18", "q21", "q_csa", "q_agg"])
    def test_paper_plans_validate(self, name):
        plan = plan_query(parse_sql(paper_queries()[name]),
                          standard_catalog())
        validate_plan(plan)  # raises on failure

    def _scan(self):
        scan = ScanNode("t", "t", 0, ["a", "b"])
        scan.label = "SCAN1"
        return scan

    def test_unlabeled_rejected(self):
        scan = ScanNode("t", "t", 0, ["a"])
        with pytest.raises(PlanError, match="no label"):
            validate_plan(scan)

    def test_bad_filter_reference(self):
        scan = self._scan()
        scan.add_filter(BinaryOp(">", ColumnRef(None, "t.zz"), Literal(1)))
        with pytest.raises(PlanError, match="unknown columns"):
            validate_plan(scan)

    def test_bad_projection_reference(self):
        scan = self._scan()
        scan.add_project([OutputCol("x", ColumnRef(None, "nope"))])
        with pytest.raises(PlanError, match="unknown columns"):
            validate_plan(scan)

    def test_duplicate_projection_name(self):
        scan = self._scan()
        scan.add_project([OutputCol("x", ColumnRef(None, "t.a")),
                          OutputCol("x", ColumnRef(None, "t.b"))])
        with pytest.raises(PlanError, match="duplicate output"):
            validate_plan(scan)

    def test_stage_order_matters(self):
        """A filter placed after a renaming projection must reference the
        new names, not the raw ones."""
        scan = self._scan()
        scan.add_project([OutputCol("x", ColumnRef(None, "t.a"))])
        scan.add_filter(BinaryOp(">", ColumnRef(None, "t.a"), Literal(1)))
        with pytest.raises(PlanError, match="unknown columns"):
            validate_plan(scan)

    def test_bad_join_keys(self):
        left = ScanNode("t", "l", 0, ["a"])
        right = ScanNode("u", "r", 0, ["b"])
        join = JoinNode(left, right, "inner", ["l.zz"], ["r.b"])
        left.label, right.label, join.label = "SCAN1", "SCAN2", "JOIN1"
        with pytest.raises(PlanError, match="join keys missing"):
            validate_plan(join)

    def test_overlapping_children_rejected(self):
        left = ScanNode("t", "x", 0, ["a"])
        right = ScanNode("u", "x", 0, ["a"])  # same alias -> same names
        join = JoinNode(left, right, "inner", ["x.a"], ["x.a"])
        left.label, right.label, join.label = "SCAN1", "SCAN2", "JOIN1"
        with pytest.raises(PlanError, match="overlap"):
            validate_plan(join)


class TestTableIO:
    @pytest.fixture
    def schema(self):
        return Schema.of(("k", T.INT), ("name", T.STRING), ("x", T.FLOAT),
                         ("d", T.DATE), ("ts", T.TIMESTAMP))

    def test_roundtrip_with_nulls(self, tmp_path, schema):
        rows = [
            {"k": 1, "name": "alpha", "x": 1.5, "d": "1997-01-01",
             "ts": 1000},
            {"k": 2, "name": None, "x": None, "d": None, "ts": None},
        ]
        table = Table("t", schema, rows)
        path = str(tmp_path / "t.tbl")
        assert write_table(table, path) == 2
        back = read_table(path, "t", schema)
        assert back.rows == rows

    def test_types_restored(self, tmp_path, schema):
        table = Table("t", schema, [
            {"k": 7, "name": "x", "x": 2.0, "d": "1999-09-09", "ts": 5}])
        path = str(tmp_path / "t.tbl")
        write_table(table, path)
        row = read_table(path, "t", schema).rows[0]
        assert isinstance(row["k"], int)
        assert isinstance(row["x"], float)
        assert isinstance(row["d"], str)
        assert isinstance(row["ts"], int)

    def test_delimiter_in_value_rejected(self, tmp_path, schema):
        table = Table("t", schema, [
            {"k": 1, "name": "has|pipe", "x": 0.0, "d": "x", "ts": 0}])
        with pytest.raises(DataGenError, match="delimiter"):
            write_table(table, str(tmp_path / "bad.tbl"))

    def test_field_count_mismatch(self, tmp_path, schema):
        path = str(tmp_path / "corrupt.tbl")
        with open(path, "w") as f:
            f.write("1|only-two\n")
        with pytest.raises(CatalogError, match="expected 5 fields"):
            read_table(path, "t", schema)

    def test_save_and_load_datastore(self, tmp_path):
        ds = Datastore(standard_catalog())
        for table in generate_tpch(TpchConfig(scale_factor=0.0003)).values():
            ds.load_table(table)
        directory = str(tmp_path / "snapshot")
        names = save_datastore(ds, directory, tables=["nation", "supplier"])
        assert names == ["nation", "supplier"]
        assert os.path.exists(os.path.join(directory, "nation.tbl"))

        loaded = load_datastore(directory)
        assert loaded.table("nation").rows == ds.table("nation").rows
        assert loaded.table("supplier").rows == ds.table("supplier").rows

    def test_load_missing_manifest(self, tmp_path):
        with pytest.raises(DataGenError, match="manifest"):
            load_datastore(str(tmp_path))

    def test_loaded_data_runs_queries(self, tmp_path):
        """A persisted workload answers queries identically."""
        from repro.refexec import run_reference
        ds = Datastore(standard_catalog())
        for table in generate_tpch(TpchConfig(scale_factor=0.0005)).values():
            ds.load_table(table)
        directory = str(tmp_path / "snap")
        save_datastore(ds, directory)
        loaded = load_datastore(directory, Datastore(standard_catalog()))
        sql = paper_queries()["q17"]
        a = run_reference(plan_query(parse_sql(sql), ds.catalog), ds)
        b = run_reference(plan_query(parse_sql(sql), loaded.catalog), loaded)
        assert a.rows == b.rows


class TestFaultModel:
    def test_validation(self):
        with pytest.raises(ConfigError):
            FaultModel(task_failure_prob=1.0)
        with pytest.raises(ConfigError):
            FaultModel(task_failure_prob=-0.1)
        with pytest.raises(ConfigError):
            FaultModel(detect_latency_s=-1)

    def test_zero_failures_identity(self):
        fm = FaultModel(task_failure_prob=0.0)
        assert materialized_phase_time(100, 50, 10, fm) == 100
        assert expected_pipelined_time(100, 50, fm) == 100

    def test_materialized_overhead_grows_with_p(self):
        t1 = materialized_phase_time(
            100, 50, 10, FaultModel(task_failure_prob=0.01))
        t2 = materialized_phase_time(
            100, 50, 10, FaultModel(task_failure_prob=0.05))
        assert 100 < t1 < t2

    def test_pipelined_explodes_with_tasks(self):
        fm = FaultModel(task_failure_prob=0.01)
        small = materialization_advantage(100, 10, 10, fm)
        large = materialization_advantage(100, 2000, 10, fm)
        assert small < 2
        assert large > 100  # materialization is the only viable design

    def test_pipelined_inf_at_extreme(self):
        fm = FaultModel(task_failure_prob=0.5)
        assert math.isinf(expected_pipelined_time(100, 10_000, fm))

    def test_pipelined_half_rerun_formula_pinned(self):
        # Each failed attempt dies, in expectation, half way through:
        # base * (1 + 0.5*(E-1)) + detect * (E-1), E = (1-p)^-n.
        fm = FaultModel(task_failure_prob=0.1, detect_latency_s=12.0)
        e = (1.0 - 0.1) ** -20
        assert expected_pipelined_time(100, 20, fm) == pytest.approx(
            100 * (1.0 + 0.5 * (e - 1.0)) + 12.0 * (e - 1.0))

    def test_failed_attempt_costs_half_a_run(self):
        # The regression this pins: an earlier spelling cancelled the
        # half-run term back to a FULL rerun per failure.  With no
        # detection latency the expected time must sit strictly below
        # the full-rerun bound base * E and above the lower bound base.
        fm = FaultModel(task_failure_prob=0.2, detect_latency_s=0.0)
        e = (1.0 - 0.2) ** -5
        t = expected_pipelined_time(100, 5, fm)
        assert t == pytest.approx(100 * (1.0 + 0.5 * (e - 1.0)))
        assert 100 < t < 100 * e

    def test_cost_model_integration(self):
        from tests.test_costmodel import counters
        base = small_cluster(data_scale=100)
        faulty = base.with_faults(FaultModel(task_failure_prob=0.05))
        c = counters()
        t_base = HadoopCostModel(base).job_timing(c).total_s
        t_faulty = HadoopCostModel(faulty).job_timing(c).total_s
        assert t_faulty > t_base
