"""Fig. 12: six concurrent Q17 instances on the Facebook 747-node
production cluster (1 TB, co-running workloads).

Paper: YSmart outperforms Hive on every instance, speedup 2.30x - 3.10x,
with Hive's extra jobs absorbing large scheduling gaps and its
temporary-input join (Job3) showing a disproportionately slow reduce.
"""

from benchmarks.conftest import attach
from repro.bench import fig12_facebook_q17


def test_fig12_facebook_q17(benchmark, workload):
    result = benchmark.pedantic(
        fig12_facebook_q17, args=(workload,), rounds=1, iterations=1)
    attach(benchmark, result)

    ys = [r["time_s"] for r in result.by(system="ysmart")]
    hv = [r["time_s"] for r in result.by(system="hive")]
    assert len(ys) == len(hv) == 3
    for h, y in zip(hv, ys):
        assert h / y > 1.5  # paper: 2.3x - 3.1x
    # Hive runs more jobs, so it accumulates more scheduling gap.
    ys_gap = sum(r["gap_s"] for r in result.by(system="ysmart"))
    hv_gap = sum(r["gap_s"] for r in result.by(system="hive"))
    assert hv_gap > ys_gap
