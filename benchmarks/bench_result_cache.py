"""Result-cache benchmark: warm workload sessions vs cold re-execution.

Replays the paper's query workload (every query, ``--rounds`` times)
through two :class:`~repro.workloads.WorkloadSession` arms built over
the same datastore:

* **cold** — ``cache_mb=0``: every round re-translates and re-executes
  every job, exactly like the pre-cache runner;
* **warm** — a shared :class:`~repro.reuse.ResultCache`: round 1
  populates it, later rounds replay materialized job outputs.

Both arms use the same deterministic namespace stream, so the warm
arm's rows *and* ``comparable()`` counters must be byte-identical to
the cold arm's, job for job — the benchmark checks this per query and
refuses to report a speedup that moved a byte.  The simulated Hadoop
totals (the paper's cost model, with cached jobs credited at zero
cost) are reported alongside wall-clock.

Writes ``BENCH_result_cache.json`` at the repo root.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_result_cache.py          # full
    PYTHONPATH=src python benchmarks/bench_result_cache.py --smoke  # CI

Exits nonzero if any query's warm arm is not byte-identical to cold,
or if the warm arm never hit the cache.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Tuple

sys.path.insert(0, os.path.dirname(__file__))
from _microbench import measure, write_json  # noqa: E402

from repro.hadoop.config import small_cluster
from repro.workloads.queries import paper_queries
from repro.workloads.runner import build_datastore
from repro.workloads.session import WorkloadSession

DEFAULT_OUT = os.path.normpath(os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_result_cache.json"))


def workload_stream(rounds: int) -> List[Tuple[str, str]]:
    """The repeated paper workload: every query, ``rounds`` times."""
    queries = sorted(paper_queries().items())
    return [(name, sql) for _ in range(rounds) for name, sql in queries]


def replay(datastore, stream, cache_mb: float,
           cluster) -> WorkloadSession:
    """One arm: a fresh session replaying the whole stream."""
    session = WorkloadSession(datastore, cache_mb=cache_mb,
                              cluster=cluster, namespace_prefix="bench")
    session.run_stream(stream)
    return session


def compare_arms(cold: WorkloadSession,
                 warm: WorkloadSession) -> Dict[str, object]:
    """Per-query identity, timing, and cache-traffic report."""
    queries: Dict[str, Dict[str, object]] = {}
    all_identical = True
    for cold_run, warm_run in zip(cold.runs, warm.runs):
        identical = (
            warm_run.result.rows == cold_run.result.rows
            and [r.counters.comparable() for r in warm_run.result.runs]
            == [r.counters.comparable() for r in cold_run.result.runs])
        all_identical = all_identical and identical
        entry = queries.setdefault(cold_run.name, {
            "cold_s": 0.0, "warm_s": 0.0, "identical": True,
            "jobs": len(cold_run.result.runs),
            "rows": len(cold_run.result.rows),
            "cache_hits": 0, "cache_misses": 0,
            "cold_simulated_s": 0.0, "warm_simulated_s": 0.0,
        })
        entry["cold_s"] += cold_run.wall_s
        entry["warm_s"] += warm_run.wall_s
        entry["identical"] = entry["identical"] and identical
        entry["cache_hits"] += warm_run.cache_hits
        entry["cache_misses"] += warm_run.cache_misses
        if cold_run.result.timing is not None:
            entry["cold_simulated_s"] += cold_run.result.timing.total_s
            entry["warm_simulated_s"] += warm_run.result.timing.total_s
    for entry in queries.values():
        entry["speedup"] = (entry["cold_s"] / entry["warm_s"]
                            if entry["warm_s"] else float("inf"))
    return {"queries": queries, "identical": all_identical}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny data, two rounds, one repeat; exit 1 "
                             "unless warm is byte-identical and hit the "
                             "cache")
    parser.add_argument("--scale", type=float, default=0.002,
                        help="TPC-H scale factor for the workload")
    parser.add_argument("--users", type=int, default=60,
                        help="clickstream users for the workload")
    parser.add_argument("--rounds", type=int, default=3,
                        help="times the whole workload repeats per arm")
    parser.add_argument("--repeats", type=int, default=3,
                        help="measured replays of each arm")
    parser.add_argument("--cache-mb", type=float, default=64.0)
    parser.add_argument("--out", default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    if args.smoke:
        args.scale, args.users = 0.001, 20
        args.rounds, args.repeats = 2, 1

    datastore = build_datastore(tpch_scale=args.scale,
                                clickstream_users=args.users, seed=7)
    cluster = small_cluster(data_scale=100.0)
    stream = workload_stream(args.rounds)

    cold = measure(
        "cold", lambda: replay(datastore, stream, 0.0, cluster),
        repeats=args.repeats)
    warm = measure(
        "warm", lambda: replay(datastore, stream, args.cache_mb, cluster),
        repeats=args.repeats)

    cold_session: WorkloadSession = cold.result
    warm_session: WorkloadSession = warm.result
    report = compare_arms(cold_session, warm_session)
    stats = warm_session.cache_stats
    cold_sim = sum(r.result.timing.total_s for r in cold_session.runs)
    warm_sim = sum(r.result.timing.total_s for r in warm_session.runs)

    macro = {
        "cold_s": cold.median_s,
        "warm_s": warm.median_s,
        "speedup": (cold.median_s / warm.median_s
                    if warm.median_s else float("inf")),
        "identical": report["identical"],
        "queries": report["queries"],
        "cold_simulated_s": cold_sim,
        "warm_simulated_s": warm_sim,
        "simulated_speedup": (cold_sim / warm_sim
                              if warm_sim else float("inf")),
        "cache": stats.as_dict(),
        "cache_bytes": warm_session.cache.total_bytes,
        "cache_budget_bytes": warm_session.cache.budget_bytes,
        "cold": cold.to_dict(),
        "warm": warm.to_dict(),
    }
    payload = {
        "benchmark": "result_cache",
        "config": {"tpch_scale": args.scale,
                   "clickstream_users": args.users, "seed": 7,
                   "rounds": args.rounds, "repeats": args.repeats,
                   "cache_mb": args.cache_mb, "smoke": args.smoke},
        "macro": macro,
    }
    write_json(args.out, payload)

    print(f"macro: cold {cold.median_s * 1e3:.1f}ms -> "
          f"warm {warm.median_s * 1e3:.1f}ms "
          f"({macro['speedup']:.2f}x wall, "
          f"{macro['simulated_speedup']:.2f}x simulated), "
          f"identical={macro['identical']}")
    for name, entry in sorted(report["queries"].items()):
        print(f"   {name:<12} {entry['cold_s'] * 1e3:>8.1f}ms -> "
              f"{entry['warm_s'] * 1e3:>7.1f}ms "
              f"({entry['speedup']:>5.2f}x)  "
              f"hits={entry['cache_hits']}/"
              f"{entry['cache_hits'] + entry['cache_misses']} "
              f"identical={entry['identical']}")
    print(f"cache: hits={stats.hits} misses={stats.misses} "
          f"evictions={stats.evictions} "
          f"bytes_saved={stats.bytes_saved} "
          f"resident={warm_session.cache.total_bytes}/"
          f"{warm_session.cache.budget_bytes}B")
    print(f"wrote {args.out}")

    if not macro["identical"]:
        print("FAIL: warm arm is not byte-identical to cold",
              file=sys.stderr)
        return 1
    if stats.hits == 0:
        print("FAIL: warm arm never hit the cache", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
