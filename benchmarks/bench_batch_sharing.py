"""Batch translation: sharing scans and jobs across queries.

Extends YSmart's Rule 1 across query boundaries (the MRShare direction
the paper's related work discusses): a reporting batch whose queries
partition the fact table identically collapses into one common job.
"""

from benchmarks.conftest import attach
from repro.bench import ExperimentResult
from repro.core.batch import run_batch, translate_batch
from repro.hadoop import HadoopCostModel, small_cluster
from repro.workloads.queries import Q21_SUBTREE_SQL

REPORTS = {
    "waiting_suppliers": Q21_SUBTREE_SQL,
    "order_sizes": ("SELECT l_orderkey, count(*) AS lines, "
                    "sum(l_quantity) AS qty FROM lineitem "
                    "GROUP BY l_orderkey"),
    "late_lines": ("SELECT l_orderkey, count(*) AS late FROM lineitem "
                   "WHERE l_receiptdate > l_commitdate "
                   "GROUP BY l_orderkey"),
}


def run_batch_experiment(workload):
    ds = workload.datastore
    model = HadoopCostModel(small_cluster(
        data_scale=workload.tpch_scale_10gb))
    result = ExperimentResult(
        "batch", "Three reports over lineitem: per-query translation vs "
        "batch translation with cross-query Rule 1",
        ["variant", "jobs", "lineitem_scans", "time_s"])

    lineitem_bytes = ds.table("lineitem").estimated_bytes()
    for share in (False, True):
        tr = translate_batch(REPORTS, catalog=ds.catalog,
                             namespace=f"bb.{share}",
                             share_across_queries=share)
        res = run_batch(tr, ds)
        scans = sum(r.counters.input_bytes.get("lineitem", 0)
                    for r in res.runs) / lineitem_bytes
        result.rows.append({
            "variant": "batch-shared" if share else "per-query",
            "jobs": tr.job_count,
            "lineitem_scans": round(scans, 1),
            "time_s": round(model.query_timing(res.runs).total_s)})
    return result


def test_batch_sharing(benchmark, workload):
    result = benchmark.pedantic(
        run_batch_experiment, args=(workload,), rounds=1, iterations=1)
    attach(benchmark, result)

    shared = result.by(variant="batch-shared")[0]
    separate = result.by(variant="per-query")[0]
    assert shared["jobs"] == 1 and separate["jobs"] == 3
    assert shared["lineitem_scans"] == 1.0
    assert separate["lineitem_scans"] == 3.0
    assert shared["time_s"] < separate["time_s"]
