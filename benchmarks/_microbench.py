"""Shared micro-benchmark harness for the standalone benchmark scripts.

pytest-benchmark drives the figure-regeneration benches under pytest;
this module is the dependency-free equivalent for scripts meant to run
(and emit JSON) outside pytest — CI smoke runs, the record-path
benchmark, ad-hoc profiling::

    from benchmarks._microbench import measure, speedup, write_json

    base = measure("legacy", lambda: kernel_legacy(data), repeats=5)
    opt = measure("optimized", lambda: kernel(data), repeats=5)
    write_json("BENCH_thing.json", {
        "legacy": base.to_dict(), "optimized": opt.to_dict(),
        "speedup": speedup(base, opt),
    })

Methodology: ``warmup`` unmeasured calls (imports, caches, allocator
steady state), then ``repeats`` measured calls; the headline statistic
is the **median** (robust against scheduler noise), with best/worst and
raw samples preserved for inspection.
"""

from __future__ import annotations

import json
import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


@dataclass
class Measurement:
    """Wall-clock samples for one benchmarked callable."""

    name: str
    samples: List[float]
    #: whatever the last call returned (for identity checks / checksums)
    result: object = None
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def median_s(self) -> float:
        return statistics.median(self.samples)

    @property
    def best_s(self) -> float:
        return min(self.samples)

    @property
    def worst_s(self) -> float:
        return max(self.samples)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "median_s": self.median_s,
            "best_s": self.best_s,
            "worst_s": self.worst_s,
            "repeats": len(self.samples),
            "samples_s": self.samples,
            **({"meta": self.meta} if self.meta else {}),
        }


def measure(name: str, fn: Callable[[], object], repeats: int = 5,
            warmup: int = 1,
            meta: Optional[Dict[str, object]] = None) -> Measurement:
    """Time ``fn`` ``repeats`` times after ``warmup`` unmeasured calls."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    result = None
    for _ in range(warmup):
        result = fn()
    samples: List[float] = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - t0)
    return Measurement(name=name, samples=samples, result=result,
                       meta=dict(meta or {}))


def speedup(baseline: Measurement, optimized: Measurement) -> float:
    """Median-over-median ratio (> 1 means ``optimized`` is faster)."""
    if optimized.median_s == 0:
        return float("inf")
    return baseline.median_s / optimized.median_s


def write_json(path: str, payload: Dict[str, object]) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
