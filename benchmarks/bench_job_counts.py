"""Sec. VII-A.2: MapReduce job counts per query and translator.

The paper's headline structural numbers: YSmart executes 2 jobs for
Q-CSA where Hive executes 6; one job covers Q17's whole JOIN2 sub-tree;
the Q21 sub-tree collapses from 5 jobs to 1.
"""

from benchmarks.conftest import attach
from repro.bench import table_job_counts

PAPER_COUNTS = {
    "q17": (2, 4),
    "q18": (3, 6),
    "q21": (5, 9),
    "q21_subtree": (1, 5),
    "q_csa": (2, 6),
    "q_agg": (1, 1),
}


def test_job_counts(benchmark, workload):
    result = benchmark.pedantic(
        table_job_counts, args=(workload,), rounds=1, iterations=1)
    attach(benchmark, result)

    for query, (ysmart, one_op) in PAPER_COUNTS.items():
        assert result.value("ysmart", query=query) == ysmart, query
        assert result.value("hive/pig (one-op-one-job)",
                            query=query) == one_op, query
