"""Out-of-core benchmark: the spill plane vs the in-memory ceiling.

The in-memory engine must hold its base tables, the whole shuffle, and
every intermediate in Python lists, so the ``tpch_scale`` it can run is
capped by the process working set.  This benchmark pins the headline
claim of the out-of-core plane: **under a fixed memory budget, the
spill plane completes a workload at least ``--min-factor`` (default 8)
times past the scale where the in-memory plane's working set exceeds
that same budget** — while producing byte-identical rows and
``comparable()`` counters wherever both planes can run.

Methodology (``tracemalloc`` traced-peak, not RSS, so the numbers are
allocator-exact and container-independent):

* **in-memory ceiling** — walk a doubling ladder of ``tpch_scale``; at
  each rung, trace generation + load + execution (the tables must be
  resident for the in-memory engine, so they are generated inside the
  traced window) and record the peak.  The ceiling is the last rung
  whose peak fits the budget.
* **out-of-core arm** — at ``ceiling x factor``, tables are written as
  on-disk segment files first and the generator's row lists dropped;
  the traced window then covers execution only, because that is all
  the spill plane ever keeps resident: streaming scan segments,
  budget-bounded shuffle buffers, merge heads, and the (disk-targeted)
  intermediates.  The gate is ``peak <= budget``.
* **reference arm** — the in-memory plane at the same big scale, to
  show what the spill plane avoided holding (reported, not gated).

Identity is asserted, not assumed: at a small scale both planes must
agree byte-for-byte — rows and ``comparable()`` counters — across the
serial and threaded executors, both schedulers, fault injection, and a
process-pool run of a hand-built picklable chain.  The script exits
nonzero on any identity violation, a vacuous run (nothing spilled), or
a blown budget.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_out_of_core.py [--smoke]
"""

from __future__ import annotations

import argparse
import gc
import os
import shutil
import sys
import tempfile
import tracemalloc

sys.path.insert(0, os.path.dirname(__file__))
from _microbench import write_json  # noqa: E402

from repro.catalog import standard_catalog  # noqa: E402
from repro.cmf import CommonReducer  # noqa: E402
from repro.data import Datastore  # noqa: E402
from repro.data.diskstore import disk_table_from  # noqa: E402
from repro.data.tpch import TpchConfig, generate_tpch  # noqa: E402
from repro.mr import (EmitSpec, FaultPlan, MapInput, MRJob,  # noqa: E402
                      OutputSpec, Runtime, make_executor)
from repro.ops import SPTask, TaskInput  # noqa: E402
from repro.workloads.runner import run_query  # noqa: E402

DEFAULT_OUT = os.path.normpath(os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_out_of_core.json"))

#: Shuffle-heavy aggregation: ``count(DISTINCT …)`` keeps the map-side
#: combiner off (as in Hive), so the shuffle carries one pair per
#: lineitem row and the memory pressure scales with the data — while
#: the mid-cardinality group key keeps every reduce group and the
#: result table small, so neither one reduce group's value list nor
#: result materialization masks the working-set comparison.
HEADLINE_SQL = (
    "SELECT l_partkey, count(DISTINCT l_orderkey) AS orders, "
    "sum(l_extendedprice) AS revenue, count(*) AS n "
    "FROM lineitem GROUP BY l_partkey")

#: Small-scale identity shapes: the headline aggregate, a total-order
#: job (range-partitioned external sort), and a two-table join chain.
IDENTITY_SQL = {
    "agg": HEADLINE_SQL,
    "sort": "SELECT l_orderkey, sum(l_extendedprice) AS rev "
            "FROM lineitem GROUP BY l_orderkey ORDER BY rev DESC LIMIT 20",
    "join": "SELECT o_orderdate, sum(l_extendedprice) AS rev "
            "FROM lineitem, orders WHERE l_orderkey = o_orderkey "
            "GROUP BY o_orderdate",
}


# ---------------------------------------------------------------------------
# Traced arms
# ---------------------------------------------------------------------------

def _fresh_tracing():
    gc.collect()
    if tracemalloc.is_tracing():
        tracemalloc.stop()
    tracemalloc.start()


def _end_tracing() -> int:
    peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()
    return peak


def run_in_memory(scale: float, seed: int) -> dict:
    """Generate + load + run inside one traced window (the in-memory
    plane must keep the tables resident, so they count)."""
    _fresh_tracing()
    ds = Datastore(standard_catalog())
    for table in generate_tpch(TpchConfig(scale_factor=scale,
                                          seed=seed)).values():
        ds.load_table(table)
    result = run_query(HEADLINE_SQL, ds, namespace="ooc_mem")
    peak = _end_tracing()
    rows = result.rows
    del result, ds
    return {"scale": scale, "peak_bytes": peak, "rows": rows}


def build_disk_datastore(scale: float, seed: int,
                         directory: str) -> Datastore:
    """Tables as on-disk segment files; generator row lists dropped."""
    ds = Datastore(standard_catalog())
    tables = generate_tpch(TpchConfig(scale_factor=scale, seed=seed))
    for name in list(tables):
        table = tables.pop(name)
        ds.load_table(disk_table_from(table, directory=directory))
        del table
    gc.collect()
    return ds


def run_out_of_core(ds: Datastore, budget_mb: float) -> dict:
    """Execution-only traced window: all the spill plane keeps resident."""
    _fresh_tracing()
    result = run_query(HEADLINE_SQL, ds, namespace="ooc_spill",
                       memory_budget_mb=budget_mb)
    peak = _end_tracing()
    return {
        "peak_bytes": peak,
        "rows": result.rows,
        "spill_files": sum(r.counters.spill_files for r in result.runs),
        "spilled_bytes": sum(r.counters.spilled_bytes
                             for r in result.runs),
        "merge_passes": sum(r.counters.merge_passes for r in result.runs),
        "reduce_input_records": sum(r.counters.reduce_input_records
                                    for r in result.runs),
    }


# ---------------------------------------------------------------------------
# Identity arms (small scale)
# ---------------------------------------------------------------------------

def canon(rows):
    return sorted(repr(tuple(sorted(r.items()))) for r in rows)


def _emit_lineitem(record):
    return (record["l_orderkey"],), {"v": record["l_extendedprice"]}


def _emit_pass(record):
    return (record["k"],), {"v": record["v"]}


def _picklable_chain(ns):
    def job(job_id, dataset, out, emit):
        task = SPTask("sp", TaskInput.shuffle("in", ["k"]))
        return MRJob(
            job_id=job_id, name="pass",
            map_inputs=[MapInput(dataset, [EmitSpec("in", emit)])],
            reducer=CommonReducer([task]),
            outputs=[OutputSpec(out, "sp", ["k", "v"])])
    return [job(f"{ns}.a", "lineitem", f"{ns}.a.out", _emit_lineitem),
            job(f"{ns}.b", f"{ns}.a.out", f"{ns}.b.out", _emit_pass)]


def check_identity(scale: float, seed: int, budget_mb: float) -> list:
    """Budgeted runs across executors/schedulers/faults must be
    byte-identical to the unbudgeted serial run."""
    ds = Datastore(standard_catalog())
    for table in generate_tpch(TpchConfig(scale_factor=scale,
                                          seed=seed)).values():
        ds.load_table(table)

    failures = []
    spilled_total = 0
    for qname, sql in IDENTITY_SQL.items():
        base = run_query(sql, ds, namespace=f"ooc_id_{qname}")
        base_cmp = [r.counters.comparable() for r in base.runs]
        arms = {
            "serial": {},
            "wave": {"scheduler": "wave"},
            "threads": {"parallelism": 4},
            "faults": {"fault_plan": FaultPlan(0.2, seed=13),
                       "max_attempts": 20},
            "faults_spec": {"parallelism": 4, "speculate": True,
                            "fault_plan": FaultPlan(0.2, seed=29),
                            "max_attempts": 20},
        }
        for aname, kwargs in arms.items():
            res = run_query(sql, ds, namespace=f"ooc_id_{qname}",
                            memory_budget_mb=budget_mb, **kwargs)
            if canon(res.rows) != canon(base.rows):
                failures.append(f"{qname}/{aname}: rows differ")
            if [r.counters.comparable() for r in res.runs] != base_cmp:
                failures.append(f"{qname}/{aname}: counters differ")
            spilled_total += sum(r.counters.spill_files for r in res.runs)

    # Process pool: hand-built picklable chain (translator jobs carry
    # closures and cannot cross a process boundary).
    jobs = _picklable_chain("oocp")
    serial = Runtime(ds).run_jobs(_picklable_chain("oocp"))
    rows_serial = canon(ds.intermediate("oocp.b.out").rows)
    cmp_serial = [r.counters.comparable() for r in serial]
    procs = Runtime(ds, executor=make_executor(2, kind="process"),
                    memory_budget_mb=budget_mb)
    process = procs.run_jobs(jobs)
    if canon(ds.intermediate("oocp.b.out").rows) != rows_serial:
        failures.append("process pool: rows differ")
    if [r.counters.comparable() for r in process] != cmp_serial:
        failures.append("process pool: counters differ")
    spilled_total += sum(r.counters.spill_files for r in process)

    if spilled_total == 0:
        failures.append("identity arms spilled nothing — checks were "
                        "vacuous; lower the identity budget")
    return failures


# ---------------------------------------------------------------------------
# Main
# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="smaller budget and coarser ladder; same "
                             "identity and budget gates")
    parser.add_argument("--budget-mb", type=float, default=48.0,
                        help="the fixed memory budget both arms answer to")
    parser.add_argument("--base-scale", type=float, default=0.001,
                        help="first rung of the doubling scale ladder")
    parser.add_argument("--min-factor", type=float, default=8.0,
                        help="required scale multiple past the ceiling")
    parser.add_argument("--identity-scale", type=float, default=0.002)
    parser.add_argument("--identity-budget-mb", type=float, default=0.05,
                        help="aggressive budget for the identity arms")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--skip-reference", action="store_true",
                        help="skip the in-memory run at the big scale")
    parser.add_argument("--out", default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    if args.smoke:
        args.budget_mb = 24.0
        args.base_scale = 0.0005
        args.identity_scale = 0.001
        args.skip_reference = True

    budget_bytes = int(args.budget_mb * 1024 * 1024)

    # -- in-memory ceiling --------------------------------------------------
    ladder, ceiling = [], None
    scale = args.base_scale
    while True:
        rung = run_in_memory(scale, args.seed)
        rung["fits"] = rung["peak_bytes"] <= budget_bytes
        print(f"in-memory scale={scale:g}: traced peak "
              f"{rung['peak_bytes'] / 1e6:.1f}MB "
              f"({'fits' if rung['fits'] else 'exceeds'} "
              f"{args.budget_mb:g}MB budget)")
        rung.pop("rows")
        ladder.append(rung)
        if not rung["fits"]:
            break
        ceiling = scale
        scale *= 2

    if ceiling is None:
        print(f"FAIL: budget {args.budget_mb}MB below the smallest "
              f"rung — raise --budget-mb", file=sys.stderr)
        return 1

    # -- out-of-core arm at ceiling x factor --------------------------------
    big_scale = ceiling * args.min_factor
    tmp = tempfile.mkdtemp(prefix="repro-ooc-")
    try:
        ds = build_disk_datastore(big_scale, args.seed, tmp)
        spill = run_out_of_core(ds, args.budget_mb)
        spill_rows = canon(spill.pop("rows"))
        print(f"out-of-core scale={big_scale:g} "
              f"({args.min_factor:g}x ceiling): traced peak "
              f"{spill['peak_bytes'] / 1e6:.1f}MB, "
              f"{spill['spill_files']} runs / "
              f"{spill['spilled_bytes'] / 1e6:.1f}MB spilled, "
              f"{spill['merge_passes']} merge passes, "
              f"{spill['reduce_input_records']} shuffled records")

        reference = None
        if not args.skip_reference:
            reference = run_in_memory(big_scale, args.seed)
            ref_rows = canon(reference.pop("rows"))
            print(f"in-memory reference at scale={big_scale:g}: "
                  f"traced peak {reference['peak_bytes'] / 1e6:.1f}MB "
                  f"({reference['peak_bytes'] / budget_bytes:.1f}x "
                  f"the budget)")
            if ref_rows != spill_rows:
                print("FAIL: spill rows differ from in-memory at the "
                      "big scale", file=sys.stderr)
                return 1
        del ds
        gc.collect()
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    # -- identity arms ------------------------------------------------------
    failures = check_identity(args.identity_scale, args.seed,
                              args.identity_budget_mb)

    gates = {
        "scale_factor_reached": big_scale / ceiling,
        "budget_respected": spill["peak_bytes"] <= budget_bytes,
        "spilled": spill["spill_files"] > 0,
        "identical": not failures,
    }
    payload = {
        "benchmark": "out_of_core",
        "config": {"budget_mb": args.budget_mb,
                   "base_scale": args.base_scale,
                   "min_factor": args.min_factor,
                   "identity_scale": args.identity_scale,
                   "identity_budget_mb": args.identity_budget_mb,
                   "seed": args.seed, "smoke": args.smoke},
        "in_memory_ladder": ladder,
        "in_memory_ceiling_scale": ceiling,
        "out_of_core": {"scale": big_scale, **spill},
        "in_memory_reference": reference,
        "gates": gates,
    }
    write_json(args.out, payload)
    print(f"wrote {args.out}")
    print(f"gates: {gates}")

    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    if failures:
        return 1
    if not gates["budget_respected"]:
        print(f"FAIL: out-of-core traced peak "
              f"{spill['peak_bytes'] / 1e6:.1f}MB exceeds the "
              f"{args.budget_mb}MB budget", file=sys.stderr)
        return 1
    if not gates["spilled"]:
        print("FAIL: nothing spilled at the big scale — the run was "
              "not out-of-core", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
