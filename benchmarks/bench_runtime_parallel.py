"""Execution-runtime parallelism: serial vs 2/4/8-worker wall-clock.

Measures the task-based runtime itself (real elapsed time, not the
simulated cluster model) on the two interesting schedule shapes: Q21's
linear five-job chain (task-level parallelism only) and a three-report
batch with no cross-job dependencies (whole jobs overlap).  The
regenerated table rides on ``benchmark.extra_info`` like every other
experiment, so ``repro.bench.reporting`` can save and diff it.
"""

from benchmarks.conftest import attach
from repro.bench import runtime_parallel


def test_runtime_parallel(benchmark, workload):
    result = benchmark.pedantic(
        runtime_parallel, args=(workload,), rounds=1, iterations=1)
    attach(benchmark, result)

    assert len(result.rows) == 8
    # The load-bearing invariant: every worker count reproduced the
    # serial rows exactly.
    assert all(row["identical"] for row in result.rows)
    # The batch really scheduled its three independent jobs in one wave.
    widths = {row["max_wave_width"] for row in
              result.by(workload="3-report batch") if row["workers"] > 1}
    assert widths == {3}
    # Q21's chain is linear: one job per wave regardless of workers.
    assert all(row["max_wave_width"] == 1 for row in result.by(
        workload="q21"))
