"""Execution-runtime parallelism: serial vs 2/4/8-worker wall-clock.

Measures the task-based runtime itself (real elapsed time, not the
simulated cluster model) on the two interesting schedule shapes: Q21's
linear five-job chain (task-level parallelism only) and a three-report
batch with no cross-job dependencies (whole jobs overlap).  The
regenerated table rides on ``benchmark.extra_info`` like every other
experiment, so ``repro.bench.reporting`` can save and diff it.

Runs under pytest-benchmark (``pytest benchmarks/ --benchmark-only``)
or standalone on the shared :mod:`benchmarks._microbench` harness::

    PYTHONPATH=src python benchmarks/bench_runtime_parallel.py
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
# Repo root too, so ``benchmarks.conftest`` resolves when run standalone.
sys.path.insert(
    0, os.path.normpath(os.path.join(os.path.dirname(__file__), os.pardir)))
from _microbench import measure, write_json  # noqa: E402

from benchmarks.conftest import attach  # noqa: E402
from repro.bench import runtime_parallel, standard_workload  # noqa: E402


def test_runtime_parallel(benchmark, workload):
    result = benchmark.pedantic(
        runtime_parallel, args=(workload,), rounds=1, iterations=1)
    attach(benchmark, result)

    assert len(result.rows) == 8
    # The load-bearing invariant: every worker count reproduced the
    # serial rows exactly.
    assert all(row["identical"] for row in result.rows)
    # The batch really scheduled its three independent jobs in one wave.
    widths = {row["max_wave_width"] for row in
              result.by(workload="3-report batch") if row["workers"] > 1}
    assert widths == {3}
    # Q21's chain is linear: one job per wave regardless of workers.
    assert all(row["max_wave_width"] == 1 for row in result.by(
        workload="q21"))


def main(argv=None) -> int:
    """Standalone run on the shared micro-benchmark harness.

    The experiment times each worker count internally, so one measured
    repeat per invocation is enough; the harness supplies the warmup
    and wall-clock bookkeeping.
    """
    workload = standard_workload(tpch_scale=0.002, clickstream_users=50)
    m = measure("runtime_parallel", lambda: runtime_parallel(workload),
                repeats=3, warmup=1)
    result = m.result
    assert all(row["identical"] for row in result.rows), \
        "parallel executors diverged from serial rows"
    print(result.to_markdown())
    out = os.path.normpath(os.path.join(
        os.path.dirname(__file__), os.pardir, "BENCH_runtime_parallel.json"))
    write_json(out, {"experiment": result.exp_id,
                     "rows": result.rows,
                     "notes": result.notes,
                     "wall": m.to_dict()})
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
