"""Fault-tolerance benchmark: byte-identity under injected task kills.

The paper grounds YSmart's design space in MapReduce's materialization
policy (Sec. III): intermediate results persist *because* tasks fail
and re-run.  This bench exercises both halves of that argument:

* **analytical** — :mod:`repro.hadoop.faults`: a materialized chain's
  expected overhead stays within a few percent under realistic failure
  rates while a hypothetical pipelined (restart-on-any-failure)
  execution explodes with task count;
* **measured** — the real runtime under a deterministic
  :class:`~repro.mr.faultplan.FaultPlan` at ``p=0.05, seed=7``: every
  paper query must return rows and ``comparable()`` counters
  byte-identical to the fault-free run on the serial and thread
  executors (dataflow and wave schedulers, plus a speculative arm), and
  a hand-built picklable job chain proves the same on the process
  executor — with ``task_retries > 0`` proving the kills actually
  fired;
* **calibration** — the measured retry factor (attempts per task) must
  land within 15% of the analytical
  :func:`~repro.hadoop.faults.expected_retry_factor` at the same
  probability, tying the cost model's fault math to observed behaviour.

Writes ``BENCH_fault_tolerance.json`` at the repo root.  Run
standalone::

    PYTHONPATH=src python benchmarks/bench_fault_tolerance.py          # full
    PYTHONPATH=src python benchmarks/bench_fault_tolerance.py --smoke  # CI

Exits nonzero if any arm is not byte-identical, no retries fired, or
the measured retry factor is off the analytical model by more than 15%.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List

sys.path.insert(0, os.path.dirname(__file__))
from _microbench import measure, write_json  # noqa: E402

from repro.catalog import Catalog, Schema
from repro.catalog.types import ColumnType as T
from repro.cmf import CommonReducer
from repro.data import Datastore, Table
from repro.hadoop.faults import (FaultModel, expected_pipelined_time,
                                 expected_retry_factor,
                                 materialized_phase_time)
from repro.mr import (EmitSpec, FaultPlan, MapInput, MRJob, OutputSpec,
                      ParallelExecutor, Runtime)
from repro.ops import SPTask, TaskInput
from repro.workloads.queries import paper_queries
from repro.workloads.runner import build_datastore, run_query

DEFAULT_OUT = os.path.normpath(os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_fault_tolerance.json"))

PROBABILITY = 0.05
SEED = 7


# ---------------------------------------------------------------------------
# Analytical section (repro.hadoop.faults, with the halved-rerun fix)
# ---------------------------------------------------------------------------

def analytical_section() -> Dict[str, object]:
    """600s of work split over n tasks: materialized re-execution vs
    restart-on-any-failure pipelining."""
    model = FaultModel(task_failure_prob=0.01)
    rows = []
    for tasks in (10, 100, 1000, 5000):
        mat = materialized_phase_time(600.0, tasks, 100, model)
        pipe = expected_pipelined_time(600.0, tasks, model)
        rows.append({"tasks": tasks,
                     "materialized_s": round(mat, 1),
                     "pipelined_s": (round(pipe, 1)
                                     if pipe != float("inf") else "inf")})
    ok = (rows[-1]["materialized_s"] < 600 * 1.2
          and (rows[2]["pipelined_s"] == "inf"
               or rows[2]["pipelined_s"] > 600 * 100))
    return {"model": {"task_failure_prob": 0.01, "detect_latency_s": 12.0},
            "base_s": 600.0, "rows": rows, "ok": ok}


# ---------------------------------------------------------------------------
# Measured identity arms (translator-emitted paper queries)
# ---------------------------------------------------------------------------

def run_arm(scale, users, name, **kwargs) -> Dict[str, object]:
    """Run every paper query on a fresh datastore; returns rows,
    comparable counters, and fault bookkeeping per query."""
    ds = build_datastore(tpch_scale=scale, clickstream_users=users, seed=7)
    out: Dict[str, object] = {}
    for qname, sql in sorted(paper_queries().items()):
        res = run_query(sql, ds, namespace=f"flt.{qname}",
                        split_rows="auto", keep_trace=True, **kwargs)
        trace = res.trace
        base_tasks = sum(
            1 for t in trace.tasks.values()
            if t.kind in ("map", "shuffle", "reduce")
            and "@a" not in t.task_id)
        out[qname] = {
            "rows": res.rows,
            "comparable": [r.counters.comparable() for r in res.runs],
            "task_retries": sum(r.counters.task_retries
                                for r in res.runs),
            "speculative_wins": sum(r.counters.speculative_wins
                                    for r in res.runs),
            "faultable_tasks": base_tasks,
        }
    return {"name": name, "queries": out}


def arm_summary(arm) -> Dict[str, int]:
    qs = arm["queries"].values()
    return {"task_retries": sum(q["task_retries"] for q in qs),
            "speculative_wins": sum(q["speculative_wins"] for q in qs),
            "faultable_tasks": sum(q["faultable_tasks"] for q in qs)}


def identical_to(base, arm) -> bool:
    for qname, ref in base["queries"].items():
        got = arm["queries"][qname]
        if got["rows"] != ref["rows"]:
            return False
        if got["comparable"] != ref["comparable"]:
            return False
    return True


# ---------------------------------------------------------------------------
# Process-executor arm (hand-built picklable jobs)
# ---------------------------------------------------------------------------

def _emit_kv(record):
    return (record["k"],), {"v": record["v"]}


def _picklable_job(job_id: str, dataset: str, out: str) -> MRJob:
    task = SPTask("sp", TaskInput.shuffle("in", ["k"]))
    return MRJob(
        job_id=job_id, name="pass",
        map_inputs=[MapInput(dataset, [EmitSpec("in", _emit_kv)])],
        reducer=CommonReducer([task]),
        outputs=[OutputSpec(out, "sp", ["k", "v"])],
    )


def _picklable_chain() -> List[MRJob]:
    return [_picklable_job("a", "wide", "a.out"),
            _picklable_job("b", "a.out", "b.out"),
            _picklable_job("c", "nums", "c.out")]


def _picklable_datastore(rows: int) -> Datastore:
    ds = Datastore(Catalog())
    ds.load_table(Table("nums", Schema.of(("k", T.INT), ("v", T.INT)),
                        [{"k": i % 5, "v": i * 7} for i in range(rows)]))
    ds.load_table(Table("wide", Schema.of(("k", T.INT), ("v", T.INT)),
                        [{"k": i % 11, "v": i} for i in range(rows * 2)]))
    return ds


def process_arm(plan: FaultPlan, workers: int,
                rows: int) -> Dict[str, object]:
    """Translator jobs carry closures, so the process executor gets a
    hand-built picklable chain: fault-free serial vs injected process
    runs must be byte-identical."""
    def one_run(runtime_kwargs):
        ds = _picklable_datastore(rows)
        runtime = Runtime(ds, split_rows=64, **runtime_kwargs)
        runs = runtime.run_jobs(_picklable_chain())
        tables = {out: ds.intermediate(out).rows
                  for out in ("a.out", "b.out", "c.out")}
        return runs, tables

    base_runs, base_tables = one_run({})
    fault_runs, fault_tables = one_run(dict(
        executor=ParallelExecutor(max_workers=workers, kind="process"),
        fault_plan=plan, max_attempts=8))
    same = (fault_tables == base_tables and
            [r.counters.comparable() for r in fault_runs]
            == [r.counters.comparable() for r in base_runs])
    retries = sum(r.counters.task_retries for r in fault_runs)
    return {"identical": same, "task_retries": retries,
            "workers": workers, "rows": rows}


# ---------------------------------------------------------------------------
# Calibration: measured retry factor vs expected_retry_factor
# ---------------------------------------------------------------------------

def calibrate(scale, users, rounds: int) -> Dict[str, object]:
    """Attempts per faultable task, measured over ``rounds`` namespaced
    passes of the paper workload, against the analytical 1/(1-p)."""
    tasks = retries = 0
    ds = build_datastore(tpch_scale=scale, clickstream_users=users, seed=7)
    plan = FaultPlan(PROBABILITY, seed=SEED)
    for rnd in range(rounds):
        for qname, sql in sorted(paper_queries().items()):
            res = run_query(sql, ds, namespace=f"cal{rnd}.{qname}",
                            split_rows="auto", keep_trace=True,
                            fault_plan=plan, max_attempts=16)
            retries += sum(r.counters.task_retries for r in res.runs)
            tasks += sum(
                1 for t in res.trace.tasks.values()
                if t.kind in ("map", "shuffle", "reduce")
                and "@a" not in t.task_id)
    measured = (tasks + retries) / tasks if tasks else float("nan")
    expected = expected_retry_factor(FaultModel(task_failure_prob=PROBABILITY))
    rel_err = abs(measured - expected) / expected
    return {"probability": PROBABILITY, "seed": SEED, "rounds": rounds,
            "faultable_tasks": tasks, "retries": retries,
            "measured_retry_factor": measured,
            "expected_retry_factor": expected,
            "relative_error": rel_err, "within_15pct": rel_err <= 0.15}


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small data, fewer arms/rounds; exit 1 "
                             "unless every identity and calibration "
                             "gate holds")
    parser.add_argument("--scale", type=float, default=0.002,
                        help="TPC-H scale factor for the workload")
    parser.add_argument("--users", type=int, default=60,
                        help="clickstream users for the workload")
    parser.add_argument("--rounds", type=int, default=3,
                        help="workload passes for retry-factor "
                             "calibration")
    parser.add_argument("--out", default=DEFAULT_OUT)
    args = parser.parse_args(argv)
    if args.smoke:
        args.rounds = 1

    plan = FaultPlan(PROBABILITY, seed=SEED)
    analytical = analytical_section()

    base = run_arm(args.scale, args.users, "serial-baseline")
    arms: Dict[str, Dict[str, object]] = {}
    specs = [
        ("serial-faults", dict(fault_plan=plan)),
        ("thread4-faults", dict(fault_plan=plan, parallelism=4)),
        ("wave-faults", dict(fault_plan=plan, scheduler="wave")),
        ("thread4-speculate", dict(fault_plan=plan, parallelism=4,
                                   speculate=True)),
    ]
    all_identical = True
    retries_fired = False
    for name, kwargs in specs:
        timed = measure(name, lambda kw=kwargs: run_arm(
            args.scale, args.users, name, **kw), repeats=1)
        arm = timed.result
        same = identical_to(base, arm)
        summary = arm_summary(arm)
        all_identical = all_identical and same
        retries_fired = retries_fired or summary["task_retries"] > 0
        arms[name] = {"identical": same, "wall_s": timed.median_s,
                      **summary}
        print(f"{name:<20} identical={same} "
              f"retries={summary['task_retries']} "
              f"speculative_wins={summary['speculative_wins']} "
              f"tasks={summary['faultable_tasks']} "
              f"({timed.median_s * 1e3:.0f}ms)")

    proc = process_arm(plan, workers=2, rows=512 if args.smoke else 2048)
    all_identical = all_identical and proc["identical"]
    print(f"{'process2-faults':<20} identical={proc['identical']} "
          f"retries={proc['task_retries']}")

    cal = calibrate(args.scale, args.users, args.rounds)
    print(f"retry factor: measured {cal['measured_retry_factor']:.4f} vs "
          f"expected {cal['expected_retry_factor']:.4f} "
          f"(rel err {cal['relative_error']:.1%}, "
          f"{cal['faultable_tasks']} tasks, {cal['retries']} retries)")

    payload = {
        "benchmark": "fault_tolerance",
        "config": {"tpch_scale": args.scale,
                   "clickstream_users": args.users,
                   "probability": PROBABILITY, "seed": SEED,
                   "rounds": args.rounds, "smoke": args.smoke},
        "analytical": analytical,
        "arms": arms,
        "process_arm": proc,
        "calibration": cal,
        "identical": all_identical,
        "retries_fired": retries_fired,
    }
    write_json(args.out, payload)
    print(f"wrote {args.out}")

    failed = False
    if not all_identical:
        print("FAIL: a fault-injected arm is not byte-identical to the "
              "fault-free baseline", file=sys.stderr)
        failed = True
    if not retries_fired:
        print("FAIL: no task retries fired — the fault plan never killed "
              "an attempt", file=sys.stderr)
        failed = True
    if not cal["within_15pct"]:
        print("FAIL: measured retry factor is off expected_retry_factor "
              f"by {cal['relative_error']:.1%} (> 15%)", file=sys.stderr)
        failed = True
    if not analytical["ok"]:
        print("FAIL: analytical crossover did not hold", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
