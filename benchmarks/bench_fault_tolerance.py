"""Fault-tolerance analysis: why MapReduce materializes (paper Sec. III).

The paper's design space is bounded by MapReduce's materialization
policy: intermediate results persist so a failed task re-runs alone.
This bench quantifies the trade-off the policy implies:

* under realistic per-task failure rates, a *materialized* job chain's
  expected overhead stays within a few percent, while a hypothetical
  fully *pipelined* execution (restart-on-any-failure) explodes with
  task count — the reason "minimize the number of jobs" is the right
  optimization rather than "remove the materialization";
* with failures enabled on the cost model, YSmart's advantage over Hive
  persists (both pay the same per-task retry factor; Hive still pays
  more scans, more startup, more materialized bytes).
"""

import pytest

from benchmarks.conftest import attach
from repro.bench import ExperimentResult
from repro.hadoop import (
    FaultModel,
    expected_pipelined_time,
    materialized_phase_time,
    small_cluster,
)
from repro.workloads import run_query
from repro.workloads.queries import Q21_SUBTREE_SQL


def run_fault_analysis(workload):
    result = ExperimentResult(
        "faults", "Materialized vs pipelined expected times, and query "
        "times under task failures",
        ["section", "variant", "metric", "value"])

    # -- analytical: 600s of work split over n tasks ------------------------
    model = FaultModel(task_failure_prob=0.01)
    for tasks in (10, 100, 1000, 5000):
        mat = materialized_phase_time(600.0, tasks, 100, model)
        pipe = expected_pipelined_time(600.0, tasks, model)
        result.rows.append({"section": "analytical",
                            "variant": f"{tasks}-tasks",
                            "metric": "materialized_s",
                            "value": round(mat, 1)})
        result.rows.append({"section": "analytical",
                            "variant": f"{tasks}-tasks",
                            "metric": "pipelined_s",
                            "value": (round(pipe, 1)
                                      if pipe != float("inf") else "inf")})

    # -- simulated: Q21 sub-tree with failures on -----------------------------
    ds = workload.datastore
    base = small_cluster(data_scale=workload.tpch_scale_10gb)
    for prob in (0.0, 0.02, 0.05):
        cluster = base.with_faults(
            FaultModel(task_failure_prob=prob) if prob else None)
        for mode in ("ysmart", "hive"):
            res = run_query(Q21_SUBTREE_SQL, ds, mode=mode, cluster=cluster,
                            namespace=f"flt.{prob}.{mode}")
            result.rows.append({"section": "simulated",
                                "variant": f"p={prob}",
                                "metric": f"{mode}_s",
                                "value": round(res.timing.total_s)})
    return result


def test_fault_tolerance(benchmark, workload):
    result = benchmark.pedantic(
        run_fault_analysis, args=(workload,), rounds=1, iterations=1)
    attach(benchmark, result)

    # Materialized overhead stays bounded; pipelined explodes.
    mat_5000 = result.value("value", section="analytical",
                            variant="5000-tasks", metric="materialized_s")
    assert mat_5000 < 600 * 1.2
    pipe_1000 = result.value("value", section="analytical",
                             variant="1000-tasks", metric="pipelined_s")
    assert pipe_1000 == "inf" or pipe_1000 > 600 * 100

    # Failures hurt everyone but never flip the ordering.
    for prob in ("p=0.0", "p=0.02", "p=0.05"):
        ys = result.value("value", section="simulated", variant=prob,
                          metric="ysmart_s")
        hv = result.value("value", section="simulated", variant=prob,
                          metric="hive_s")
        assert ys < hv
    assert result.value("value", section="simulated", variant="p=0.05",
                        metric="ysmart_s") > \
        result.value("value", section="simulated", variant="p=0.0",
                     metric="ysmart_s")
