"""Shared fixtures for the figure-regeneration benchmarks.

One session-scoped workload keeps the suite fast; each benchmark runs the
corresponding experiment end-to-end and attaches the regenerated table to
``benchmark.extra_info`` (also echoed to stdout, visible with ``-s``).
Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest

from repro.bench import standard_workload


@pytest.fixture(scope="session")
def workload():
    return standard_workload(tpch_scale=0.002, clickstream_users=50)


def attach(benchmark, result):
    """Store a regenerated table on the benchmark record and echo it."""
    benchmark.extra_info["experiment"] = result.exp_id
    benchmark.extra_info["rows"] = result.rows
    benchmark.extra_info["notes"] = result.notes
    print()
    print(result.to_markdown())
