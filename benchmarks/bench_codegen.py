"""Whole-stage codegen benchmark: compiled kernels vs the interpreter.

Both arms run the **same translation** — :func:`specialize` builds the
codegen twin without mutating the interpreted job, so before/after run
identical plans on identical data in the same process:

* **macro** — the full TPC-H/clickstream paper workload end to end,
  interpreted (``codegen=False``) vs compiled (``codegen=True``) on
  both data planes, with rows and every ``comparable()`` counter
  asserted byte-identical across all four arms.  The headline figure
  is the geometric mean of the per-query row-plane ratios (each query
  weighted equally); the batch plane is reported as a no-regression
  check — its kernels were already vectorized, so codegen mostly
  relieves the per-record scan path;
* **sweep** — identity re-asserted under the rest of the engine
  configuration space: the wave scheduler, a parallel executor, fault
  injection, and an aggressive spill budget;
* **micro** — the generated whole-split loop against the per-record
  interpreted emit on q17's base-table scans, and the generated
  aggregate fold against the accumulator path.

Writes ``BENCH_codegen.json`` at the repo root.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_codegen.py          # full
    PYTHONPATH=src python benchmarks/bench_codegen.py --smoke  # CI

``--smoke`` uses a tiny dataset and one repeat, and exits nonzero
unless every arm is byte-identical and the row-plane geomean is a win
(> 1.0; the committed full run shows the real margin).
"""

from __future__ import annotations

import argparse
import math
import os
import sys
from typing import Dict

sys.path.insert(0, os.path.dirname(__file__))
from _microbench import measure, speedup, write_json  # noqa: E402

from repro.core.translator import translate_sql
from repro.expr.codegen import specialize
from repro.mr.faultplan import FaultPlan
from repro.mr.kv import TaggedValue
from repro.workloads.queries import paper_queries
from repro.workloads.runner import build_datastore, run_translation

DEFAULT_OUT = os.path.normpath(os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_codegen.json"))


def _signature(result) -> tuple:
    """Rows + comparable counters: what byte-identity pins per arm
    (codegen bookkeeping is excluded from ``comparable()``, so the
    toggle itself cannot leak in)."""
    return (result.rows, [r.counters.comparable() for r in result.runs])


def _translations(datastore):
    return {name: translate_sql(sql, catalog=datastore.catalog,
                                namespace=f"bench.{name}", num_reducers=8)
            for name, sql in sorted(paper_queries().items())}


# ---------------------------------------------------------------------------
# Macro: the paper workload end to end
# ---------------------------------------------------------------------------

def macro_benchmark(datastore, repeats: int) -> Dict[str, object]:
    queries: Dict[str, object] = {}
    totals = {"interp_row": 0.0, "codegen_row": 0.0,
              "interp_batch": 0.0, "codegen_batch": 0.0}
    all_identical = True
    for name, tr in _translations(datastore).items():
        arms = {}
        for arm, (plane, codegen) in {
                "interp_row": ("row", False),
                "codegen_row": ("row", True),
                "interp_batch": ("batch", False),
                "codegen_batch": ("batch", True)}.items():
            arms[arm] = measure(
                f"{arm}:{name}",
                lambda tr=tr, plane=plane, codegen=codegen: run_translation(
                    tr, datastore, data_plane=plane, stats="off",
                    codegen=codegen),
                repeats=repeats)
            totals[arm] += arms[arm].median_s

        sig = _signature(arms["interp_row"].result)
        identical = all(_signature(arms[a].result) == sig for a in arms)
        all_identical = all_identical and identical
        codegen_counters = [r.counters
                            for r in arms["codegen_row"].result.runs]
        queries[name] = {
            **{f"{arm}_s": m.median_s for arm, m in arms.items()},
            "speedup_row": speedup(arms["interp_row"], arms["codegen_row"]),
            "speedup_batch": speedup(arms["interp_batch"],
                                     arms["codegen_batch"]),
            "identical": identical,
            "jobs": len(arms["codegen_row"].result.runs),
            "rows": len(arms["codegen_row"].result.rows),
            "codegen_compiles": sum(c.codegen_compiles
                                    for c in codegen_counters),
            "codegen_cache_hits": sum(c.codegen_cache_hits
                                      for c in codegen_counters),
            "codegen_fallbacks": sum(c.codegen_fallbacks
                                     for c in codegen_counters),
        }

    def geomean(key: str) -> float:
        ratios = [entry[key] for entry in queries.values()]
        return math.exp(sum(math.log(r) for r in ratios) / len(ratios))

    return {
        "queries": queries,
        **{f"total_{arm}_s": t for arm, t in totals.items()},
        "speedup_row": geomean("speedup_row"),
        "speedup_batch": geomean("speedup_batch"),
        "speedup_row_wall": (totals["interp_row"] / totals["codegen_row"]
                             if totals["codegen_row"] else float("inf")),
        "fallbacks": sum(e["codegen_fallbacks"] for e in queries.values()),
        "identical": all_identical,
    }


# ---------------------------------------------------------------------------
# Sweep: identity across the engine configuration space
# ---------------------------------------------------------------------------

SWEEP_CONFIGS = {
    "wave_scheduler": {"scheduler": "wave"},
    "parallel_2": {"parallelism": 2},
    "fault_injection": {"fault_plan": FaultPlan(0.05, seed=3),
                        "max_attempts": 20},
    "spill_budget": {"memory_budget_mb": 0.05},
}


def identity_sweep(datastore) -> Dict[str, bool]:
    """Codegen vs interpreted under every engine configuration the
    contract names — one run each, identity is the measurement."""
    tr = translate_sql(paper_queries()["q17"], catalog=datastore.catalog,
                       namespace="bench.sweep", num_reducers=8)
    verdicts: Dict[str, bool] = {}
    for name, kwargs in SWEEP_CONFIGS.items():
        compiled = run_translation(tr, datastore, codegen=True, **kwargs)
        interp = run_translation(tr, datastore, codegen=False, **kwargs)
        verdicts[name] = _signature(compiled) == _signature(interp)
    return verdicts


# ---------------------------------------------------------------------------
# Micro: the generated kernels in isolation
# ---------------------------------------------------------------------------

def micro_emit_loop(datastore, repeats: int) -> Dict[str, object]:
    """The fused scan→filter→project→emit loop vs the per-record
    interpreted closures, on q17's base-table map inputs."""
    tr = translate_sql(paper_queries()["q17"], catalog=datastore.catalog,
                       namespace="bench.micro", num_reducers=8)
    job = tr.jobs[0]
    new_job, _ = specialize(job)
    assert new_job is not None
    work = []
    for mi, new_mi in zip(job.map_inputs, new_job.map_inputs):
        rows = datastore.table(mi.dataset).rows
        for spec, new_spec in zip(mi.specs, new_mi.specs):
            if new_spec.cg_loop is not None:
                work.append((spec, new_spec, rows))
    assert work

    def interpreted():
        # The engine's single-spec interpreted loop, verbatim shape:
        # per-record emit closure, tag wrap, pair append.
        n = 0
        for spec, _, rows in work:
            pairs = []
            append, emit = pairs.append, spec.emit
            tag = frozenset((spec.role,))
            for record in rows:
                pair = emit(record)
                if pair is not None:
                    append((pair[0], TaggedValue(tag, pair[1])))
            n += len(pairs)
        return n

    def generated():
        return sum(len(new_spec.cg_loop(rows))
                   for _, new_spec, rows in work)

    interp = measure("interpreted", interpreted, repeats=repeats,
                     meta={"specs": len(work)})
    gen = measure("generated", generated, repeats=repeats,
                  meta={"specs": len(work)})
    assert gen.result == interp.result
    return {"interpreted": interp.to_dict(), "generated": gen.to_dict(),
            "speedup": speedup(interp, gen)}


def micro_agg_fold(datastore, repeats: int) -> Dict[str, object]:
    """The generated per-key fold vs the accumulator machinery, on the
    reduce side of a grouped aggregation."""
    sql = ("SELECT l_orderkey, sum(l_quantity) AS qty, count(*) AS n, "
           "avg(l_extendedprice) AS p FROM lineitem GROUP BY l_orderkey")
    tr = translate_sql(sql, catalog=datastore.catalog,
                       namespace="bench.fold", num_reducers=8)

    interp = measure(
        "interpreted",
        lambda: run_translation(tr, datastore, data_plane="row",
                                stats="off", codegen=False),
        repeats=repeats)
    gen = measure(
        "generated",
        lambda: run_translation(tr, datastore, data_plane="row",
                                stats="off", codegen=True),
        repeats=repeats)
    assert _signature(gen.result) == _signature(interp.result)
    return {"interpreted": interp.to_dict(), "generated": gen.to_dict(),
            "speedup": speedup(interp, gen)}


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny data, one repeat; exit 1 unless every "
                             "arm is identical and the row plane wins")
    parser.add_argument("--scale", type=float, default=0.02,
                        help="TPC-H scale factor for the macro workload")
    parser.add_argument("--users", type=int, default=120,
                        help="clickstream users for the macro workload")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--out", default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    if args.smoke:
        args.scale, args.users, args.repeats = 0.002, 20, 1

    datastore = build_datastore(tpch_scale=args.scale,
                                clickstream_users=args.users, seed=7)

    macro = macro_benchmark(datastore, args.repeats)
    sweep = identity_sweep(datastore)
    micro = {
        "emit_loop": micro_emit_loop(datastore, args.repeats),
        "agg_fold": micro_agg_fold(datastore, args.repeats),
    }

    payload = {
        "benchmark": "codegen",
        "config": {"tpch_scale": args.scale, "clickstream_users": args.users,
                   "seed": 7, "repeats": args.repeats, "smoke": args.smoke},
        "macro": macro,
        "identity_sweep": sweep,
        "micro": micro,
    }
    write_json(args.out, payload)

    print(f"macro (row plane): interpreted "
          f"{macro['total_interp_row_s'] * 1e3:.1f}ms -> codegen "
          f"{macro['total_codegen_row_s'] * 1e3:.1f}ms "
          f"(geomean {macro['speedup_row']:.2f}x, "
          f"wall {macro['speedup_row_wall']:.2f}x); "
          f"batch plane geomean {macro['speedup_batch']:.2f}x; "
          f"fallbacks={macro['fallbacks']} "
          f"identical={macro['identical']}")
    for name, entry in sorted(macro["queries"].items()):
        print(f"   {name:<12} row {entry['interp_row_s'] * 1e3:>8.1f}ms -> "
              f"{entry['codegen_row_s'] * 1e3:>8.1f}ms "
              f"({entry['speedup_row']:>5.2f}x)  batch "
              f"{entry['interp_batch_s'] * 1e3:>7.1f}ms -> "
              f"{entry['codegen_batch_s'] * 1e3:>7.1f}ms "
              f"({entry['speedup_batch']:>5.2f}x)  "
              f"compiles={entry['codegen_compiles']} "
              f"hits={entry['codegen_cache_hits']}")
    for name, ok in sweep.items():
        print(f"sweep {name:<16} identical={ok}")
    for name, entry in micro.items():
        print(f"micro {name:<16} {entry['speedup']:.2f}x")
    print(f"wrote {args.out}")

    if not macro["identical"] or not all(sweep.values()):
        print("FAIL: codegen and interpreted engines disagree",
              file=sys.stderr)
        return 1
    if macro["fallbacks"]:
        print(f"FAIL: {macro['fallbacks']} codegen fallback(s) on the "
              f"paper workload", file=sys.stderr)
        return 1
    if args.smoke and macro["speedup_row"] <= 1.0:
        print(f"FAIL: smoke row-plane speedup "
              f"{macro['speedup_row']:.2f}x <= 1.0", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
