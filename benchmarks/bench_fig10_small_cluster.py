"""Fig. 10: small-cluster execution times, YSmart vs Hive vs Pig vs the
ideal-parallel PostgreSQL baseline, for Q17/Q18/Q21/Q-CSA.

Paper speedups of YSmart over Hive: 2.58x / 1.90x / 2.52x / 2.66x; the
DBMS wins the TPC-H queries outright and roughly ties Q-CSA.
"""

import pytest

from benchmarks.conftest import attach
from repro.bench import fig10_small_cluster


@pytest.fixture(scope="module")
def result(workload):
    return fig10_small_cluster(workload)


def test_fig10_small_cluster(benchmark, workload):
    result = benchmark.pedantic(
        fig10_small_cluster, args=(workload,), rounds=1, iterations=1)
    attach(benchmark, result)

    for query in ("q17", "q18", "q21", "q_csa"):
        ys = result.value("time_s", query=query, system="ysmart")
        hive = result.value("time_s", query=query, system="hive")
        pig = result.value("time_s", query=query, system="pig")
        assert ys < hive <= pig, query
    for query in ("q17", "q18", "q21"):
        assert result.value("time_s", query=query, system="pgsql") < \
            result.value("time_s", query=query, system="ysmart")
    ys = result.value("time_s", query="q_csa", system="ysmart")
    pg = result.value("time_s", query="q_csa", system="pgsql")
    assert 0.6 < ys / pg < 1.8
