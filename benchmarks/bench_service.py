"""Multi-tenant service benchmark: concurrent tenants over one shared
cache vs isolated sequential sessions.

``--tenants`` concurrent tenants (default 4, half at fair-share weight
2.0) each replay the paper's query workload ``--rounds`` times against
one :class:`~repro.service.QueryService` — one datastore, one shared
:class:`~repro.reuse.ResultCache`, one fair-share pool.  Three
measurements:

* **sequential** — per-tenant isolated cold sessions, one after
  another: the no-service baseline.
* **cold** — all tenants concurrently against a fresh service (empty
  shared cache).  Cross-tenant reuse already bites here: the first
  tenant to finish a sub-plan serves everyone else.
* **warm** — the same tenants replay the same streams against the
  now-populated cache.

Every tenant's rows (and ``comparable()`` counters) must be
byte-identical to its sequential reference in both concurrent arms —
the benchmark refuses to report a throughput win that moved a byte.
Reports aggregate throughput (queries/s) and per-query latency
p50/p99, cold vs warm, plus shared-cache traffic including
``cross_tenant_hits``.

Writes ``BENCH_service.json`` at the repo root.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_service.py          # full
    PYTHONPATH=src python benchmarks/bench_service.py --smoke  # CI

Exits nonzero if any tenant's rows drift from sequential, the warm arm
is not faster than the cold arm, or the shared cache never served a
cross-tenant hit.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
import time
from typing import Dict, List, Tuple

sys.path.insert(0, os.path.dirname(__file__))
from _microbench import write_json  # noqa: E402

from repro.service import QueryService
from repro.workloads.queries import paper_queries
from repro.workloads.runner import build_datastore
from repro.workloads.session import WorkloadSession

DEFAULT_OUT = os.path.normpath(os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_service.json"))


def tenant_names(n: int) -> List[str]:
    return [f"tenant{i}" for i in range(n)]


def tenant_weight(i: int) -> float:
    """Alternate weights so the fair-share stride path is exercised."""
    return 2.0 if i % 2 == 0 else 1.0


def workload_stream(rounds: int) -> List[Tuple[str, str]]:
    queries = sorted(paper_queries().items())
    return [(name, sql) for _ in range(rounds) for name, sql in queries]


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty list."""
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1,
                      int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


def run_sequential(datastore, stream, tenants: List[str]
                   ) -> Tuple[Dict[str, list], Dict[str, list], float]:
    """The reference arm: each tenant's stream in an isolated cold
    session, tenants one after another, the stream twice per tenant —
    the first pass is the cold arm's reference, the second the warm
    arm's (session namespaces advance across passes, and counters
    embed them)."""
    first: Dict[str, list] = {}
    second: Dict[str, list] = {}
    t0 = time.perf_counter()
    for tenant in tenants:
        # the same namespace prefix the service will use, so counters
        # (which embed dataset names) compare byte-for-byte
        session = WorkloadSession(datastore, cache_mb=None, stats="off",
                                  namespace_prefix=f"svc.{tenant}")
        for outputs in (first, second):
            outputs[tenant] = [
                (session.run(sql, name=name).rows,
                 [r.counters.comparable()
                  for r in session.runs[-1].result.runs])
                for name, sql in stream]
    return first, second, time.perf_counter() - t0


def run_concurrent(service: QueryService, stream,
                   tenants: List[str]) -> Dict[str, object]:
    """One concurrent arm: every tenant drives its stream on its own
    thread; returns outputs, per-query latencies, and the arm wall."""
    outputs: Dict[str, list] = {}
    latencies: Dict[str, List[float]] = {}
    errors: List[BaseException] = []

    def drive(tenant: str):
        rows_and_counters, walls = [], []
        try:
            for name, sql in stream:
                t0 = time.perf_counter()
                result = service.run(tenant, sql, name=name)
                walls.append(time.perf_counter() - t0)
                rows_and_counters.append(
                    (result.rows,
                     [r.counters.comparable() for r in result.runs]))
        except BaseException as exc:
            errors.append(exc)
            raise
        outputs[tenant] = rows_and_counters
        latencies[tenant] = walls

    threads = [threading.Thread(target=drive, args=(t,), name=f"drv-{t}")
               for t in tenants]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    if errors:
        raise errors[0]
    all_lat = [w for walls in latencies.values() for w in walls]
    return {
        "outputs": outputs,
        "wall_s": wall,
        "queries": len(stream) * len(tenants),
        "throughput_qps": len(stream) * len(tenants) / wall,
        "p50_s": percentile(all_lat, 50),
        "p99_s": percentile(all_lat, 99),
    }


def identity_report(reference: Dict[str, list],
                    arm_outputs: Dict[str, list]) -> Dict[str, bool]:
    return {tenant: arm_outputs[tenant] == reference[tenant]
            for tenant in reference}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny data, one round; exit 1 unless every "
                             "tenant matches sequential, warm beats "
                             "cold, and a cross-tenant hit happened")
    parser.add_argument("--scale", type=float, default=0.002,
                        help="TPC-H scale factor for the workload")
    parser.add_argument("--users", type=int, default=60,
                        help="clickstream users for the workload")
    parser.add_argument("--tenants", type=int, default=4,
                        help="concurrent tenants (each its own thread)")
    parser.add_argument("--rounds", type=int, default=2,
                        help="times each tenant repeats the workload")
    parser.add_argument("--workers", type=int, default=4,
                        help="shared fair-share pool size")
    parser.add_argument("--cache-mb", type=float, default=64.0)
    parser.add_argument("--out", default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    if args.smoke:
        args.scale, args.users, args.rounds = 0.001, 20, 1

    if args.tenants < 2:
        print("need at least 2 tenants for cross-tenant reuse",
              file=sys.stderr)
        return 2

    datastore = build_datastore(tpch_scale=args.scale,
                                clickstream_users=args.users, seed=7)
    stream = workload_stream(args.rounds)
    tenants = tenant_names(args.tenants)

    ref_cold, ref_warm, sequential_wall = run_sequential(
        datastore, stream, tenants)

    with QueryService(datastore, workers=args.workers,
                      cache_mb=args.cache_mb, stats="off") as service:
        for i, tenant in enumerate(tenants):
            service.open_session(tenant, weight=tenant_weight(i))
        cold = run_concurrent(service, stream, tenants)
        cold_cache = dict(service.cache.stats.as_dict())
        warm = run_concurrent(service, stream, tenants)
        cache_stats = service.cache.stats.as_dict()
        per_tenant = {t: service.tenant_stats(t) for t in tenants}
        dispatched = dict(service.executor.dispatched)

    cold_identity = identity_report(ref_cold, cold.pop("outputs"))
    warm_identity = identity_report(ref_warm, warm.pop("outputs"))
    identical = (all(cold_identity.values())
                 and all(warm_identity.values()))
    warm_faster = warm["throughput_qps"] > cold["throughput_qps"]

    payload = {
        "benchmark": "service",
        "config": {"tpch_scale": args.scale, "clickstream_users": args.users,
                   "seed": 7, "tenants": args.tenants,
                   "weights": [tenant_weight(i)
                               for i in range(args.tenants)],
                   "rounds": args.rounds, "workers": args.workers,
                   "cache_mb": args.cache_mb, "smoke": args.smoke},
        "sequential": {"wall_s": sequential_wall,
                       "queries": 2 * len(stream) * args.tenants,
                       "throughput_qps": (2 * len(stream) * args.tenants
                                          / sequential_wall)},
        "cold": {**cold, "identical": cold_identity,
                 "cache": cold_cache},
        "warm": {**warm, "identical": warm_identity,
                 "cache": cache_stats},
        "identical": identical,
        "warm_speedup": warm["throughput_qps"] / cold["throughput_qps"],
        "concurrent_speedup": (cold["throughput_qps"]
                               / (2 * len(stream) * args.tenants
                                  / sequential_wall)),
        "cross_tenant_hits": cache_stats["cross_tenant_hits"],
        "tenants": per_tenant,
        "tasks_dispatched": dispatched,
    }
    write_json(args.out, payload)

    print(f"{args.tenants} tenants x {len(stream)} queries, "
          f"{args.workers} workers, cache={args.cache_mb:g}MB shared")
    print(f"sequential: {payload['sequential']['throughput_qps']:8.2f} q/s "
          f"({sequential_wall * 1e3:.1f}ms)")
    print(f"cold:       {cold['throughput_qps']:8.2f} q/s "
          f"p50={cold['p50_s'] * 1e3:.1f}ms "
          f"p99={cold['p99_s'] * 1e3:.1f}ms "
          f"(cross_tenant_hits={cold_cache['cross_tenant_hits']})")
    print(f"warm:       {warm['throughput_qps']:8.2f} q/s "
          f"p50={warm['p50_s'] * 1e3:.1f}ms "
          f"p99={warm['p99_s'] * 1e3:.1f}ms "
          f"({payload['warm_speedup']:.2f}x cold)")
    print(f"cache: hits={cache_stats['hits']} "
          f"misses={cache_stats['misses']} "
          f"cross_tenant_hits={cache_stats['cross_tenant_hits']} "
          f"bytes_saved={cache_stats['bytes_saved']}")
    for tenant in tenants:
        counters = per_tenant[tenant]
        print(f"   {tenant:<10} w={counters['weight']:g} "
              f"queries={counters['queries']} "
              f"hits={counters['cache_hits']} "
              f"wall={counters['wall_s'] * 1e3:8.1f}ms "
              f"tasks={dispatched.get(tenant, 0)}")
    print(f"identical={identical} warm_faster={warm_faster}")
    print(f"wrote {args.out}")

    if not identical:
        bad = [t for t, ok in {**cold_identity, **warm_identity}.items()
               if not ok]
        print(f"FAIL: tenants {bad} drifted from the sequential "
              f"reference", file=sys.stderr)
        return 1
    if not warm_faster:
        print("FAIL: warm throughput did not beat cold", file=sys.stderr)
        return 1
    if cache_stats["cross_tenant_hits"] < 1:
        print("FAIL: shared cache never served a cross-tenant hit",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
