"""Fig. 9: Q21 sub-tree job finishing-time breakdowns.

Regenerates the staged correlation ablation: one-operation-to-one-job
(5 jobs) vs IC+TC only (3 jobs) vs all correlations (1 job) vs the
hand-coded program, with per-job map/shuffle/reduce phases.
Paper totals: 1140 s / 773 s / 561 s / 479 s.
"""

from benchmarks.conftest import attach
from repro.bench import fig9_q21_breakdown


def test_fig9_q21_breakdown(benchmark, workload):
    result = benchmark.pedantic(
        fig9_q21_breakdown, args=(workload,), rounds=1, iterations=1)
    attach(benchmark, result)

    totals = {s: result.value("total_s", system=s, job="TOTAL")
              for s in ("one_to_one", "ysmart_ic_tc", "ysmart", "handcoded")}
    assert totals["one_to_one"] > totals["ysmart_ic_tc"] \
        > totals["ysmart"] > totals["handcoded"]
    # Paper speedup of full YSmart over one-op-one-job: 203%.
    assert 1.9 < totals["one_to_one"] / totals["ysmart"] < 3.0
    # Map share of the naive translation (paper: 65%).
    map_s = result.value("map_s", system="one_to_one", job="TOTAL")
    assert 0.5 < map_s / totals["one_to_one"] < 0.85
