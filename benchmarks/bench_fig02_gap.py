"""Fig. 2(b): the performance gap — Hive vs hand-coded MapReduce.

Regenerates the paper's motivating measurement: the hand-coded program
beats Hive ~3x on Q-CSA while matching it on Q-AGG.
"""

from benchmarks.conftest import attach
from repro.bench import fig2_performance_gap


def test_fig2b_performance_gap(benchmark, workload):
    result = benchmark.pedantic(
        fig2_performance_gap, args=(workload,), rounds=1, iterations=1)
    attach(benchmark, result)

    csa_hive = result.value("time_s", query="q_csa", system="hive")
    csa_hand = result.value("time_s", query="q_csa", system="hand-coded")
    agg_hive = result.value("time_s", query="q_agg", system="hive")
    agg_hand = result.value("time_s", query="q_agg", system="hand-coded")
    assert csa_hive / csa_hand > 1.8          # paper: ~2.9x
    assert 0.9 < agg_hive / agg_hand < 1.1    # paper: parity
