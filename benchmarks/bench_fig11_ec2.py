"""Fig. 11: Amazon EC2 clusters — scaling and map-output compression.

Regenerates the 11-node vs 101-node comparison (10 GB vs 100 GB TPC-H)
with compression on/off, plus Q-CSA on the 11-node cluster.  Paper
findings: YSmart wins every case, both systems scale near-linearly, and
compression degrades performance (Q17 YSmart 5.93 -> 12.02 min).
"""

from benchmarks.conftest import attach
from repro.bench import fig11_ec2


def test_fig11_ec2(benchmark, workload):
    result = benchmark.pedantic(
        fig11_ec2, args=(workload,), rounds=1, iterations=1)
    attach(benchmark, result)

    # YSmart wins every configuration.
    for row in result.by(system="ysmart"):
        if row["query"] == "q_csa":
            continue
        hive = result.value("time_s", query=row["query"],
                            cluster=row["cluster"],
                            compression=row["compression"], system="hive")
        assert row["time_s"] < hive

    # Near-linear scaling 11 -> 101 nodes (10x the data).
    for query in ("q17", "q18", "q21"):
        t11 = result.value("time_s", query=query, cluster="11-node",
                           compression="nc", system="ysmart")
        t101 = result.value("time_s", query=query, cluster="101-node",
                            compression="nc", system="ysmart")
        assert t101 / t11 < 1.6, query

    # Compression is a net loss everywhere (paper: ~2x for Q17).
    q17_nc = result.value("time_s", query="q17", cluster="101-node",
                          compression="nc", system="ysmart")
    q17_c = result.value("time_s", query="q17", cluster="101-node",
                         compression="c", system="ysmart")
    assert 1.5 < q17_c / q17_nc < 2.6

    # Q-CSA on 11 nodes: ysmart < hive < pig (paper: 4.87x / 8.4x).
    ys = result.value("time_s", query="q_csa", cluster="11-node",
                      compression="nc", system="ysmart")
    hive = result.value("time_s", query="q_csa", cluster="11-node",
                        compression="nc", system="hive")
    pig = result.value("time_s", query="q_csa", cluster="11-node",
                       compression="nc", system="pig")
    assert ys < hive < pig
