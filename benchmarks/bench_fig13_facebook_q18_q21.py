"""Fig. 13: Q18 and Q21 on the Facebook cluster, average of three
instances each, on a busier day than Fig. 12's Q17 runs.

Paper: average speedups 2.98x (Q18) and 3.36x (Q21) — larger than on
isolated clusters — and both queries several times slower than Q17 due
to day-to-day production dynamics.
"""

from benchmarks.conftest import attach
from repro.bench import fig12_facebook_q17, fig13_facebook_q18_q21


def test_fig13_facebook_q18_q21(benchmark, workload):
    result = benchmark.pedantic(
        fig13_facebook_q18_q21, args=(workload,), rounds=1, iterations=1)
    attach(benchmark, result)

    for query in ("q18", "q21"):
        speedup = result.value("speedup", query=query, system="ysmart")
        assert speedup > 1.9  # paper: ~3x

    # The busier day makes Q21 far slower than Q17 was (paper: 3.46x for
    # YSmart, 4.88x for Hive).
    q17 = fig12_facebook_q17(workload)
    q17_ys = sum(r["time_s"] for r in q17.by(system="ysmart")) / 3
    q21_ys = result.value("avg_time_s", query="q21", system="ysmart")
    assert q21_ys / q17_ys > 2.0
