"""Dataflow-scheduler benchmark: barrier-free vs wave execution.

Runs the paper's query workload through two runtime arms over the same
datastore and translations:

* **wave** — the historical barrier scheduler: jobs grouped into DAG
  levels, every wave's maps fence before its shuffles, a fresh pool per
  task batch;
* **dataflow** — the event-driven scheduler: one executor session per
  chain, tasks dispatched the moment their inputs exist, shuffle and
  reduce of one job overlapping other jobs' maps.

Both arms run at ``--parallelism`` levels (default 1, 4, 8).  Rows and
``comparable()`` counters must be byte-identical between arms at every
level — the benchmark refuses to report a speedup that moved a byte.
Alongside wall-clock it reports each arm's measured scheduling profile
(makespan, idle time, utilization from :class:`RuntimeTrace`) and an
overlap proof: a ``(reduce task, map task)`` pair from *different* jobs
whose execution intervals intersected, which wave scheduling
structurally forbids.  The cost model's list-scheduled chain makespan
is reported for the same runs.

Writes ``BENCH_dataflow_schedule.json`` at the repo root.  Run
standalone::

    PYTHONPATH=src python benchmarks/bench_dataflow_schedule.py          # full
    PYTHONPATH=src python benchmarks/bench_dataflow_schedule.py --smoke  # CI

Exits nonzero if any arm pair is not byte-identical or the dataflow
trace shows no cross-job overlap at parallelism >= 4.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List

sys.path.insert(0, os.path.dirname(__file__))
from _microbench import measure, write_json  # noqa: E402

from repro.core.translator import translate_sql
from repro.hadoop.config import small_cluster
from repro.hadoop.costmodel import HadoopCostModel
from repro.workloads.queries import paper_queries
from repro.workloads.runner import build_datastore, run_translation

DEFAULT_OUT = os.path.normpath(os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_dataflow_schedule.json"))


def translations(datastore, prefix: str):
    """One translation per paper query (shared by both arms)."""
    out = []
    for name, sql in sorted(paper_queries().items()):
        out.append((name, translate_sql(
            sql, catalog=datastore.catalog, namespace=f"{prefix}.{name}")))
    return out


def run_workload(datastore, trs, scheduler: str, parallelism: int,
                 split_rows):
    """One arm: every query once; returns per-query results + traces."""
    return [(name, run_translation(
        tr, datastore, parallelism=parallelism, split_rows=split_rows,
        keep_trace=True, scheduler=scheduler)) for name, tr in trs]


def profile_of(results) -> Dict[str, float]:
    """Aggregate scheduling profile over every query's trace."""
    makespan = sum(r.trace.makespan_s for _, r in results)
    busy = sum(r.trace.busy_s for _, r in results)
    idle = sum(r.trace.idle_s for _, r in results)
    return {
        "makespan_s": makespan,
        "busy_s": busy,
        "idle_s": idle,
        "utilization": busy / (busy + idle) if busy + idle else 1.0,
    }


def identical(wave_results, flow_results) -> bool:
    for (_, w), (_, f) in zip(wave_results, flow_results):
        if f.rows != w.rows:
            return False
        if ([r.counters.comparable() for r in f.runs]
                != [r.counters.comparable() for r in w.runs]):
            return False
    return True


def overlap_proof(datastore, parallelism: int, prefix: str):
    """The acceptance trace: one-op-one-job Q21 (independent jobs) under
    dataflow — reduce tasks of one job must overlap other jobs' maps."""
    tr = translate_sql(paper_queries()["q21"], mode="one_to_one",
                       catalog=datastore.catalog,
                       namespace=f"{prefix}.proof")
    res = run_translation(tr, datastore, parallelism=parallelism,
                          keep_trace=True, scheduler="dataflow")
    pairs = res.trace.cross_job_overlap()
    summary = res.trace.schedule_summary()
    return {
        "query": "q21 (one-op-one-job)",
        "parallelism": parallelism,
        "cross_job_overlap_pairs": len(pairs),
        "example": list(pairs[0]) if pairs else None,
        "makespan_s": summary["makespan_s"],
        "utilization": summary["utilization"],
        "critical_path_s": summary["critical_path_s"],
    }


def simulated_chains(trs, results) -> Dict[str, Dict[str, float]]:
    """Cost-model list scheduling vs sequential submission per query."""
    model = HadoopCostModel(small_cluster(data_scale=100.0))
    out: Dict[str, Dict[str, float]] = {}
    for (name, tr), (_, res) in zip(trs, results):
        chain = model.chain_makespan(
            res.runs, tr.dependencies(),
            intermediate_inflation=tr.intermediate_inflation)
        out[name] = {
            "makespan_s": chain.makespan_s,
            "sequential_s": chain.sequential_s,
            "overlap_speedup": chain.overlap_speedup,
        }
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny data, one repeat, parallelism 1 and 4; "
                             "exit 1 unless arms are byte-identical and "
                             "the dataflow trace shows cross-job overlap")
    parser.add_argument("--scale", type=float, default=0.002,
                        help="TPC-H scale factor for the workload")
    parser.add_argument("--users", type=int, default=60,
                        help="clickstream users for the workload")
    parser.add_argument("--repeats", type=int, default=3,
                        help="measured replays of each arm")
    parser.add_argument("--parallelism", type=int, nargs="+",
                        default=[1, 4, 8])
    parser.add_argument("--split-rows", default="auto",
                        help="split policy for both arms (int, 'auto', "
                             "or 'none')")
    parser.add_argument("--out", default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    if args.smoke:
        args.scale, args.users = 0.001, 20
        args.repeats = 1
        args.parallelism = [1, 4]
    split_rows = (None if args.split_rows == "none"
                  else args.split_rows if args.split_rows == "auto"
                  else int(args.split_rows))

    datastore = build_datastore(tpch_scale=args.scale,
                                clickstream_users=args.users, seed=7)
    trs = translations(datastore, "benchflow")

    levels: Dict[str, Dict[str, object]] = {}
    all_identical = True
    for p in args.parallelism:
        wave = measure(
            f"wave@p{p}",
            lambda: run_workload(datastore, trs, "wave", p, split_rows),
            repeats=args.repeats)
        flow = measure(
            f"dataflow@p{p}",
            lambda: run_workload(datastore, trs, "dataflow", p, split_rows),
            repeats=args.repeats)
        same = identical(wave.result, flow.result)
        all_identical = all_identical and same
        levels[str(p)] = {
            "wave_s": wave.median_s,
            "dataflow_s": flow.median_s,
            "speedup": (wave.median_s / flow.median_s
                        if flow.median_s else float("inf")),
            "identical": same,
            "wave_profile": profile_of(wave.result),
            "dataflow_profile": profile_of(flow.result),
            "wave": wave.to_dict(),
            "dataflow": flow.to_dict(),
        }
        print(f"parallelism {p}: wave {wave.median_s * 1e3:.1f}ms -> "
              f"dataflow {flow.median_s * 1e3:.1f}ms "
              f"({levels[str(p)]['speedup']:.2f}x) identical={same}")

    proof = overlap_proof(datastore, max(args.parallelism), "benchflow")
    simulated = simulated_chains(trs, measure(
        "sim", lambda: run_workload(datastore, trs, "dataflow", 1,
                                    split_rows), repeats=1).result)

    payload = {
        "benchmark": "dataflow_schedule",
        "config": {"tpch_scale": args.scale,
                   "clickstream_users": args.users, "seed": 7,
                   "repeats": args.repeats,
                   "parallelism": args.parallelism,
                   "split_rows": args.split_rows, "smoke": args.smoke},
        "levels": levels,
        "identical": all_identical,
        "overlap_proof": proof,
        "simulated_chain": simulated,
    }
    write_json(args.out, payload)

    print(f"overlap proof: {proof['cross_job_overlap_pairs']} cross-job "
          f"(reduce, map) interval intersections at parallelism "
          f"{proof['parallelism']}; example={proof['example']}")
    for name, sim in sorted(simulated.items()):
        print(f"   simulated {name:<8} chain {sim['makespan_s']:>8.1f}s "
              f"vs sequential {sim['sequential_s']:>8.1f}s "
              f"({sim['overlap_speedup']:.2f}x)")
    print(f"wrote {args.out}")

    if not all_identical:
        print("FAIL: dataflow arm is not byte-identical to wave",
              file=sys.stderr)
        return 1
    if proof["cross_job_overlap_pairs"] == 0:
        print("FAIL: no cross-job overlap in the dataflow trace",
              file=sys.stderr)
        return 1
    if not args.smoke:
        wins = [p for p in args.parallelism if p >= 4
                and levels[str(p)]["speedup"] > 1.0]
        if not wins:
            print("WARN: no wall-clock win at parallelism >= 4 "
                  "(noisy host?)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
