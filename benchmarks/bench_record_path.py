"""Record-path benchmark: the hot-path kernel overhaul, measured.

Every optimized kernel on the record path is benchmarked against the
**pre-overhaul implementation, copied verbatim from the seed engine**
and monkeypatched back in (``legacy_record_path()``), so before/after
run the same translator output on the same data in the same process:

* **macro** — the full TPC-H/clickstream paper workload end to end in
  three arms — seed kernels (``legacy``), the optimized per-row engine
  (``row``), and the columnar batch plane (``batch``, the default) —
  with the batch engine's per-phase wall-clock breakdown
  (``JobCounters.phase_wall_s``) and a row/counter identity check
  across all three (no overhaul may move a byte);
* **micro** — each kernel in isolation: map emit (merge + partition),
  shuffle key sort (comparator vs sort-key vector), reduce dispatch
  (deepcopy + per-check role sets vs clone + bound dispatch table), and
  map-output byte accounting (per-pair recompute vs batched/cached).

Writes ``BENCH_record_path.json`` at the repo root.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_record_path.py          # full
    PYTHONPATH=src python benchmarks/bench_record_path.py --smoke  # CI

``--smoke`` uses a tiny dataset and one repeat, and exits nonzero
unless the macro workload is identical across all three arms and both
ratios are wins (batch vs legacy > 1.0 and batch vs row > 1.0).
"""

from __future__ import annotations

import argparse
import contextlib
import copy
import functools
import math
import os
import sys
from typing import Dict, List

sys.path.insert(0, os.path.dirname(__file__))
from _microbench import Measurement, measure, speedup, write_json  # noqa: E402

import repro.mr.tasks as mr_tasks
import repro.ops.tasks as ops_tasks
from repro.cmf import CommonReducer
from repro.core.compile import JobCompiler, _getter
from repro.data.table import Table
from repro.core.translator import translate_sql
from repro.mr.job import EmitSpec, MRJob, MapAggSpec, MapInput, OutputSpec
from repro.mr.kv import (ROLE_ID_BYTES, TaggedValue, TagPolicy, key_bytes,
                         pairs_bytes, value_bytes)
from repro.mr.tasks import (InputSplit, JobTaskGraph, MapTaskOutput,
                            ReduceTask, ReduceTaskOutput, TaskCounters,
                            _combine, _compare_keys, _order_key,
                            make_sort_key, stable_hash)
from repro.ops.tasks import AggTask, CompiledStages, SPTask, TaskInput
from repro.plan.nodes import Project, ScanNode
from repro.refexec.executor import compile_resolved
from repro.workloads.queries import paper_queries
from repro.workloads.runner import build_datastore, run_translation

DEFAULT_OUT = os.path.normpath(os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_record_path.json"))


# ---------------------------------------------------------------------------
# The legacy kernels — verbatim copies of the seed engine's record path
# ---------------------------------------------------------------------------

def _legacy_tag_bytes(roles, universe_size, policy=TagPolicy.BEST):
    """Seed ``tag_bytes``: recomputed per pair, no memoization."""
    if universe_size <= 1:
        return 0
    direct = ROLE_ID_BYTES * len(roles)
    inverted = 1 + ROLE_ID_BYTES * (universe_size - len(roles))
    if policy is TagPolicy.DIRECT:
        return direct
    if policy is TagPolicy.INVERTED:
        return inverted
    return min(direct, inverted)


def _legacy_pair_bytes(key, value, universe_size, policy=TagPolicy.BEST):
    return (key_bytes(key) + value_bytes(value.payload)
            + _legacy_tag_bytes(value.roles, universe_size, policy))


def _legacy_map_run(self):
    """Seed ``MapTask.run``: per-record merge dict with set-typed roles,
    per-pair byte accounting, setdefault partitioning."""
    job, specs = self.job, self.map_input.specs
    counters = TaskCounters(self.task_id, "map", job.job_id)
    counters.input_records = len(self.split.rows)

    pairs = []
    for record in self.split.rows:
        counters.eval_ops += len(specs)
        merged = {}
        for spec in specs:
            emitted = spec.emit(record)
            if emitted is None:
                continue
            key, payload = emitted
            entry = merged.get(key)
            if entry is None:
                merged[key] = {"roles": {spec.role}, "payload": payload}
            else:
                entry["roles"].add(spec.role)
                entry["payload"].update(payload)
        for key, entry in merged.items():
            pairs.append((key, TaggedValue(frozenset(entry["roles"]),
                                           entry["payload"])))

    counters.pre_combine_records = len(pairs)
    if job.map_agg is not None:
        pairs = _combine(job.map_agg.agg_specs, pairs)

    counters.output_records = len(pairs)
    universe = job.role_universe
    counters.output_bytes = sum(
        _legacy_pair_bytes(k, v, universe, job.tag_policy) for k, v in pairs)

    if job.sort_output:
        return MapTaskOutput(counters, pairs=pairs)
    buffers = {}
    for key, value in pairs:
        pid = stable_hash(key) % job.num_reducers
        buffers.setdefault(pid, []).append((key, value))
    return MapTaskOutput(counters, partitions=buffers)


def _legacy_reduce_run(self):
    """Seed ``ReduceTask.run``: one ``copy.deepcopy`` of the job's
    reducer per partition."""
    job = self.job
    counters = TaskCounters(self.task_id, "reduce", job.job_id)
    counters.input_records = self.input_records
    counters.groups = len(self.groups)
    reducer = copy.deepcopy(job.reducer)
    buffers = {o.task_id: [] for o in job.outputs}
    for key, values in self.groups:
        results = reducer.reduce(key, values)
        counters.dispatch_ops += reducer.dispatch_ops()
        counters.compute_ops += reducer.compute_ops()
        for task_id, rows in results.items():
            if task_id in buffers and rows:
                buffers[task_id].extend(rows)
    counters.output_records = sum(len(r) for r in buffers.values())
    return ReduceTaskOutput(counters, buffers)


def _legacy_hash_partitions(self, outputs):
    """Seed ``JobTaskGraph._hash_partitions``: setdefault per pair, a
    fresh lambda-built sort key per partition."""
    tasks = []
    pids = sorted({pid for o in outputs for pid in (o.partitions or ())})
    for pid in pids:
        by_key = {}
        for output in outputs:
            for key, value in (output.partitions or {}).get(pid, ()):
                by_key.setdefault(key, []).append(value)
        keys = sorted(by_key,
                      key=lambda k: tuple(_order_key(v) for v in k))
        self.counters.reduce_groups += len(keys)
        tasks.append(ReduceTask(self.job, pid,
                                [(k, by_key[k]) for k in keys]))
    return tasks


def _legacy_range_partitions(self, outputs):
    """Seed ``JobTaskGraph._range_partitions``: comparator sort via
    ``functools.cmp_to_key``."""
    job = self.job
    by_key = {}
    for output in outputs:
        for key, value in output.pairs or ():
            by_key.setdefault(key, []).append(value)
    self.counters.reduce_groups += len(by_key)
    if not by_key:
        return []
    cmp = functools.cmp_to_key(
        lambda a, b: _compare_keys(a, b, job.sort_ascending))
    keys = sorted(by_key, key=cmp)
    chunk = max(1, -(-len(keys) // job.num_reducers))
    return [
        ReduceTask(job, pid,
                   [(k, by_key[k]) for k in keys[i:i + chunk]])
        for pid, i in enumerate(range(0, len(keys), chunk))
    ]


def _legacy_common_reduce(self, key, values):
    """Seed ``CommonReducer.reduce``: builds each task's shuffle-role
    frozenset (and an intersection set) per (value, task) check."""
    for task in self.tasks:
        task.start(key)
    for tv in values:
        for task in self.tasks:
            if tv.roles & frozenset(i.ref for i in task.inputs
                                    if i.kind == "shuffle"):
                task.consume(key, tv.roles, tv.payload)
                self._dispatch += 1
    outputs = {}
    for task in self.tasks:
        before = task.compute_ops
        outputs[task.task_id] = task.finish(key, outputs)
        self._compute += task.compute_ops - before
    return outputs


def _legacy_compute_ops(self):
    """Seed ``CommonReducer.compute_ops``: drains the per-group deltas
    ``_legacy_common_reduce`` accumulates (the live engine reads the
    tasks' own counters instead, which the seed reduce loop does not
    reset — patching both keeps the pair consistent)."""
    ops, self._compute = self._compute, 0
    return ops


def _legacy_stages_run(self, rows):
    """Seed ``CompiledStages.run``: one materialized list per stage."""
    for kind, op in self._ops:
        if kind == "filter":
            rows = [r for r in rows if op(r)]
        else:
            rows = [{name: fn(r) for name, fn in op} for r in rows]
    return rows


def _legacy_stages_run_one(self, row):
    """The seed had no single-row path: emit closures wrapped each
    record in a one-element list and ran the multi-pass chain."""
    rows = _legacy_stages_run(self, [row])
    return rows[0] if rows else None


def _legacy_estimated_bytes(self):
    """Seed ``Table.estimated_bytes``: re-measured on every call (every
    job charging input bytes walked the whole table again)."""
    total = 0
    for row in self.rows:
        for col in self.schema.names:
            total += len(str(row[col])) + 1
    return total


def _legacy_plan_splits(dataset, table, split_rows, batch=False):
    """Seed ``_plan_splits``: copies every table's rows, split or not.

    ``batch`` is a signature-compat shim (the live graph passes it); the
    seed engine had no batch plane, so it is ignored — the legacy arms
    always run with ``data_plane="row"``.
    """
    rows = table.rows
    if split_rows is None or len(rows) <= split_rows:
        return [InputSplit(dataset, 0, 0, list(rows))]
    return [InputSplit(dataset, i, start,
                       list(rows[start:start + split_rows]))
            for i, start in enumerate(range(0, len(rows), split_rows))]


# -- seed emit builders (verbatim) ------------------------------------------
# The emit closures are baked into a translation at compile time, so the
# legacy engine must also TRANSLATE under these patches — otherwise it
# would inherit the optimized dict-free emit fast paths and the
# comparison would flatter the seed.

def _legacy_scan_emit(self, scan, role, key_cols, payload_cols):
    """Seed ``JobCompiler._scan_emit``: per-record qualified dict plus a
    one-row ``stages.run`` round trip for every record."""
    stages = CompiledStages(scan.stages)
    qualified = [(scan.qualified(c), c) for c in scan.columns]
    has_project = any(isinstance(s, Project) for s in scan.stages)
    canonical = self.options.canonical_payload and not has_project

    if canonical:
        payload_names = {q: f"{scan.table}.{q.rsplit('@', 1)[0].split('.', 1)[1]}"
                         for q in payload_cols}
    else:
        payload_names = {q: q for q in payload_cols}
    payload_map = sorted(payload_names.items())
    key_cols = list(key_cols)
    payload_items = sorted(payload_names.items())

    def emit(record):
        row = {q: record[c] for q, c in qualified}
        rows = stages.run([row])
        if not rows:
            return None
        out = rows[0]
        key = tuple(out[c] for c in key_cols)
        return key, {p: out[q] for q, p in payload_items}

    return EmitSpec(role, emit), payload_map


def _legacy_dataset_emit(self, role, key_cols, payload_cols):
    """Seed ``JobCompiler._dataset_emit``."""
    key_cols = list(key_cols)
    payload_cols = sorted(set(payload_cols) - set(key_cols))

    def emit(record):
        key = tuple(record[c] for c in key_cols)
        return key, {c: record[c] for c in payload_cols}

    return EmitSpec(role, emit)


def _legacy_compile_sp(self, draft, node, job_id, name):
    """Seed ``JobCompiler._compile_sp``."""
    needed = [c for c in node.output_names if c in self.needed(node)]
    role = f"{node.label}.in"
    stages = CompiledStages(node.stages)
    qualified = [(node.qualified(c), c) for c in node.columns]
    key_cols = list(needed)

    def emit(record):
        row = {q: record[c] for q, c in qualified}
        rows = stages.run([row])
        if not rows:
            return None
        out = rows[0]
        return tuple(out[c] for c in key_cols), {}

    task = SPTask(node.label, TaskInput.shuffle(role, key_cols))
    outputs = [OutputSpec(ds, n.label, self._output_columns(n))
               for n, ds in self._register_outputs(draft)]
    return MRJob(
        job_id=job_id, name=name,
        map_inputs=[MapInput(node.table, [EmitSpec(role, emit)])],
        reducer=CommonReducer([task]),
        outputs=outputs,
        num_reducers=self.options.num_reducers,
        tag_policy=self.options.tag_policy)


def _legacy_compile_standalone_agg(self, draft, node, job_id, name):
    """Seed ``JobCompiler._compile_standalone_agg``."""
    child = node.child
    role = f"{node.label}.in"
    group_fns = [(gk.slot, compile_resolved(gk.expr))
                 for gk in node.group_keys]
    agg_fns = [(spec, compile_resolved(spec.arg)
                if spec.arg is not None else None)
               for spec in node.aggs]
    key_slots = [slot for slot, _ in group_fns]

    if isinstance(child, ScanNode):
        stages = CompiledStages(child.stages)
        qualified = [(child.qualified(c), c) for c in child.columns]

        def emit(record):
            row = {q: record[c] for q, c in qualified}
            rows = stages.run([row])
            if not rows:
                return None
            out = rows[0]
            key = tuple(fn(out) for _, fn in group_fns)
            payload = {spec.slot: fn(out)
                       for spec, fn in agg_fns if fn is not None}
            return key, payload

        map_inputs = [MapInput(child.table, [EmitSpec(role, emit)])]
    else:
        def emit(record):
            key = tuple(fn(record) for _, fn in group_fns)
            payload = {spec.slot: fn(record)
                       for spec, fn in agg_fns if fn is not None}
            return key, payload

        map_inputs = [MapInput(self.dataset_name(child),
                               [EmitSpec(role, emit)])]

    mergeable = all(
        not spec.distinct or spec.func in ("min", "max")
        for spec in node.aggs)
    map_agg = None
    if self.options.map_side_agg and mergeable:
        map_agg = MapAggSpec({
            spec.slot: (spec.func, spec.distinct, spec.star)
            for spec in node.aggs})

    task = AggTask(
        node.label,
        TaskInput.shuffle(role, key_slots),
        group_exprs=[(slot, _getter(slot)) for slot in key_slots],
        agg_specs=[(spec.slot, spec.func,
                    _getter(spec.slot) if spec.arg is not None else None,
                    spec.distinct, spec.star)
                   for spec in node.aggs],
        partial=map_agg is not None,
        global_agg=node.is_global,
        stages=CompiledStages(node.stages))

    outputs = [OutputSpec(ds, n.label, self._output_columns(n))
               for n, ds in self._register_outputs(draft)]
    return MRJob(
        job_id=job_id, name=name, map_inputs=map_inputs,
        reducer=CommonReducer([task], global_group=node.is_global),
        outputs=outputs, map_agg=map_agg,
        num_reducers=1 if node.is_global else self.options.num_reducers,
        tag_policy=self.options.tag_policy)


@contextlib.contextmanager
def legacy_record_path():
    """Swap the seed kernels back into the live engine, restore on exit."""
    patches = [
        (mr_tasks.MapTask, "run", _legacy_map_run),
        (mr_tasks.ReduceTask, "run", _legacy_reduce_run),
        (mr_tasks.JobTaskGraph, "_hash_partitions", _legacy_hash_partitions),
        (mr_tasks.JobTaskGraph, "_range_partitions", _legacy_range_partitions),
        (mr_tasks, "_plan_splits", _legacy_plan_splits),
        (CommonReducer, "reduce", _legacy_common_reduce),
        (CommonReducer, "compute_ops", _legacy_compute_ops),
        (ops_tasks.CompiledStages, "run", _legacy_stages_run),
        (ops_tasks.CompiledStages, "run_one", _legacy_stages_run_one),
        (Table, "estimated_bytes", _legacy_estimated_bytes),
        (JobCompiler, "_scan_emit", _legacy_scan_emit),
        (JobCompiler, "_dataset_emit", _legacy_dataset_emit),
        (JobCompiler, "_compile_sp", _legacy_compile_sp),
        (JobCompiler, "_compile_standalone_agg",
         _legacy_compile_standalone_agg),
    ]
    saved = [(obj, name, getattr(obj, name)) for obj, name, _ in patches]
    for obj, name, fn in patches:
        setattr(obj, name, fn)
    try:
        yield
    finally:
        for obj, name, fn in saved:
            setattr(obj, name, fn)


# ---------------------------------------------------------------------------
# Macro: the paper workload end to end
# ---------------------------------------------------------------------------

def _phase_totals(runs) -> Dict[str, float]:
    totals: Dict[str, float] = {}
    for run in runs:
        for phase, seconds in run.counters.phase_wall_s.items():
            totals[phase] = totals.get(phase, 0.0) + seconds
    return totals


def _run_signature(measurement) -> tuple:
    """Rows + comparable counters: what byte-identity pins per arm."""
    return (measurement.result.rows,
            [r.counters.comparable() for r in measurement.result.runs])


def macro_benchmark(datastore, repeats: int) -> Dict[str, object]:
    """Three arms per paper query: the seed kernels (``legacy``), the
    optimized per-row engine (``row``), and the columnar batch plane
    (``batch``, the default engine).  All three must agree byte for byte
    on rows and ``comparable()`` counters.

    The headline ``speedup``/``batch_over_row`` figures are the
    geometric mean of the per-query ratios — the macro-average, each
    query weighted equally, as SPEC aggregates workload speedups — so
    the synthetic size mix of the generated tables does not decide the
    weighting.  The wall-clock-total ratios (micro-average, runtime
    weighted) are reported alongside as ``*_wall``."""
    queries: Dict[str, object] = {}
    total_legacy = total_row = total_batch = 0.0
    all_identical = True
    for name, sql in sorted(paper_queries().items()):
        translation = translate_sql(sql, catalog=datastore.catalog,
                                    namespace=f"bench.{name}",
                                    num_reducers=8)

        def run_row(tr=translation):
            return run_translation(tr, datastore, data_plane="row")

        def run_batch(tr=translation):
            return run_translation(tr, datastore, data_plane="batch")

        with legacy_record_path():
            # Translate under the patch too: emit closures are baked in
            # at compile time (same namespace, so datasets/counters are
            # comparable field for field).
            legacy_translation = translate_sql(sql, catalog=datastore.catalog,
                                               namespace=f"bench.{name}",
                                               num_reducers=8)

            def run_legacy(tr=legacy_translation):
                return run_translation(tr, datastore, data_plane="row")

            legacy = measure(f"legacy:{name}", run_legacy, repeats=repeats)
        row = measure(f"row:{name}", run_row, repeats=repeats)
        batch = measure(f"batch:{name}", run_batch, repeats=repeats)

        sig = _run_signature(batch)
        identical = (sig == _run_signature(row)
                     and sig == _run_signature(legacy))
        all_identical = all_identical and identical
        total_legacy += legacy.median_s
        total_row += row.median_s
        total_batch += batch.median_s
        queries[name] = {
            "legacy_s": legacy.median_s,
            "row_s": row.median_s,
            "batch_s": batch.median_s,
            "speedup": speedup(legacy, batch),
            "batch_over_row": speedup(row, batch),
            "identical": identical,
            "jobs": len(batch.result.runs),
            "rows": len(batch.result.rows),
            "batches": sum(r.counters.batches for r in batch.result.runs),
            "phase_wall_s": _phase_totals(batch.result.runs),
        }
    def geomean(key: str) -> float:
        ratios = [entry[key] for entry in queries.values()]
        return math.exp(sum(math.log(r) for r in ratios) / len(ratios))

    return {
        "queries": queries,
        "total_legacy_s": total_legacy,
        "total_row_s": total_row,
        "total_batch_s": total_batch,
        "speedup": geomean("speedup"),
        "batch_over_row": geomean("batch_over_row"),
        "speedup_wall": (total_legacy / total_batch) if total_batch
        else float("inf"),
        "row_speedup_wall": (total_legacy / total_row) if total_row
        else float("inf"),
        "batch_over_row_wall": (total_row / total_batch) if total_batch
        else float("inf"),
        "identical": all_identical,
    }


# ---------------------------------------------------------------------------
# Micro: each kernel in isolation
# ---------------------------------------------------------------------------

def micro_map_emit(datastore, repeats: int) -> Dict[str, object]:
    """The map kernel on a real translated job (q17's lineitem scans
    exercise the multi-spec merge; its orders scan the single-spec fast
    path) — three arms: seed kernel, per-row kernel, batch kernel."""
    translation = translate_sql(paper_queries()["q17"],
                                catalog=datastore.catalog,
                                namespace="bench.micro_map", num_reducers=8)
    # Only the first job scans base tables (later jobs read intermediates
    # that exist only mid-chain); its map tasks are the kernel under test.
    row_tasks = list(JobTaskGraph(translation.jobs[0], datastore,
                                  data_plane="row").map_tasks)
    batch_tasks = list(JobTaskGraph(translation.jobs[0], datastore,
                                    data_plane="batch").map_tasks)

    def run_all(ts):
        return [task.run().counters.output_records for task in ts]

    with legacy_record_path():
        # Emit closures are compiled into the translation, so the legacy
        # arm needs its own translation built under the seed builders.
        legacy_translation = translate_sql(paper_queries()["q17"],
                                           catalog=datastore.catalog,
                                           namespace="bench.micro_map",
                                           num_reducers=8)
        legacy_tasks = list(
            JobTaskGraph(legacy_translation.jobs[0], datastore,
                         data_plane="row").map_tasks)
        legacy = measure("legacy",
                         lambda: run_all(legacy_tasks), repeats=repeats)
    row = measure("row", lambda: run_all(row_tasks), repeats=repeats)
    batch = measure("batch", lambda: run_all(batch_tasks), repeats=repeats)
    assert batch.result == row.result == legacy.result
    return {"legacy": legacy.to_dict(), "row": row.to_dict(),
            "batch": batch.to_dict(),
            "speedup": speedup(legacy, batch),
            "batch_over_row": speedup(row, batch)}


def micro_shuffle_sort(repeats: int, n_keys: int = 20000):
    """Comparator sort vs precomputed sort-key vectors on translator-
    shaped composite keys with NULLs and a mixed-direction ORDER BY."""
    keys = []
    for i in range(n_keys):
        keys.append((None if i % 97 == 0 else i % 1500,
                     f"name#{i % 700:05d}",
                     float(i % 31)))
    ascending = [False, True, False]

    def legacy_sort():
        cmp = functools.cmp_to_key(
            lambda a, b: _compare_keys(a, b, ascending))
        return sorted(keys, key=cmp)

    def optimized_sort():
        return sorted(keys, key=make_sort_key(ascending))

    legacy = measure("legacy", legacy_sort, repeats=repeats,
                     meta={"keys": len(keys)})
    optimized = measure("optimized", optimized_sort, repeats=repeats,
                        meta={"keys": len(keys)})
    assert optimized.result == legacy.result
    return legacy, optimized


def micro_reduce_dispatch(repeats: int, n_groups: int = 1500):
    """Per-partition reducer instantiation + per-value dispatch: deepcopy
    and rebuilt role sets (seed) vs clone and the bound dispatch table."""
    prototype = CommonReducer([
        SPTask("a", TaskInput.shuffle("ra", ["k"])),
        SPTask("b", TaskInput.shuffle("rb", ["k"])),
        SPTask("c", TaskInput.shuffle("rc", ["k"])),
    ])
    groups = []
    for i in range(n_groups):
        values = [TaggedValue(frozenset([role]), {"v": i + j})
                  for j, role in enumerate(("ra", "rb", "rc", "ra"))]
        groups.append(((i,), values))

    def legacy_partition():
        reducer = copy.deepcopy(prototype)
        total = 0
        for key, values in groups:
            out = _legacy_common_reduce(reducer, key, values)
            total += sum(len(rows) for rows in out.values())
        return total, reducer.dispatch_ops()

    def optimized_partition():
        reducer = prototype.clone()
        total = 0
        for key, values in groups:
            out = reducer.reduce(key, values)
            total += sum(len(rows) for rows in out.values())
        return total, reducer.dispatch_ops()

    legacy = measure("legacy", legacy_partition, repeats=repeats,
                     meta={"groups": n_groups})
    optimized = measure("optimized", optimized_partition, repeats=repeats,
                        meta={"groups": n_groups})
    assert optimized.result == legacy.result
    return legacy, optimized


def micro_byte_accounting(repeats: int, n_pairs: int = 30000):
    """Map-output byte estimate: per-pair tag recompute vs the batched
    accumulator with per-task tag memoization."""
    roles = [frozenset(["r1"]), frozenset(["r2"]), frozenset(["r1", "r2"]),
             frozenset(["r1", "r2", "r3"])]
    pairs = [((i % 2000, f"k{i % 300}"),
              TaggedValue(roles[i % len(roles)],
                          {"a": i, "b": f"text{i % 50}"}))
             for i in range(n_pairs)]

    def legacy_bytes():
        return sum(_legacy_pair_bytes(k, v, 3) for k, v in pairs)

    def optimized_bytes():
        return pairs_bytes(pairs, 3)

    legacy = measure("legacy", legacy_bytes, repeats=repeats,
                     meta={"pairs": n_pairs})
    optimized = measure("optimized", optimized_bytes, repeats=repeats,
                        meta={"pairs": n_pairs})
    assert optimized.result == legacy.result
    return legacy, optimized


def _micro_entry(pair) -> Dict[str, object]:
    legacy, optimized = pair
    return {"legacy": legacy.to_dict(), "optimized": optimized.to_dict(),
            "speedup": speedup(legacy, optimized)}


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny data, one repeat; exit 1 unless the "
                             "macro workload is identical and faster")
    parser.add_argument("--scale", type=float, default=0.004,
                        help="TPC-H scale factor for the macro workload")
    parser.add_argument("--users", type=int, default=120,
                        help="clickstream users for the macro workload")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    if args.smoke:
        args.scale, args.users, args.repeats = 0.001, 20, 1

    datastore = build_datastore(tpch_scale=args.scale,
                                clickstream_users=args.users, seed=7)

    macro = macro_benchmark(datastore, args.repeats)
    micro = {
        "map_emit": micro_map_emit(datastore, args.repeats),
        "shuffle_sort": _micro_entry(micro_shuffle_sort(args.repeats)),
        "reduce_dispatch": _micro_entry(
            micro_reduce_dispatch(args.repeats)),
        "byte_accounting": _micro_entry(
            micro_byte_accounting(args.repeats)),
    }

    payload = {
        "benchmark": "record_path",
        "config": {"tpch_scale": args.scale, "clickstream_users": args.users,
                   "seed": 7, "repeats": args.repeats, "smoke": args.smoke},
        "macro": macro,
        "micro": micro,
    }
    write_json(args.out, payload)

    print(f"macro: legacy {macro['total_legacy_s'] * 1e3:.1f}ms -> "
          f"row {macro['total_row_s'] * 1e3:.1f}ms -> "
          f"batch {macro['total_batch_s'] * 1e3:.1f}ms "
          f"(geomean {macro['speedup']:.2f}x vs legacy, "
          f"{macro['batch_over_row']:.2f}x vs row; "
          f"wall {macro['speedup_wall']:.2f}x / "
          f"{macro['batch_over_row_wall']:.2f}x), "
          f"identical={macro['identical']}")
    for name, entry in sorted(macro["queries"].items()):
        phases = entry["phase_wall_s"]
        breakdown = " ".join(f"{p}={phases.get(p, 0.0) * 1e3:.1f}ms"
                             for p in ("map", "shuffle", "reduce",
                                       "finalize"))
        print(f"   {name:<12} {entry['legacy_s'] * 1e3:>8.1f}ms -> "
              f"{entry['row_s'] * 1e3:>7.1f}ms -> "
              f"{entry['batch_s'] * 1e3:>7.1f}ms "
              f"({entry['batch_over_row']:>5.2f}x vs row)  [{breakdown}]")
    for name, entry in micro.items():
        extra = (f" ({entry['batch_over_row']:.2f}x vs row)"
                 if "batch_over_row" in entry else "")
        print(f"micro {name:<16} {entry['speedup']:.2f}x{extra}")
    print(f"wrote {args.out}")

    if not macro["identical"]:
        print("FAIL: legacy, row, and batch engines disagree",
              file=sys.stderr)
        return 1
    if args.smoke and macro["speedup"] <= 1.0:
        print(f"FAIL: smoke speedup {macro['speedup']:.2f}x <= 1.0",
              file=sys.stderr)
        return 1
    if args.smoke and macro["batch_over_row"] <= 1.0:
        print(f"FAIL: smoke batch_over_row "
              f"{macro['batch_over_row']:.2f}x <= 1.0", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
