"""Micro-benchmark for the shuffle-partitioning hot path.

``stable_hash`` runs once per map-output pair, and shuffle keys repeat
heavily (one entry per record, a few thousand distinct keys).  The
optimized implementation keeps the historical ``repr(tuple)`` byte
format (canonicalizing numeric spellings first, so equal keys always
hash identically) and memoizes the crc32 behind an LRU cache, so a
repeated key costs a dict hit.

This module benchmarks the shipped implementation against the
historical uncached one on a realistic repeated-key distribution and
prints the ratio.  No hard speedup assertion (machine-dependent);
correctness — determinism, NULL handling — is asserted here and in
``tests/test_runtime.py``.

Runs under pytest-benchmark (``pytest benchmarks/ --benchmark-only``)
or standalone on the shared :mod:`benchmarks._microbench` harness::

    PYTHONPATH=src python benchmarks/bench_stable_hash.py
"""

import os
import sys
import zlib

sys.path.insert(0, os.path.dirname(__file__))
from _microbench import measure, speedup, write_json  # noqa: E402

from repro.mr import stable_hash


def _legacy_stable_hash(key):
    """The pre-optimization implementation: repr the whole tuple."""
    return zlib.crc32(repr(key).encode("utf-8"))


def _workload():
    """~60k lookups over ~3k distinct keys, mixing the key shapes the
    translator emits: int singletons, (int, str) join keys, and
    composite keys with NULLs."""
    keys = []
    for i in range(1000):
        keys.append((i,))
        keys.append((i % 500, f"supplier#{i % 250:05d}"))
        keys.append((None if i % 97 == 0 else i % 400, i % 7, "URGENT"))
    return keys * 20


KEYS = _workload()


def _hash_all(fn):
    total = 0
    for key in KEYS:
        total ^= fn(key)
    return total


def test_stable_hash_optimized(benchmark):
    stable_hash.cache_clear()
    checksum = benchmark(_hash_all, stable_hash)
    benchmark.extra_info["keys"] = len(KEYS)
    benchmark.extra_info["checksum"] = checksum


def test_stable_hash_legacy_baseline(benchmark):
    checksum = benchmark(_hash_all, _legacy_stable_hash)
    benchmark.extra_info["keys"] = len(KEYS)
    benchmark.extra_info["checksum"] = checksum


def test_cached_hash_is_deterministic():
    stable_hash.cache_clear()
    cold = [stable_hash(k) for k in KEYS[:3000]]
    warm = [stable_hash(k) for k in KEYS[:3000]]
    assert cold == warm
    stable_hash.cache_clear()
    assert [stable_hash(k) for k in KEYS[:3000]] == cold


def main(argv=None) -> int:
    """Standalone run on the shared micro-benchmark harness."""
    repeats = 5

    def run_optimized():
        stable_hash.cache_clear()
        return _hash_all(stable_hash)

    legacy = measure("legacy", lambda: _hash_all(_legacy_stable_hash),
                     repeats=repeats, meta={"keys": len(KEYS)})
    optimized = measure("optimized", run_optimized,
                        repeats=repeats, meta={"keys": len(KEYS)})
    assert optimized.result == legacy.result, "hash checksums diverged"
    ratio = speedup(legacy, optimized)
    print(f"stable_hash: legacy {legacy.median_s * 1e3:.1f}ms -> "
          f"optimized {optimized.median_s * 1e3:.1f}ms ({ratio:.2f}x)")
    out = os.path.normpath(os.path.join(
        os.path.dirname(__file__), os.pardir, "BENCH_stable_hash.json"))
    write_json(out, {"legacy": legacy.to_dict(),
                     "optimized": optimized.to_dict(),
                     "speedup": ratio})
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
