"""Micro-benchmark for the shuffle-partitioning hot path.

``stable_hash`` runs once per map-output pair, and shuffle keys repeat
heavily (one entry per record, a few thousand distinct keys).  The
optimized implementation keeps the historical ``repr(tuple)`` byte
format (canonicalizing numeric spellings first, so equal keys always
hash identically) and memoizes the crc32 behind an LRU cache, so a
repeated key costs a dict hit.

This module benchmarks the shipped implementation against the
historical uncached one on a realistic repeated-key distribution and
prints the ratio.  No hard speedup assertion (machine-dependent);
correctness — determinism, NULL handling — is asserted here and in
``tests/test_runtime.py``.
"""

import zlib

from repro.mr import stable_hash


def _legacy_stable_hash(key):
    """The pre-optimization implementation: repr the whole tuple."""
    return zlib.crc32(repr(key).encode("utf-8"))


def _workload():
    """~60k lookups over ~3k distinct keys, mixing the key shapes the
    translator emits: int singletons, (int, str) join keys, and
    composite keys with NULLs."""
    keys = []
    for i in range(1000):
        keys.append((i,))
        keys.append((i % 500, f"supplier#{i % 250:05d}"))
        keys.append((None if i % 97 == 0 else i % 400, i % 7, "URGENT"))
    return keys * 20


KEYS = _workload()


def _hash_all(fn):
    total = 0
    for key in KEYS:
        total ^= fn(key)
    return total


def test_stable_hash_optimized(benchmark):
    stable_hash.cache_clear()
    checksum = benchmark(_hash_all, stable_hash)
    benchmark.extra_info["keys"] = len(KEYS)
    benchmark.extra_info["checksum"] = checksum


def test_stable_hash_legacy_baseline(benchmark):
    checksum = benchmark(_hash_all, _legacy_stable_hash)
    benchmark.extra_info["keys"] = len(KEYS)
    benchmark.extra_info["checksum"] = checksum


def test_cached_hash_is_deterministic():
    stable_hash.cache_clear()
    cold = [stable_hash(k) for k in KEYS[:3000]]
    warm = [stable_hash(k) for k in KEYS[:3000]]
    assert cold == warm
    stable_hash.cache_clear()
    assert [stable_hash(k) for k in KEYS[:3000]] == cold
