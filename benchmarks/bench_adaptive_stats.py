"""Adaptive-statistics benchmark: static translation vs stats-driven.

Races two arms over the same Zipf-skewed clickstream-style workload:

* ``static``   -- ``stats="off"``: the paper's fixed translation rules
  (hash partitioning, always-on combiners, row-count split sizing).
* ``adaptive`` -- a shared :class:`repro.stats.StatsContext` with the
  engagement gates lowered so every decision point can fire: skew-aware
  reduce partition plans, cost-based combiner/merge choices, and
  cardinality-driven split sizing.

The fact table's key column follows a Zipf-like head: a few hot users
own most of the events, and the two hottest keys share a hash bucket —
the pathology hash partitioning cannot avoid and the one the stats
layer's :class:`~repro.stats.SkewPartitionPlan` exists to fix.  The
headline number is **simulated** (cost-model) time on the paper's
2-node cluster projected to ``--target-gb`` of data, because the
optimization targets modeled cluster cost, not in-process wall clock.

Identity is asserted, not assumed: both arms must produce
multiset-identical rows, the adaptive arm must match the reference
executor, and within the adaptive arm rows and ``comparable()``
counters must be byte-identical across the serial and threaded
executors, both schedulers, and a process-pool run of a hand-built
picklable job carrying the same partition plan.  The script exits
nonzero on any identity violation or if the macro simulated speedup
falls below ``--min-speedup`` (default 1.15x).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_adaptive_stats.py [--smoke]
"""

from __future__ import annotations

import argparse
import os
import random
import sys

sys.path.insert(0, os.path.dirname(__file__))
from _microbench import measure, write_json  # noqa: E402

from repro.catalog import Catalog, Schema  # noqa: E402
from repro.catalog.types import ColumnType as T  # noqa: E402
from repro.cmf import CommonReducer  # noqa: E402
from repro.data import Datastore, Table  # noqa: E402
from repro.data.table import rows_equal_unordered  # noqa: E402
from repro.hadoop import HadoopCostModel, small_cluster  # noqa: E402
from repro.mr import (EmitSpec, MapInput, MRJob, OutputSpec,  # noqa: E402
                      Runtime, make_executor)
from repro.mr.tasks import stable_hash  # noqa: E402
from repro.ops import SPTask, TaskInput  # noqa: E402
from repro.plan.planner import plan_query  # noqa: E402
from repro.refexec import run_reference  # noqa: E402
from repro.sqlparser.parser import parse_sql  # noqa: E402
from repro.stats import StatsContext, StatsPolicy  # noqa: E402
from repro.workloads.runner import data_scale_for, run_query  # noqa: E402

DEFAULT_OUT = os.path.normpath(os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_adaptive_stats.json"))

NUM_REDUCERS = 8

#: The three query shapes, one per stats decision point: a reduce-side
#: join (skew partition plan), a join + aggregate chain (cost-based
#: merges on top of the skewed shuffle), and a group-by on a
#: near-unique key (combiner off + cardinality split sizing).
QUERIES = {
    "skew_join":
        "SELECT e.uid, e.amount, u.name FROM events AS e, users AS u "
        "WHERE e.uid = u.uid",
    "join_agg":
        "SELECT e.uid, count(*) AS n, sum(e.amount) AS s "
        "FROM events AS e, users AS u WHERE e.uid = u.uid "
        "GROUP BY e.uid",
    "unique_agg":
        "SELECT e.eid, sum(e.amount) AS s FROM events AS e "
        "GROUP BY e.eid",
}


# ---------------------------------------------------------------------------
# Workload
# ---------------------------------------------------------------------------

def _colliding_uids(num_users: int, num_reducers: int):
    """The two smallest uids whose static hash partitions collide.

    Zipf heads regularly land two hot keys in one hash bucket (with 3
    hot keys over 8 buckets the collision odds are ~1 in 3); picking the
    colliding pair deterministically makes the benchmark reproduce that
    pathology on every run instead of every third seed.
    """
    by_bucket = {}
    for uid in range(num_users):
        bucket = stable_hash((uid,)) % num_reducers
        if bucket in by_bucket:
            return by_bucket[bucket], uid
        by_bucket[bucket] = uid
    raise AssertionError("no hash collision in uid range")


def build_workload(num_users: int, num_events: int, seed: int) -> Datastore:
    """Events with a Zipf-like uid head over a small users dimension.

    The two hottest uids (28% and 18% of events) share a static hash
    bucket; a third hot uid (10%) sits alone; the tail spreads the rest
    uniformly.  ``eid`` is unique per event (the combiner-off case).
    """
    hot_a, hot_b = _colliding_uids(num_users, NUM_REDUCERS)
    hot_c = next(u for u in range(num_users)
                 if u not in (hot_a, hot_b)
                 and stable_hash((u,)) % NUM_REDUCERS
                 != stable_hash((hot_a,)) % NUM_REDUCERS)
    rng = random.Random(seed)
    tail = [u for u in range(num_users)]
    rows = []
    for eid in range(num_events):
        r = rng.random()
        if r < 0.28:
            uid = hot_a
        elif r < 0.46:
            uid = hot_b
        elif r < 0.56:
            uid = hot_c
        else:
            uid = rng.choice(tail)
        rows.append({"eid": eid, "uid": uid,
                     "amount": rng.randrange(1, 500)})

    ds = Datastore(Catalog())
    ds.load_table(Table("events", Schema.of(
        ("eid", T.INT), ("uid", T.INT), ("amount", T.INT)), rows))
    ds.load_table(Table("users", Schema.of(
        ("uid", T.INT), ("name", T.STRING)),
        [{"uid": u, "name": f"user{u}"} for u in range(num_users)]))
    return ds


def adaptive_context() -> StatsContext:
    """Gates lowered so the in-memory workload engages every decision."""
    return StatsContext(policy=StatsPolicy(min_rows=1, heavy_factor=1.2))


# ---------------------------------------------------------------------------
# Arms
# ---------------------------------------------------------------------------

def run_arm(ds: Datastore, cluster, stats, namespace: str,
            parallelism: int = 1, scheduler: str = "dataflow"):
    """One pass over all queries; returns {name: QueryRunResult}."""
    return {
        name: run_query(sql, ds, cluster=cluster, stats=stats,
                        namespace=f"{namespace}_{name}",
                        num_reducers=NUM_REDUCERS, split_rows="auto",
                        parallelism=parallelism, scheduler=scheduler)
        for name, sql in QUERIES.items()
    }


def canon(rows):
    return sorted(repr(tuple(sorted(r.items()))) for r in rows)


def load_ratio(results) -> dict:
    """max/mean reduce-task load over every reduce job of every query."""
    worst, records = 1.0, 0
    for res in results.values():
        for run in res.runs:
            loads = run.counters.reduce_task_records
            if not loads or sum(loads) == 0:
                continue
            ratio = max(loads) / (sum(loads) / len(loads))
            if ratio > worst:
                worst, records = ratio, max(loads)
    return {"max_over_mean": worst, "max_task_records": records}


def check_identity(ds: Datastore, static, adaptive) -> list:
    """Cross-arm and cross-executor identity; returns failure strings."""
    failures = []
    for name, sql in QUERIES.items():
        if canon(static[name].rows) != canon(adaptive[name].rows):
            failures.append(f"{name}: adaptive rows differ from static")
        ref = run_reference(plan_query(parse_sql(sql), ds.catalog), ds)
        if not rows_equal_unordered(adaptive[name].rows, ref.rows,
                                    adaptive[name].columns):
            failures.append(f"{name}: adaptive rows differ from refexec")

    # Within-arm determinism: a threaded run on the wave scheduler must
    # reproduce the serial dataflow run bit for bit (rows AND counters) —
    # same namespace, so job identities line up in ``comparable()``.
    threaded = run_arm(ds, None, adaptive_context(), "bench_adaptive",
                       parallelism=4, scheduler="wave")
    for name in QUERIES:
        if [r.counters.comparable() for r in threaded[name].runs] != \
                [r.counters.comparable() for r in adaptive[name].runs]:
            failures.append(f"{name}: counters differ threaded vs serial")
        if canon(threaded[name].rows) != canon(adaptive[name].rows):
            failures.append(f"{name}: rows differ threaded vs serial")
    return failures


# ---------------------------------------------------------------------------
# Process-pool leg (hand-built picklable job; translator jobs carry
# closures and stay on threads)
# ---------------------------------------------------------------------------

def _emit_uid(record):
    return (record["uid"],), {"uid": record["uid"],
                              "amount": record["amount"]}


def _picklable_job(plan) -> MRJob:
    task = SPTask("sp", TaskInput.shuffle("in", ["uid", "amount"]))
    job = MRJob(
        job_id="bench_skew", name="bench_skew",
        map_inputs=[MapInput("events", [EmitSpec("in", _emit_uid)])],
        reducer=CommonReducer([task]),
        outputs=[OutputSpec("bench.skew_out", "sp", ["uid", "amount"])],
        num_reducers=NUM_REDUCERS)
    job.partitioner = plan
    return job


def check_process_pool(ds: Datastore, adaptive) -> list:
    """The very plan the optimizer attached to the translated join,
    re-used on a hand-built picklable job across a process pool: the
    per-partition loads and rows must match the serial run exactly
    (plans are pure functions of table contents, never of the
    executor)."""
    plans = [j.partitioner for j in adaptive["skew_join"].translation.jobs
             if getattr(j, "partitioner", None) is not None]
    if not plans:
        return ["skew_join: no partition plan attached"]
    plan = plans[0]

    serial = Runtime(ds).run_jobs([_picklable_job(plan)])[0]
    rows_serial = canon(ds.intermediate("bench.skew_out").rows)
    procs = Runtime(ds, executor=make_executor(2, kind="process"))
    process = procs.run_jobs([_picklable_job(plan)])[0]
    rows_process = canon(ds.intermediate("bench.skew_out").rows)

    failures = []
    if process.counters.reduce_task_records != \
            serial.counters.reduce_task_records:
        failures.append("process pool: reduce loads differ from serial")
    if rows_process != rows_serial:
        failures.append("process pool: rows differ from serial")
    return failures


# ---------------------------------------------------------------------------
# Main
# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny data, one repeat; same identity and "
                             "speedup gates")
    parser.add_argument("--users", type=int, default=64)
    parser.add_argument("--events", type=int, default=40_000)
    parser.add_argument("--target-gb", type=float, default=10.0,
                        help="modeled data volume for the cost model")
    parser.add_argument("--repeats", type=int, default=3,
                        help="measured replays of each arm (wall clock)")
    parser.add_argument("--min-speedup", type=float, default=1.15)
    parser.add_argument("--out", default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    if args.smoke:
        args.users, args.events, args.repeats = 64, 6_000, 1

    ds = build_workload(args.users, args.events, seed=7)
    scale = data_scale_for(ds, ["events", "users"], args.target_gb)
    cluster = small_cluster(data_scale=scale)

    static_m = measure(
        "static", lambda: run_arm(ds, cluster, "off", "bench_static"),
        repeats=args.repeats)
    adaptive_m = measure(
        "adaptive",
        lambda: run_arm(ds, cluster, adaptive_context(), "bench_adaptive"),
        repeats=args.repeats)
    static, adaptive = static_m.result, adaptive_m.result

    failures = check_identity(ds, static, adaptive)
    failures += check_process_pool(ds, adaptive)

    queries = {}
    for name in QUERIES:
        s, a = static[name], adaptive[name]
        queries[name] = {
            "static_simulated_s": s.total_s,
            "adaptive_simulated_s": a.total_s,
            "speedup": s.total_s / a.total_s,
            "static_load": load_ratio({name: s}),
            "adaptive_load": load_ratio({name: a}),
            "decisions_changed": len(a.stats.log.changed()),
        }
    static_sim = sum(r.total_s for r in static.values())
    adaptive_sim = sum(r.total_s for r in adaptive.values())
    macro_speedup = static_sim / adaptive_sim

    macro = {
        "static_simulated_s": static_sim,
        "adaptive_simulated_s": adaptive_sim,
        "speedup": macro_speedup,
        "static_load": load_ratio(static),
        "adaptive_load": load_ratio(adaptive),
        "identical": not failures,
        "queries": queries,
        "static_wall": static_m.to_dict(),
        "adaptive_wall": adaptive_m.to_dict(),
    }
    payload = {
        "benchmark": "adaptive_stats",
        "config": {"users": args.users, "events": args.events,
                   "target_gb": args.target_gb, "seed": 7,
                   "num_reducers": NUM_REDUCERS,
                   "repeats": args.repeats, "smoke": args.smoke},
        "macro": macro,
    }
    write_json(args.out, payload)

    print(f"macro: static {static_sim:.1f}s -> adaptive "
          f"{adaptive_sim:.1f}s simulated ({macro_speedup:.2f}x), "
          f"identical={not failures}")
    for name, entry in queries.items():
        print(f"   {name:<12} {entry['static_simulated_s']:>8.1f}s -> "
              f"{entry['adaptive_simulated_s']:>7.1f}s "
              f"({entry['speedup']:>5.2f}x)  reduce max/mean "
              f"{entry['static_load']['max_over_mean']:.2f} -> "
              f"{entry['adaptive_load']['max_over_mean']:.2f}  "
              f"decisions*={entry['decisions_changed']}")
    print(f"wrote {args.out}")

    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    if failures:
        return 1
    if macro_speedup < args.min_speedup:
        print(f"FAIL: macro speedup {macro_speedup:.3f}x below "
              f"{args.min_speedup}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
