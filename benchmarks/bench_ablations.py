"""Ablations of YSmart's design choices (DESIGN.md experiment index).

Each ablation disables one mechanism and measures what the paper's design
buys:

* **PK heuristic** — replacing the max-connections rule with "always the
  full grouping set" destroys the JFC chain of Q-CSA (2 jobs -> 6);
* **visibility-tag inversion** — the paper's Sec. VI-A inverse encoding
  vs naive direct tags on the merged Q-CSA job's highly-overlapped map
  output;
* **canonical payload sharing** — the common pair carrying each base
  column once vs per-role copies (merged Q21 job);
* **map-side aggregation** — Hive's footnote-2 optimization on Q-AGG
  (this is exactly the Hive-vs-Pig gap);
* **concurrent job execution** — a post-paper what-if: overlapping
  independent jobs (Hive's later ``hive.exec.parallel``) helps the long
  Hive chains some, but YSmart still wins because the redundant scans
  and materializations still run.

All ablated translations are also checked for *correctness*: disabling an
optimization may cost time but never changes results.
"""

import pytest

from benchmarks.conftest import attach
from repro.bench import ExperimentResult
from repro.core.compile import CompileOptions, JobCompiler
from repro.core.jobgen import generate_job_graph
from repro.core.translator import translate_sql
from repro.data import rows_equal_unordered
from repro.mr.engine import run_jobs
from repro.mr.kv import TagPolicy
from repro.plan.planner import plan_query
from repro.refexec import run_reference
from repro.sqlparser.parser import parse_sql
from repro.workloads.queries import paper_queries


def _compile_and_run(workload, sql, namespace, options,
                     agg_pk_heuristic="max_connections"):
    ds = workload.datastore
    plan = plan_query(parse_sql(sql), ds.catalog)
    graph = generate_job_graph(plan, agg_pk_heuristic=agg_pk_heuristic)
    compiler = JobCompiler(graph, namespace, options)
    jobs = compiler.compile()
    runs = run_jobs(jobs, ds)
    final = compiler.dataset_name(graph.root)
    return graph, runs, ds.intermediate(final).rows, plan.output_names


def run_ablations(workload):
    result = ExperimentResult(
        "ablations", "Design-choice ablations on the paper's queries",
        ["ablation", "variant", "metric", "value"])
    ds = workload.datastore

    # --- PK selection heuristic (Q-CSA job count) --------------------------
    sql = paper_queries()["q_csa"]
    ref = run_reference(plan_query(parse_sql(sql), ds.catalog), ds)
    for variant in ("max_connections", "full_group"):
        graph, runs, rows, cols = _compile_and_run(
            workload, sql, f"abl.pk.{variant}", CompileOptions(),
            agg_pk_heuristic=variant)
        assert rows_equal_unordered(rows, ref.rows, cols, 1e-6)
        result.rows.append({"ablation": "agg-pk-heuristic",
                            "variant": variant, "metric": "jobs",
                            "value": graph.job_count()})

    # --- tag encoding (merged Q-CSA job map-output bytes) -------------------
    for policy in (TagPolicy.BEST, TagPolicy.DIRECT):
        _, runs, rows, cols = _compile_and_run(
            workload, sql, f"abl.tag.{policy.value}",
            CompileOptions(tag_policy=policy))
        assert rows_equal_unordered(rows, ref.rows, cols, 1e-6)
        result.rows.append({
            "ablation": "tag-encoding", "variant": policy.value,
            "metric": "map_output_bytes",
            "value": runs[0].counters.map_output_bytes})

    # --- canonical payload sharing (merged Q21 job) --------------------------
    sql21 = paper_queries()["q21_subtree"]
    ref21 = run_reference(plan_query(parse_sql(sql21), ds.catalog), ds)
    for canonical in (True, False):
        _, runs, rows, cols = _compile_and_run(
            workload, sql21, f"abl.payload.{canonical}",
            CompileOptions(canonical_payload=canonical))
        assert rows_equal_unordered(rows, ref21.rows, cols, 1e-6)
        result.rows.append({
            "ablation": "payload-sharing",
            "variant": "shared" if canonical else "per-role",
            "metric": "map_output_bytes",
            "value": runs[0].counters.map_output_bytes})

    # --- DAG (concurrent) job execution what-if on Q17 ------------------------
    from repro.hadoop import HadoopCostModel, dag_query_timing, small_cluster
    from repro.mr.engine import run_jobs as run_mr_jobs
    model = HadoopCostModel(small_cluster(
        data_scale=workload.tpch_scale_10gb))
    sql17 = paper_queries()["q17"]
    for mode in ("hive", "ysmart"):
        tr = translate_sql(sql17, mode=mode, catalog=ds.catalog,
                           namespace=f"abl.dag.{mode}")
        mr_runs = run_mr_jobs(tr.jobs, ds)
        seq = model.query_timing(
            mr_runs,
            intermediate_inflation=tr.intermediate_inflation).total_s
        dag = dag_query_timing(
            model, mr_runs, tr.jobs,
            intermediate_inflation=tr.intermediate_inflation)
        result.rows.append({"ablation": "concurrent-jobs",
                            "variant": f"{mode}-sequential",
                            "metric": "time_s", "value": round(seq)})
        result.rows.append({"ablation": "concurrent-jobs",
                            "variant": f"{mode}-dag",
                            "metric": "time_s",
                            "value": round(dag.total_s)})

    # --- map-side aggregation (Q-AGG shuffle volume) --------------------------
    sql_agg = paper_queries()["q_agg"]
    ref_agg = run_reference(plan_query(parse_sql(sql_agg), ds.catalog), ds)
    for map_agg in (True, False):
        _, runs, rows, cols = _compile_and_run(
            workload, sql_agg, f"abl.combiner.{map_agg}",
            CompileOptions(map_side_agg=map_agg))
        assert rows_equal_unordered(rows, ref_agg.rows, cols, 1e-6)
        result.rows.append({
            "ablation": "map-side-agg",
            "variant": "on" if map_agg else "off",
            "metric": "map_output_records",
            "value": runs[0].counters.map_output_records})

    return result


def test_ablations(benchmark, workload):
    result = benchmark.pedantic(
        run_ablations, args=(workload,), rounds=1, iterations=1)
    attach(benchmark, result)

    def val(**f):
        return result.value("value", **f)

    # The heuristic is what makes Q-CSA collapse to two jobs.
    assert val(ablation="agg-pk-heuristic", variant="max_connections") == 2
    assert val(ablation="agg-pk-heuristic", variant="full_group") == 6
    # Inverted tags never lose to direct tags on merged jobs.
    assert val(ablation="tag-encoding", variant="best") <= \
        val(ablation="tag-encoding", variant="direct")
    # Payload sharing strictly shrinks the merged job's map output.
    assert val(ablation="payload-sharing", variant="shared") < \
        val(ablation="payload-sharing", variant="per-role")
    # The combiner collapses Q-AGG's shuffle to one pair per category.
    assert val(ablation="map-side-agg", variant="on") < \
        val(ablation="map-side-agg", variant="off")
    # Concurrent execution helps Hive's chain but never flips the winner.
    assert val(ablation="concurrent-jobs", variant="hive-dag") < \
        val(ablation="concurrent-jobs", variant="hive-sequential")
    assert val(ablation="concurrent-jobs", variant="ysmart-dag") < \
        val(ablation="concurrent-jobs", variant="hive-dag")
