"""Batch translation: one job serving several reports.

A nightly reporting pipeline often runs many queries over the same fact
table.  ``translate_batch`` extends YSmart's Rule 1 *across* queries:
reports that partition the fact table identically share one scan and one
shuffle — here the whole Q21 "waiting suppliers" sub-tree plus two
per-order reports collapse into a single MapReduce job.

Run: python examples/batch_reports.py
"""

from repro import build_datastore, run_batch, small_cluster, translate_batch
from repro.hadoop import HadoopCostModel
from repro.workloads import data_scale_for
from repro.workloads.queries import Q21_SUBTREE_SQL

REPORTS = {
    "waiting_suppliers": Q21_SUBTREE_SQL,
    "order_sizes": """
        SELECT l_orderkey, count(*) AS lines, sum(l_quantity) AS qty
        FROM lineitem GROUP BY l_orderkey
    """,
    "late_lines_per_order": """
        SELECT l_orderkey, count(*) AS late_lines
        FROM lineitem WHERE l_receiptdate > l_commitdate
        GROUP BY l_orderkey
    """,
}

TPCH_TABLES = ["lineitem", "orders", "part", "customer", "supplier", "nation"]


def main():
    ds = build_datastore(tpch_scale=0.002, clickstream_users=None)
    scale = data_scale_for(ds, TPCH_TABLES, 10.0)
    model = HadoopCostModel(small_cluster(data_scale=scale))

    print(f"{'mode':<22} {'jobs':>4} {'lineitem scans':>15} {'time@10GB':>10}")
    for share in (False, True):
        tr = translate_batch(REPORTS, catalog=ds.catalog,
                             namespace=f"reports.{share}",
                             share_across_queries=share)
        res = run_batch(tr, ds)
        li = ds.table("lineitem").estimated_bytes()
        scans = sum(r.counters.input_bytes.get("lineitem", 0)
                    for r in res.runs) / li
        total = model.query_timing(res.runs).total_s
        mode = "batch (shared)" if share else "one query at a time"
        print(f"{mode:<22} {tr.job_count:>4} {scans:>15.1f} {total:>9.0f}s")

    tr = translate_batch(REPORTS, catalog=ds.catalog, namespace="reports.show")
    print("\nThe shared job:")
    for job in tr.jobs:
        print(f"   {job.job_id.split('.')[-1]}: {job.name}")

    res = run_batch(tr, ds)
    print("\nSample output rows:")
    for qid, rows in res.rows.items():
        print(f"   {qid}: {len(rows)} rows, e.g. {rows[0] if rows else '-'}")


if __name__ == "__main__":
    main()
