"""Cluster what-if analysis: sweep the simulated environments.

Uses the cost model to ask the questions the paper's Figs. 11-13 answer:

* how do YSmart and Hive scale from 11 to 101 EC2 nodes as data grows?
* is map-output compression worth it on an isolated cluster?
* what happens on a busy 747-node production cluster?

Run: python examples/cluster_whatif.py
"""

from repro import (
    build_datastore,
    ec2_cluster,
    facebook_cluster,
    run_query,
    small_cluster,
)
from repro.workloads import data_scale_for, paper_queries

TPCH_TABLES = ["lineitem", "orders", "part", "customer", "supplier", "nation"]


def main():
    ds = build_datastore(tpch_scale=0.002, clickstream_users=None)
    sql = paper_queries()["q21"]

    print("== EC2 scaling sweep (Q21) ==")
    print(f"{'cluster':<12} {'data':>6} {'compress':>9} "
          f"{'ysmart':>8} {'hive':>8}")
    for workers, gb in ((10, 10.0), (100, 100.0)):
        scale = data_scale_for(ds, TPCH_TABLES, gb)
        for compress in (False, True):
            cluster = ec2_cluster(workers, data_scale=scale,
                                  compress=compress)
            ys = run_query(sql, ds, mode="ysmart", cluster=cluster,
                           namespace=f"wi.{workers}.{compress}.y")
            hv = run_query(sql, ds, mode="hive", cluster=cluster,
                           namespace=f"wi.{workers}.{compress}.h")
            print(f"{workers + 1:>3}-node     {gb:>5.0f}G "
                  f"{'on' if compress else 'off':>9} "
                  f"{ys.timing.total_s:>7.0f}s {hv.timing.total_s:>7.0f}s")
    print("-> near-linear scaling; compression is a net loss "
          "(the paper's Fig. 11 findings)")

    print("\n== Production cluster (1 TB, three instances each) ==")
    scale = data_scale_for(ds, TPCH_TABLES, 1024.0)
    print(f"{'instance':<10} {'ysmart':>8} {'hive':>8} {'speedup':>8}")
    for instance in range(3):
        cluster = facebook_cluster(data_scale=scale)
        ys = run_query(sql, ds, mode="ysmart", cluster=cluster,
                       namespace=f"fb.{instance}.y", instance=instance * 2)
        hv = run_query(sql, ds, mode="hive", cluster=cluster,
                       namespace=f"fb.{instance}.h",
                       instance=instance * 2 + 1)
        print(f"#{instance + 1:<9} {ys.timing.total_s:>7.0f}s "
              f"{hv.timing.total_s:>7.0f}s "
              f"{hv.timing.total_s / ys.timing.total_s:>7.2f}x")
    print("-> contention amplifies YSmart's advantage: every extra Hive "
          "job absorbs another\n   scheduling gap, and its "
          "temporary-input joins crawl under load (Figs. 12-13)")

    print("\n== Where does the time go? (small cluster, Q21, YSmart) ==")
    scale = data_scale_for(ds, TPCH_TABLES, 10.0)
    res = run_query(sql, ds, mode="ysmart",
                    cluster=small_cluster(data_scale=scale),
                    namespace="wi.small")
    for job in res.timing.breakdown():
        print(f"   {job['job']:<34} map={job['map_s']:>7.1f}s "
              f"shuffle={job['shuffle_s']:>6.1f}s "
              f"reduce={job['reduce_s']:>7.1f}s")


if __name__ == "__main__":
    main()
