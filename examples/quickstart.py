"""Quickstart: translate one SQL query with YSmart and run it.

Shows the full pipeline on a small generated dataset:

1. build a datastore with TPC-H tables,
2. plan a query and print the paper-style plan tree,
3. inspect the intra-query correlations YSmart detects,
4. translate with YSmart and with the Hive-style baseline,
5. execute both on the MapReduce engine and compare results and
   simulated cluster time.

Run: python examples/quickstart.py
"""

from repro import (
    CorrelationAnalysis,
    build_datastore,
    explain_plan,
    parse_sql,
    plan_query,
    run_query,
    small_cluster,
)
from repro.workloads import Q17_SQL, data_scale_for


def main():
    print("== 1. Generate data ==")
    ds = build_datastore(tpch_scale=0.002, clickstream_users=None)
    for name in ("lineitem", "orders", "part"):
        print(f"   {name}: {len(ds.table(name))} rows")

    print("\n== 2. Plan the paper's Q17 ==")
    plan = plan_query(parse_sql(Q17_SQL), ds.catalog)
    print(explain_plan(plan))

    print("\n== 3. Correlations YSmart detects ==")
    analysis = CorrelationAnalysis(plan)
    for a, b, kind in analysis.correlation_summary():
        print(f"   {a} <-> {b}: {kind}")

    print("\n== 4 + 5. Translate, execute, time ==")
    scale = data_scale_for(ds, ["lineitem", "orders", "part"], 10.0)
    cluster = small_cluster(data_scale=scale)
    for mode in ("ysmart", "hive"):
        result = run_query(Q17_SQL, ds, mode=mode, cluster=cluster,
                           namespace=f"quickstart.{mode}")
        print(f"\n   {mode}: {result.job_count} job(s), "
              f"simulated {result.timing.total_s:.0f}s at 10 GB")
        for job in result.timing.breakdown():
            print(f"      {job['job']:<22} map={job['map_s']:>7.1f}s "
                  f"reduce={job['reduce_s']:>7.1f}s")
        print(f"   answer: {result.rows}")


if __name__ == "__main__":
    main()
