"""Click-stream analysis: the paper's motivating Facebook workload.

Answers "what is the average number of pages a user visits between a
page in category X and a page in category Y?" (Q-CSA, paper Fig. 1) over
a generated click stream, comparing every translator:

* YSmart executes the five correlated operations (self-join, three
  aggregations, a temporal join) in ONE MapReduce job plus a final
  average, while Hive/Pig run a six-job chain re-scanning the click table;
* the hand-coded program and the ideal-parallel DBMS bracket the result
  from below.

Run: python examples/clickstream_sessionization.py
"""

from repro import (
    build_datastore,
    run_dbms_sql,
    run_query,
    run_translation,
    small_cluster,
    translate_handcoded,
)
from repro.baselines.dbms import DbmsConfig
from repro.data import ClickstreamConfig, generate_clickstream
from repro.workloads import data_scale_for, q_csa_sql


def main():
    ds = build_datastore(tpch_scale=None, clickstream_users=150)
    clicks = ds.table("clicks")
    print(f"click stream: {len(clicks)} events, "
          f"{len(set(clicks.column_values('uid')))} users")

    sql = q_csa_sql(category_x=1, category_y=2)
    scale = data_scale_for(ds, ["clicks"], 20.0)  # model the paper's 20 GB
    cluster = small_cluster(data_scale=scale)

    print(f"\n{'system':<12} {'jobs':>4} {'time@20GB':>10}   answer")
    baseline = None
    for mode in ("ysmart", "hive", "pig"):
        res = run_query(sql, ds, mode=mode, cluster=cluster,
                        namespace=f"csa.{mode}")
        answer = res.rows[0]["avg_pageview_count"]
        t = res.timing.total_s
        baseline = baseline or t
        print(f"{mode:<12} {res.job_count:>4} {t:>9.0f}s   {answer:.3f}")

    hand = run_translation(translate_handcoded("q_csa", namespace="csa.hand"),
                           ds, cluster=cluster)
    print(f"{'hand-coded':<12} {hand.job_count:>4} "
          f"{hand.timing.total_s:>9.0f}s   "
          f"{hand.rows[0]['avg_pageview_count']:.3f}")

    db = run_dbms_sql(sql, ds, config=DbmsConfig(data_scale=scale))
    print(f"{'pgsql (4x)':<12} {'-':>4} {db.total_s:>9.0f}s   "
          f"{db.rows[0]['avg_pageview_count']:.3f}")

    print("\nAll systems agree on the answer; YSmart's merged job avoids "
          "two extra click-table scans\nand four intermediate "
          "materializations, which is the whole paper in one table.")


if __name__ == "__main__":
    main()
