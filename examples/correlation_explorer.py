"""Correlation explorer: inspect what YSmart does to YOUR query.

Pass any SQL in the supported subset (or use the built-in default) and
the script prints, side by side:

* the query plan tree with paper-style labels,
* each operator's partition key and the IC/TC/JFC pairs,
* the one-operation-to-one-job chain vs the merged YSmart jobs,
* each job's map inputs and reduce tasks.

Run: python examples/correlation_explorer.py ["SELECT ..."]
"""

import sys

from repro import (
    CorrelationAnalysis,
    build_datastore,
    explain_plan,
    generate_job_graph,
    parse_sql,
    plan_query,
    translate_sql,
)

DEFAULT_SQL = """
SELECT n_name, count(*) AS waiting_orders
FROM (SELECT o_orderkey, o_custkey FROM orders
      WHERE o_orderstatus = 'F') AS f,
     (SELECT l_orderkey, count(DISTINCT l_suppkey) AS suppliers
      FROM lineitem GROUP BY l_orderkey) AS s,
     customer, nation
WHERE f.o_orderkey = s.l_orderkey
  AND s.suppliers > 1
  AND f.o_custkey = c_custkey
  AND c_nationkey = n_nationkey
GROUP BY n_name
ORDER BY waiting_orders DESC
LIMIT 10
"""


def main():
    sql = sys.argv[1] if len(sys.argv) > 1 else DEFAULT_SQL
    ds = build_datastore(tpch_scale=0.001, clickstream_users=20)

    plan = plan_query(parse_sql(sql), ds.catalog)
    print("== Plan tree ==")
    print(explain_plan(plan))

    analysis = CorrelationAnalysis(plan)
    print("\n== Partition keys ==")
    for node in analysis.operator_nodes:
        pk = analysis.pk(node)
        shown = ", ".join(sorted(pk)) if pk else "(none - sort/global agg)"
        print(f"   {node.label:<8} {shown}")

    print("\n== Correlations ==")
    pairs = analysis.correlation_summary()
    if pairs:
        for a, b, kind in pairs:
            meaning = {"IC": "share an input table",
                       "TC": "share input AND partition key",
                       "JFC": "parent runs in child's reduce phase"}[kind]
            print(f"   {a} <-> {b}: {kind} ({meaning})")
    else:
        print("   none - YSmart cannot improve on one-op-one-job here")

    print("\n== Job generation ==")
    naive = generate_job_graph(plan_query(parse_sql(sql), ds.catalog),
                               use_rule1=False, use_rule234=False,
                               use_swaps=False)
    print(f"   one-operation-to-one-job: {naive.job_count()} jobs "
          f"({[d.labels[0] for d in naive.schedule()]})")
    merged = generate_job_graph(plan_query(parse_sql(sql), ds.catalog))
    print(f"   YSmart:                   {merged.job_count()} jobs "
          f"({['+'.join(d.labels) for d in merged.schedule()]})")

    print("\n== Executable YSmart jobs ==")
    tr = translate_sql(sql, mode="ysmart", catalog=ds.catalog,
                       namespace="explore")
    print(tr.describe())


if __name__ == "__main__":
    main()
