"""TPC-H decision-support workload: Q17, Q18, Q21 across translators.

Reproduces the paper's Sec. VII small-cluster comparison on generated
TPC-H data projected to 10 GB: YSmart vs Hive vs Pig vs the
ideal-parallel PostgreSQL baseline, with per-query job counts and the
dominant merged sub-trees YSmart finds.

Run: python examples/tpch_dss.py
"""

from repro import (
    build_datastore,
    run_dbms_sql,
    run_query,
    small_cluster,
    translate_sql,
)
from repro.baselines.dbms import DbmsConfig
from repro.workloads import data_scale_for, paper_queries

TPCH_TABLES = ["lineitem", "orders", "part", "customer", "supplier", "nation"]


def main():
    ds = build_datastore(tpch_scale=0.003, clickstream_users=None)
    scale = data_scale_for(ds, TPCH_TABLES, 10.0)
    cluster = small_cluster(data_scale=scale)
    queries = paper_queries()

    print("== Merged jobs YSmart builds ==")
    for name in ("q17", "q18", "q21"):
        tr = translate_sql(queries[name], mode="ysmart", catalog=ds.catalog,
                           namespace=f"show.{name}")
        print(f"\n{name}:")
        for job in tr.jobs:
            print(f"   {job.job_id.split('.')[-1]}: {job.name}")

    print("\n== Simulated execution at 10 GB on the 2-node lab cluster ==")
    print(f"{'query':<6} {'ysmart':>9} {'hive':>9} {'pig':>9} "
          f"{'pgsql':>9}   speedup(hive/ysmart)")
    for name in ("q17", "q18", "q21"):
        times = {}
        for mode in ("ysmart", "hive", "pig"):
            res = run_query(queries[name], ds, mode=mode, cluster=cluster,
                            namespace=f"dss.{name}.{mode}")
            times[mode] = res.timing.total_s
        db = run_dbms_sql(queries[name], ds,
                          config=DbmsConfig(data_scale=scale))
        print(f"{name:<6} {times['ysmart']:>8.0f}s {times['hive']:>8.0f}s "
              f"{times['pig']:>8.0f}s {db.total_s:>8.0f}s   "
              f"{times['hive'] / times['ysmart']:.2f}x")

    print("\nPaper speedups on this cluster: 2.58x (Q17), 1.90x (Q18), "
          "2.52x (Q21);\nthe DBMS wins these scan-bound DSS queries, "
          "exactly as in Fig. 10.")


if __name__ == "__main__":
    main()
